"""Unit tests for the GPU memory model (Fig. 7)."""

from __future__ import annotations

import pytest

from repro.hardware.machine import DGX_A100, DGX_H100
from repro.models.llm import BLOOM_176B, LLAMA2_70B, ModelSpec
from repro.models.memory import GB, MemoryModel, MemoryUsage


class TestMemoryUsage:
    def test_total_is_sum_of_parts(self):
        usage = MemoryUsage(weight_bytes=10 * GB, activation_bytes=2 * GB, kv_cache_bytes=3 * GB)
        assert usage.total_bytes == pytest.approx(15 * GB)
        assert usage.total_gb == pytest.approx(15.0)


class TestMemoryModel:
    def test_bloom_fits_on_dgx(self):
        model = MemoryModel(BLOOM_176B, DGX_H100)
        assert model.kv_budget_bytes > 0
        assert model.max_kv_tokens > 0

    def test_model_too_large_raises(self):
        giant = ModelSpec(
            name="giant", num_parameters=400e9, num_layers=100, hidden_size=16384, num_heads=128, num_kv_heads=128
        )
        with pytest.raises(ValueError, match="does not fit"):
            MemoryModel(giant, DGX_A100)

    def test_usage_includes_weights_and_kv(self):
        memory = MemoryModel(BLOOM_176B, DGX_H100)
        usage = memory.usage(10_000)
        assert usage.weight_bytes == pytest.approx(BLOOM_176B.weight_bytes)
        assert usage.kv_cache_bytes == pytest.approx(BLOOM_176B.kv_cache_bytes(10_000))
        assert usage.total_gb > 350  # more than the bare model

    def test_usage_rejects_negative_tokens(self):
        memory = MemoryModel(LLAMA2_70B, DGX_H100)
        with pytest.raises(ValueError, match="cached_tokens"):
            memory.usage(-5)

    def test_fits_matches_max_kv_tokens(self):
        memory = MemoryModel(BLOOM_176B, DGX_H100)
        assert memory.fits(memory.max_kv_tokens)
        assert not memory.fits(memory.max_kv_tokens + 1)

    def test_remaining_tokens_decreases_with_usage(self):
        memory = MemoryModel(BLOOM_176B, DGX_H100)
        free_at_zero = memory.remaining_tokens(0)
        free_at_10k = memory.remaining_tokens(10_000)
        assert free_at_zero == memory.max_kv_tokens
        assert free_at_zero - free_at_10k == pytest.approx(10_000, abs=1)

    def test_remaining_tokens_never_negative(self):
        memory = MemoryModel(BLOOM_176B, DGX_H100)
        assert memory.remaining_tokens(memory.max_kv_tokens * 2) == 0

    def test_bloom_runs_out_of_memory_around_batch_64(self):
        """Insight V / Fig. 6b: a DGX runs out of memory near 64 batched
        conversation-length requests for BLOOM-176B."""
        memory = MemoryModel(BLOOM_176B, DGX_H100)
        max_requests_at_1500_ctx = memory.max_kv_tokens / 1500
        assert 30 <= max_requests_at_1500_ctx <= 120

    def test_llama_kv_budget_much_larger_than_bloom(self):
        llama = MemoryModel(LLAMA2_70B, DGX_H100)
        bloom = MemoryModel(BLOOM_176B, DGX_H100)
        assert llama.max_kv_tokens > 5 * bloom.max_kv_tokens

    def test_invalid_usable_fraction(self):
        with pytest.raises(ValueError, match="usable_fraction"):
            MemoryModel(LLAMA2_70B, DGX_H100, usable_fraction=0.0)

    def test_negative_activation_reserve(self):
        with pytest.raises(ValueError, match="activation_reserve_bytes"):
            MemoryModel(LLAMA2_70B, DGX_H100, activation_reserve_bytes=-1)

    def test_capacity_reflects_usable_fraction(self):
        memory = MemoryModel(LLAMA2_70B, DGX_H100, usable_fraction=0.5)
        assert memory.capacity_bytes == pytest.approx(640 * GB * 0.5)
