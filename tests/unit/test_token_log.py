"""Unit tests for the columnar token log and its request-side lazy views."""

from __future__ import annotations

from array import array

import numpy as np
import pytest

from repro.metrics.token_log import TokenLog, materialize_into, segment_token_count
from repro.simulation.request import Request, RequestPhase
from repro.workload.trace import RequestDescriptor


def _request(request_id: int = 0, output_tokens: int = 5) -> Request:
    return Request(
        descriptor=RequestDescriptor(
            request_id=request_id, arrival_time_s=0.0, prompt_tokens=10, output_tokens=output_tokens
        )
    )


class TestMaterialize:
    def test_scalar_segments(self):
        times = array("d")
        materialize_into(times, [(0.5,), (0.75,)])
        assert list(times) == [0.5, 0.75]

    def test_contiguous_slice_segment(self):
        block = array("d", [0.1, 0.2, 0.3, 0.4])
        times = array("d")
        materialize_into(times, [(block, 1, 3)])
        assert list(times) == [0.2, 0.3]

    def test_gather_segment(self):
        block = array("d", [0.1, 0.2, 0.3, 0.4, 0.5])
        indices = array("q", [0, 2, 4])
        times = array("d")
        materialize_into(times, [(block, indices, 1, 3)])
        assert list(times) == [0.3, 0.5]

    def test_mixed_segments_in_order(self):
        block = array("d", [1.0, 2.0, 3.0])
        indices = array("q", [0, 2])
        times = array("d", [0.5])
        materialize_into(times, [(block, 0, 1), (block, indices, 1, 2), (2.5,)])
        assert list(times) == [0.5, 1.0, 3.0, 2.5]

    def test_values_are_bit_exact_copies(self):
        # Awkward floats survive the round trip exactly (memory moves only).
        values = [0.1 + 0.2, 1e-308, 1.7976931348623157e308, -0.0]
        block = array("d", values)
        times = array("d")
        materialize_into(times, [(block, 0, len(values))])
        assert times.tobytes() == block.tobytes()

    def test_segment_token_count(self):
        block = array("d", [1.0, 2.0])
        indices = array("q", [0, 1])
        assert segment_token_count((1.5,)) == 1
        assert segment_token_count((block, 0, 2)) == 2
        assert segment_token_count((block, indices, 1, 2)) == 1


class TestTokenLog:
    def test_timeline_blocks_are_per_machine_and_stable(self):
        log = TokenLog()
        first = log.timeline("m0")
        again = log.timeline("m0")
        other = log.timeline("m1")
        assert first is again
        assert first is not other
        assert log.machines() == ["m0", "m1"]

    def test_statistics(self):
        log = TokenLog()
        log.timeline("m0").append(1.0)
        log.timeline("m0").append(2.0)
        log.note_run_block(array("d", [3.0, 4.0, 5.0]))
        stats = log.as_dict()
        assert stats["machines"] == 1
        assert stats["boundaries_recorded"] == 2
        assert stats["run_blocks_recorded"] == 1


class TestRequestLazyViews:
    def test_token_times_materializes_tail_segment(self):
        request = _request()
        block = array("d", [0.1, 0.2, 0.3])
        request._tail_block = block
        request._tail_start = 0
        request._tail_count = 3
        request.generated_tokens = 3
        assert list(request.token_times) == [0.1, 0.2, 0.3]
        # Flushing is idempotent and the backing array is live.
        assert list(request.token_times) == [0.1, 0.2, 0.3]

    def test_token_times_materializes_index_column(self):
        request = _request()
        timeline = array("d", [0.1, 0.2, 0.3, 0.4])
        request._svc_block = timeline
        request._svc_indices = array("q", [0, 2])
        request._svc_base = 0
        assert list(request.token_times) == [0.1, 0.3]
        # The settle also caught up the deferred generated count.
        assert request.generated_tokens == 2
        assert request.phase is RequestPhase.TOKEN_RUNNING

    def test_token_intervals_vectorized_matches_scalar(self):
        request = _request(output_tokens=4)
        for time in (0.1, 0.2, 0.35, 0.45):
            request.generate_token(time)
        times = list(request.token_times)
        expected = [times[i] - times[i - 1] for i in range(1, len(times))]
        assert request.token_intervals == expected
        assert isinstance(request.token_intervals_np, np.ndarray)
        assert request.token_intervals_np.tolist() == expected

    def test_reset_for_restart_clears_columnar_state(self):
        request = _request()
        timeline = array("d", [0.5])
        request._svc_block = timeline
        request._svc_indices = array("q", [0])
        request._svc_base = 0
        request.reset_for_restart()
        assert request.generated_tokens == 0
        assert list(request.token_times) == []
        assert request._svc_block is None
        assert request.restarts == 1

    def test_direct_append_keeps_working(self):
        # Some tests drive requests manually and append to the live array.
        request = _request()
        request.token_times.append(0.25)
        assert list(request.token_times) == [0.25]

    def test_completed_request_cannot_generate(self):
        request = _request(output_tokens=1)
        request.finish_prompt(0.2)
        assert request.is_complete
        with pytest.raises(RuntimeError):
            request.generate_token(0.3)
