"""Unit tests for the simulated machine and its machine-level scheduler (§IV-B)."""

from __future__ import annotations

import pytest

from repro.core.machine import MachineRole, SimulatedMachine
from repro.hardware.machine import DGX_H100
from repro.metrics.collectors import MetricsCollector
from repro.models.llm import LLAMA2_70B
from repro.simulation.engine import SimulationEngine
from repro.simulation.request import Request, RequestPhase
from repro.workload.trace import RequestDescriptor


def _request(request_id: int, prompt: int = 512, output: int = 4, arrival: float = 0.0) -> Request:
    return Request(
        descriptor=RequestDescriptor(
            request_id=request_id, arrival_time_s=arrival, prompt_tokens=prompt, output_tokens=output
        )
    )


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def machine(engine) -> SimulatedMachine:
    return SimulatedMachine(
        name="m0",
        spec=DGX_H100,
        model=LLAMA2_70B,
        engine=engine,
        role=MachineRole.MIXED,
        metrics=MetricsCollector(),
    )


class TestQueueAccounting:
    def test_enqueue_prompt_updates_queue_metrics(self, machine):
        machine.enqueue_prompt(_request(0, prompt=300))
        machine.enqueue_prompt(_request(1, prompt=200))
        assert machine.pending_prompt_tokens == 500
        assert machine.pending_prompt_count == 2
        assert machine.has_prompt_work()

    def test_expected_transfers_count_toward_decode_queue(self, machine):
        request = _request(0, output=10)
        machine.expect_transfer(request)
        assert machine.pending_decode_tokens == 10
        machine.cancel_transfer(request)
        assert machine.pending_decode_tokens == 0

    def test_admit_token_request_moves_from_transfer_to_pool(self, machine):
        request = _request(0, prompt=100, output=5)
        request.start_prompt(0.0, "other")
        request.finish_prompt(0.1)
        machine.expect_transfer(request)
        machine.admit_token_request(request)
        assert machine.active_token_requests == 1
        assert not machine.in_transfer
        assert machine.pending_decode_tokens == 4  # one token already produced

    def test_admitting_completed_request_is_a_noop(self, machine):
        request = _request(0, output=1)
        request.start_prompt(0.0, "other")
        request.finish_prompt(0.1)
        machine.admit_token_request(request)
        assert machine.active_token_requests == 0

    def test_kv_tokens_and_headroom(self, machine):
        request = _request(0, prompt=1000, output=5)
        request.start_prompt(0.0, "other")
        request.finish_prompt(0.1)
        machine.admit_token_request(request)
        assert machine.kv_tokens_in_use == 1001
        assert 0.0 < machine.memory_headroom_fraction < 1.0

    def test_unconfigured_memory_model_reports_full_headroom(self, machine):
        # Regression: max_kv_tokens == 0 (unconfigured memory model) used to
        # read as "machine full" (0.0 headroom), skewing the cluster
        # scheduler's overflow decisions toward never using the machine.
        from repro.batching.policies import BatchConstraints

        machine.constraints = BatchConstraints(max_kv_tokens=0)
        assert machine.memory_headroom_fraction == 1.0
        request = _request(0, prompt=1000, output=5)
        request.start_prompt(0.0, "other")
        request.finish_prompt(0.1)
        machine.admit_token_request(request)
        assert machine.memory_headroom_fraction == 1.0

    def test_incremental_counters_match_recount(self, machine):
        machine.debug_accounting = True
        for i in range(4):
            machine.enqueue_prompt(_request(i, prompt=100 * (i + 1), output=3))
        transferring = _request(10, prompt=50, output=7)
        machine.expect_transfer(transferring)
        # Property reads self-verify under debug_accounting.
        assert machine.pending_prompt_tokens == 100 + 200 + 300 + 400
        assert machine.pending_decode_tokens == 7
        machine.verify_accounting()

    def test_withdraw_updates_counters(self, machine):
        queued = _request(0, prompt=300, output=4)
        decoding = _request(1, prompt=100, output=6)
        decoding.start_prompt(0.0, "other")
        decoding.finish_prompt(0.1)
        machine.enqueue_prompt(queued)
        machine.admit_token_request(decoding)
        machine.debug_accounting = True
        machine.withdraw(queued)
        machine.withdraw(decoding)
        assert machine.pending_prompt_tokens == 0
        assert machine.pending_decode_tokens == 0
        assert machine.kv_tokens_in_use == 0
        assert machine.find_queued(0) is None and machine.find_queued(1) is None
        # Withdrawing an absent request is a no-op.
        machine.withdraw(queued)
        machine.verify_accounting()


class TestRoleTracking:
    def test_prompt_machine_reports_foreign_token_work(self, engine):
        machine = SimulatedMachine("p0", DGX_H100, LLAMA2_70B, engine, role=MachineRole.PROMPT)
        assert not machine.has_foreign_work()
        request = _request(0)
        request.start_prompt(0.0, "x")
        request.finish_prompt(0.1)
        machine.admit_token_request(request)
        assert machine.has_foreign_work()

    def test_token_machine_reports_foreign_prompt_work(self, engine):
        machine = SimulatedMachine("t0", DGX_H100, LLAMA2_70B, engine, role=MachineRole.TOKEN)
        machine.enqueue_prompt(_request(0))
        assert machine.has_foreign_work()

    def test_mixed_home_role_never_foreign(self, machine):
        machine.enqueue_prompt(_request(0))
        assert not machine.has_foreign_work()


class TestIterationExecution:
    def test_single_request_runs_to_completion(self, engine, machine):
        completed = []
        machine.on_request_complete = lambda req, m: completed.append(req.request_id)
        # Baseline-style local handoff from prompt phase to token pool.
        machine.on_prompt_complete = lambda req, m, lat: (
            m.admit_token_request(req) if not req.is_complete else None
        )
        request = _request(0, prompt=512, output=3)
        machine.enqueue_prompt(request)
        engine.run()
        assert completed == [0]
        assert request.is_complete
        assert request.ttft is not None and request.ttft > 0
        assert len(request.token_times) == 3
        assert not machine.is_busy

    def test_iteration_metrics_recorded(self, engine, machine):
        machine.on_prompt_complete = lambda req, m, lat: (
            m.admit_token_request(req) if not req.is_complete else None
        )
        machine.enqueue_prompt(_request(0, prompt=512, output=3))
        engine.run()
        stats = machine.metrics.machine_stats("m0")
        assert stats.iterations >= 3  # one prompt + at least two decode iterations
        assert stats.busy_time_s > 0
        assert stats.energy_wh > 0
        assert stats.prompt_tokens_processed == 512

    def test_prompts_batched_within_token_limit(self, engine, machine):
        machine.on_prompt_complete = lambda req, m, lat: None
        finish_times = {}
        machine.on_request_complete = lambda req, m: finish_times.setdefault(req.request_id, engine.now)
        small = [_request(i, prompt=500, output=1) for i in range(3)]
        big = _request(3, prompt=1500, output=1)
        for request in small + [big]:
            machine.enqueue_prompt(request)
        engine.run()
        # The three small prompts (1500 tokens total) batch together; the big
        # prompt would exceed 2048 tokens so it runs in a second iteration.
        assert finish_times[0] == finish_times[1] == finish_times[2]
        assert finish_times[3] > finish_times[0]

    def test_first_tokens_of_batch_share_timestamp(self, engine, machine):
        machine.on_prompt_complete = lambda req, m, lat: None
        requests = [_request(i, prompt=200, output=1) for i in range(4)]
        for request in requests:
            machine.enqueue_prompt(request)
        engine.run()
        first_token_times = {r.first_token_time for r in requests}
        assert len(first_token_times) == 1

    def test_aging_boosts_skipped_token_requests(self, engine):
        machine = SimulatedMachine(
            "t0", DGX_H100, LLAMA2_70B, engine, role=MachineRole.TOKEN, max_batch_size=1
        )
        first = _request(0, prompt=100, output=3, arrival=0.0)
        second = _request(1, prompt=100, output=3, arrival=0.1)
        for request in (first, second):
            request.start_prompt(0.0, "p")
            request.finish_prompt(0.1)
            machine.admit_token_request(request)
        engine.run(max_events=4)
        # With batch size 1 only one request decodes per iteration; the other
        # must have accumulated priority boost.
        assert max(first.priority_boost, second.priority_boost) >= 1.0

    def test_machine_goes_idle_when_queue_empty(self, engine, machine):
        machine.on_prompt_complete = lambda req, m, lat: None
        machine.enqueue_prompt(_request(0, prompt=100, output=1))
        engine.run()
        assert not machine.is_busy
        assert machine.pending_prompt_tokens == 0

    def test_on_iteration_complete_callback_fires(self, engine, machine):
        calls = []
        machine.on_iteration_complete = lambda m: calls.append(engine.now)
        machine.on_prompt_complete = lambda req, m, lat: None
        machine.enqueue_prompt(_request(0, prompt=100, output=1))
        engine.run()
        assert len(calls) == 1

    def test_withdraw_mid_iteration_does_not_touch_restarted_request(self, engine):
        # Regression: a request withdrawn (failure restart) while its token
        # machine was mid-iteration used to receive a phantom token when the
        # iteration finished, corrupting the restarted request's timeline.
        machine = SimulatedMachine("t0", DGX_H100, LLAMA2_70B, engine, role=MachineRole.TOKEN)
        request = _request(0, prompt=100, output=5)
        request.start_prompt(0.0, "p")
        request.finish_prompt(0.1)
        machine.admit_token_request(request)
        engine.step()  # run the start event: the iteration is now in flight
        assert machine.is_busy
        machine.withdraw(request)
        request.reset_for_restart()
        engine.run()  # the stale finish event fires
        assert request.generated_tokens == 0
        assert list(request.token_times) == []
        assert request.phase is RequestPhase.QUEUED
        machine.verify_accounting()

    def test_stale_finish_skips_request_readmitted_after_withdrawal(self, engine):
        # Regression: if a withdrawn request restarts fast enough to be
        # re-admitted to the same machine before the old iteration's finish
        # event fires, a request_id-based membership check matches again and
        # the dead iteration injects a phantom token into the new timeline.
        machine = SimulatedMachine("t0", DGX_H100, LLAMA2_70B, engine, role=MachineRole.TOKEN)
        request = _request(0, prompt=100, output=4)
        request.start_prompt(0.0, "p")
        request.finish_prompt(0.1)
        machine.admit_token_request(request)
        engine.step()  # start event: the iteration is now in flight
        assert machine.is_busy
        machine.withdraw(request)
        request.reset_for_restart()
        # Restarted prompt finishes elsewhere and JSQ routes it back here
        # while the stale iteration is still running.
        request.start_prompt(engine.now, "p")
        request.finish_prompt(engine.now)
        machine.admit_token_request(request)
        engine.run()
        assert request.is_complete
        assert request.generated_tokens == request.output_tokens
        assert len(request.token_times) == request.output_tokens
        assert list(request.token_times) == sorted(request.token_times)
        machine.verify_accounting()

    def test_enqueue_bursts_schedule_single_start_event(self, engine, machine):
        # Regression: every enqueue used to schedule its own zero-delay start
        # event even when one was already pending, inflating events_processed.
        machine.on_prompt_complete = lambda req, m, lat: None
        for i in range(5):
            machine.enqueue_prompt(_request(i, prompt=100, output=1))
        assert engine.pending_events == 1  # one collapsed start event
        engine.run()
        assert not machine.is_busy
        assert machine.pending_prompt_tokens == 0

    def test_transfer_interference_extends_prompt_iteration(self, engine):
        from repro.core.kv_transfer import KVTransferModel
        from repro.hardware.interconnect import INFINIBAND_400

        plain = SimulatedMachine("a", DGX_H100, LLAMA2_70B, engine, role=MachineRole.PROMPT)
        with_transfer = SimulatedMachine(
            "b",
            DGX_H100,
            LLAMA2_70B,
            engine,
            role=MachineRole.PROMPT,
            kv_transfer=KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400),
        )
        for machine in (plain, with_transfer):
            machine.on_prompt_complete = lambda req, m, lat: None
            machine.enqueue_prompt(_request(0, prompt=2048, output=1))
        engine.run()
        plain_busy = plain.metrics.machine_stats("a").busy_time_s
        transfer_busy = with_transfer.metrics.machine_stats("b").busy_time_s
        assert transfer_busy > plain_busy


def _decode_pool_machine(engine, outputs, fast_forward=True, max_batch_size=64):
    machine = SimulatedMachine(
        "t0",
        DGX_H100,
        LLAMA2_70B,
        engine,
        role=MachineRole.TOKEN,
        max_batch_size=max_batch_size,
        fast_forward=fast_forward,
    )
    for index, output in enumerate(outputs):
        request = _request(index, prompt=200, output=output, arrival=index * 0.001)
        request.start_prompt(0.0, "p")
        request.finish_prompt(0.0)
        machine.admit_token_request(request)
    return machine


class TestDecodeFastForward:
    def _run_pair(self, outputs, max_batch_size=64, mid_run=None):
        results = []
        for fast_forward in (False, True):
            engine = SimulationEngine()
            machine = _decode_pool_machine(
                engine, outputs, fast_forward=fast_forward, max_batch_size=max_batch_size
            )
            if mid_run is not None:
                mid_run(engine, machine)
            engine.run()
            machine.verify_accounting()
            results.append((engine, machine))
        return results

    def test_steady_pool_coalesces_and_stays_bit_identical(self):
        outputs = [5, 9, 13, 21]
        (engine_off, machine_off), (engine_on, machine_on) = self._run_pair(outputs)
        req_off = sorted(machine_off.metrics.machine_stats("t0").occupancy.as_mapping().items())
        req_on = sorted(machine_on.metrics.machine_stats("t0").occupancy.as_mapping().items())
        assert req_off == req_on
        assert engine_on.events_coalesced > 0
        assert engine_on.events_processed < engine_off.events_processed
        stats_off = machine_off.metrics.machine_stats("t0")
        stats_on = machine_on.metrics.machine_stats("t0")
        assert stats_off.iterations == stats_on.iterations
        assert stats_off.busy_time_s == stats_on.busy_time_s
        assert stats_off.energy_wh == stats_on.energy_wh

    def test_mid_run_admission_interrupts_without_drift(self):
        outputs = [10, 14, 18]
        timelines = []
        for fast_forward in (False, True):
            engine = SimulationEngine()
            machine = _decode_pool_machine(engine, outputs, fast_forward=fast_forward)
            late = _request(99, prompt=150, output=6, arrival=0.05)
            late.start_prompt(0.0, "p")
            late.finish_prompt(0.0)
            engine.schedule_at(0.08, lambda m=machine, r=late: m.admit_token_request(r))
            engine.run()
            machine.verify_accounting()
            timelines.append(
                {r.request_id: list(r.token_times) for r in [late]}
            )
        assert timelines[0] == timelines[1]

    def test_oversubscribed_pool_enters_rotation_and_matches(self):
        outputs = [6 + (i % 9) for i in range(12)]
        per_request = []
        rotations = 0
        for fast_forward in (False, True):
            engine = SimulationEngine()
            machine = _decode_pool_machine(
                engine, outputs, fast_forward=fast_forward, max_batch_size=4
            )
            engine.run()
            machine.verify_accounting()
            stats = machine.metrics.machine_stats("t0")
            per_request.append((stats.iterations, stats.busy_time_s, stats.energy_wh))
            rotations += machine.rotation_runs
        assert per_request[0] == per_request[1]
        assert rotations > 0

    def test_withdraw_mid_fast_forward_matches_reference(self):
        outputs = [12, 16, 20]
        snapshots = []
        for fast_forward in (False, True):
            engine = SimulationEngine()
            machine = _decode_pool_machine(engine, outputs, fast_forward=fast_forward)
            victim = machine.find_queued(1)
            engine.schedule_at(0.1, lambda m=machine, r=victim: m.withdraw(r))
            engine.run()
            machine.verify_accounting()
            survivors = {r.request_id: list(r.token_times) for r in [machine.find_queued(0), machine.find_queued(2)] if r}
            stats = machine.metrics.machine_stats("t0")
            snapshots.append((survivors, stats.busy_time_s, stats.iterations))
        # The withdrawn request stops decoding at the interrupt in both modes.
        assert snapshots[0][1:] == snapshots[1][1:]

    def test_notify_power_cap_change_invalidates_and_interrupts(self, engine):
        machine = _decode_pool_machine(engine, [8, 8])
        machine.performance.token_latency(2, 400)
        machine.notify_power_cap_change()
        assert not machine.performance._token_cache
        engine.run()
        assert machine.metrics.machine_stats("t0").tokens_generated > 0
