"""Unit tests for the cluster designs (Table V)."""

from __future__ import annotations

import pytest

from repro.core.designs import (
    ClusterDesign,
    baseline_a100,
    baseline_h100,
    get_design_family,
    splitwise_aa,
    splitwise_ha,
    splitwise_hh,
    splitwise_hhcap,
)
from repro.hardware.machine import DGX_A100, DGX_H100, DGX_H100_CAPPED


class TestFactories:
    def test_baselines_are_not_split(self):
        assert not baseline_a100(4).split
        assert not baseline_h100(4).split

    def test_splitwise_designs_are_split(self):
        for factory in (splitwise_aa, splitwise_hh, splitwise_ha, splitwise_hhcap):
            assert factory(2, 2).split

    def test_machine_types_match_table_v(self):
        assert splitwise_ha(1, 1).prompt_machine is DGX_H100
        assert splitwise_ha(1, 1).token_machine is DGX_A100
        assert splitwise_hhcap(1, 1).token_machine is DGX_H100_CAPPED
        assert splitwise_aa(1, 1).prompt_machine is DGX_A100
        assert baseline_h100(1).prompt_machine is DGX_H100

    def test_labels(self):
        assert splitwise_hh(25, 15).label == "Splitwise-HH (25P, 15T)"
        assert baseline_a100(70).label == "Baseline-A100 (70P/T)"


class TestAggregates:
    def test_machine_count(self):
        assert splitwise_hh(25, 15).num_machines == 40
        assert baseline_h100(40).num_machines == 40

    def test_cost_sums_machine_costs(self):
        design = splitwise_ha(2, 3)
        expected = 2 * DGX_H100.cost_per_hour + 3 * DGX_A100.cost_per_hour
        assert design.cost_per_hour == pytest.approx(expected)

    def test_power_sums_machine_power(self):
        design = splitwise_hhcap(2, 2)
        expected = 2 * DGX_H100.provisioned_power_watts + 2 * DGX_H100_CAPPED.provisioned_power_watts
        assert design.provisioned_power_kw == pytest.approx(expected / 1e3)

    def test_hhcap_uses_less_power_than_hh_same_size(self):
        assert splitwise_hhcap(5, 5).provisioned_power_kw < splitwise_hh(5, 5).provisioned_power_kw

    def test_iso_power_baselines_match_paper_ratio(self):
        """70 DGX-A100 fit in roughly the power of 40 DGX-H100 (§VI-B)."""
        a100_power = baseline_a100(70).provisioned_power_kw
        h100_power = baseline_h100(40).provisioned_power_kw
        assert a100_power == pytest.approx(h100_power, rel=0.01)

    def test_splitwise_aa_costs_same_as_baseline_a100_same_count(self):
        assert splitwise_aa(45, 25).cost_per_hour == pytest.approx(baseline_a100(70).cost_per_hour)


class TestValidationAndDerivation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            splitwise_hh(-1, 2)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterDesign(name="x", prompt_machine=DGX_A100, token_machine=DGX_A100, num_prompt=0, num_token=0)

    def test_baseline_with_token_machines_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            ClusterDesign(
                name="x",
                prompt_machine=DGX_A100,
                token_machine=DGX_A100,
                num_prompt=1,
                num_token=1,
                split=False,
            )

    def test_resized_preserves_types(self):
        resized = splitwise_ha(2, 2).resized(4, 6)
        assert resized.num_prompt == 4
        assert resized.num_token == 6
        assert resized.prompt_machine is DGX_H100

    def test_resized_baseline_defaults_token_to_zero(self):
        resized = baseline_a100(4).resized(8)
        assert resized.num_machines == 8
        assert not resized.split


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", [
        "Baseline-A100", "Baseline-H100", "Splitwise-AA", "Splitwise-HH", "Splitwise-HA", "Splitwise-HHcap",
    ])
    def test_lookup(self, name):
        factory = get_design_family(name)
        design = factory(2, 2) if name.startswith("Splitwise") else factory(2)
        assert design.name == name

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            get_design_family("Splitwise-XX")
