"""Tombstoned-heap compaction is behavior-invisible.

Cancelled events stay in the engine heap as tombstones until they surface at
the head; cancel-heavy runs (autoscaler churn, fault-plane withdrawals,
hedge cancellations) can leave the heap mostly dead weight, and every push
then pays ``log`` of a size dominated by garbage.  ``SimulationEngine``
therefore compacts the heap — drops tombstones and re-heapifies — when
enough accumulate.  Compaction must be *pure mechanism*: live entries keep
their ``(time, priority, sequence)`` keys, a strict total order, so pop
order (and with it every simulation output) is bit-identical whether
compaction ran zero times or on every cancellation.

The thresholds are class attributes precisely so these tests can pin both
extremes on one workload: an engine with compaction effectively disabled
(huge minimum) against one compacting eagerly (tiny minimum, near-zero
ratio).
"""

from __future__ import annotations

from repro.experiments.scenarios import prepare_scenario_run
from repro.simulation.engine import SimulationEngine
from repro.workload.scenarios import get_scenario


def _configure(engine, *, disabled):
    """Per-instance threshold override (shadows the class attributes)."""
    if disabled:
        engine.COMPACT_MIN_TOMBSTONES = 10**9
    else:
        engine.COMPACT_MIN_TOMBSTONES = 16
        engine.COMPACT_RATIO = 0.01


def _cancel_heavy_pattern(engine):
    """Schedule a lattice of events and cancel most of them mid-run.

    Returns the executed tag order.  The cull event cancels from *inside*
    the run loop, which is the hazardous path: ``run``/``step`` hold local
    aliases to the heap list, so compaction must mutate it in place.
    """
    log = []
    events = []
    for i in range(1500):
        time_s = 10.0 + (i % 300) * 0.25 + (i // 300) * 0.01
        events.append(
            engine.schedule_at(time_s, lambda i=i: log.append(i), priority=i % 3, tag=f"ev-{i}")
        )

    def cull():
        for i, event in enumerate(events):
            if i % 4 != 0:
                engine.cancel(event)

    engine.schedule_at(5.0, cull, tag="cull")
    engine.run()
    return log


class TestCompactionParity:
    def test_pop_order_identical_with_and_without_compaction(self):
        reference = SimulationEngine()
        _configure(reference, disabled=True)
        compacting = SimulationEngine()
        _configure(compacting, disabled=False)

        assert _cancel_heavy_pattern(reference) == _cancel_heavy_pattern(compacting)
        assert reference.heap_compactions == 0
        assert compacting.heap_compactions > 0
        # Same live events executed either way; tombstones never fire.
        assert reference.events_processed == compacting.events_processed
        assert reference.events_cancelled == compacting.events_cancelled
        assert reference.now == compacting.now

    def test_default_thresholds_compact_under_sustained_cancellation(self):
        """The stock trigger (256 tombstones outnumbering live entries)
        fires without any tuning when a big backlog is mass-cancelled."""
        engine = SimulationEngine()
        events = [
            engine.schedule_at(float(i) + 1.0, lambda: None, tag=f"bulk-{i}")
            for i in range(600)
        ]
        for event in events[:500]:
            engine.cancel(event)
        assert engine.heap_compactions >= 1
        engine.run()
        assert engine.events_processed == 100

    def test_diurnal_autoscale_run_bit_identical(self):
        """The repo's cancel-heaviest real scenario (day-scale diurnal trace,
        pool autoscaler re-purposing and parking machines; ~2.5k tombstones)
        produces byte-identical results with compaction disabled and with it
        forced to run on almost every cancellation."""
        fingerprints = []
        compactions = []
        for disabled in (True, False):
            simulation, trace, failures = prepare_scenario_run(
                get_scenario("diurnal"), seed=14, scale=4.0, autoscaled=True
            )
            _configure(simulation.engine, disabled=disabled)
            result = simulation.run(trace, failures=failures)
            assert simulation.engine.events_cancelled > 2_000
            fingerprints.append(
                (
                    repr(result.duration_s),
                    simulation.engine.events_processed,
                    [
                        (
                            r.request_id,
                            r.prompt_start_time,
                            r.first_token_time,
                            r.completion_time,
                            tuple(r.token_times),
                        )
                        for r in result.requests
                    ],
                )
            )
            compactions.append(simulation.engine.heap_compactions)
        assert fingerprints[0] == fingerprints[1]
        assert compactions[0] == 0
        assert compactions[1] > 0
