"""Unit tests for the power model (Figs. 8 and 9)."""

from __future__ import annotations

import pytest

from repro.hardware.machine import DGX_A100, DGX_H100, DGX_H100_CAPPED
from repro.models.llm import LLAMA2_70B
from repro.models.power import PowerModel


@pytest.fixture
def power_h100() -> PowerModel:
    return PowerModel(LLAMA2_70B, DGX_H100)


class TestPromptPower:
    def test_draw_increases_with_batch_size(self, power_h100):
        """Fig. 8a: prompt power grows with batched tokens."""
        fractions = [power_h100.prompt_power_fraction(n) for n in (512, 1024, 2048, 4096, 8192)]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_reaches_tdp_at_large_batches(self, power_h100):
        assert power_h100.prompt_power_fraction(8192) == pytest.approx(1.0)

    def test_idle_draw_when_no_tokens(self, power_h100):
        assert power_h100.prompt_power_fraction(0) < 0.3

    def test_rejects_negative_tokens(self, power_h100):
        with pytest.raises(ValueError):
            power_h100.prompt_power_fraction(-1)

    def test_watts_scale_with_machine_tdp(self):
        h100 = PowerModel(LLAMA2_70B, DGX_H100).prompt_power(8192).gpu_watts
        a100 = PowerModel(LLAMA2_70B, DGX_A100).prompt_power(8192).gpu_watts
        assert h100 / a100 == pytest.approx(5600 / 3200, rel=0.01)

    def test_capped_machine_cannot_exceed_cap(self):
        capped = PowerModel(LLAMA2_70B, DGX_H100_CAPPED)
        assert capped.prompt_power_fraction(8192) <= 0.5 + 1e-9


class TestTokenPower:
    def test_draw_is_roughly_flat_with_batch_size(self, power_h100):
        """Fig. 8b: token-phase power is insensitive to batch size."""
        small = power_h100.token_power_fraction(1)
        large = power_h100.token_power_fraction(16)
        assert large - small < 0.1

    def test_token_draw_is_about_half_of_tdp(self, power_h100):
        """Insight VI: the token phase underuses the power budget."""
        assert 0.35 <= power_h100.token_power_fraction(16) <= 0.6

    def test_token_draw_below_prompt_draw(self, power_h100):
        assert power_h100.token_power_fraction(16) < power_h100.prompt_power_fraction(4096)

    def test_rejects_negative_batch(self, power_h100):
        with pytest.raises(ValueError):
            power_h100.token_power_fraction(-1)


class TestPowerCapSlowdowns:
    def test_prompt_unaffected_at_full_power(self, power_h100):
        assert power_h100.prompt_cap_slowdown(8192, 1.0) == 1.0

    def test_prompt_slows_roughly_2x_at_half_power(self, power_h100):
        """Fig. 9a: halving the cap roughly doubles TTFT at full batch."""
        assert power_h100.prompt_cap_slowdown(8192, 0.5) == pytest.approx(2.0, rel=0.1)

    def test_prompt_slowdown_monotone_in_cap(self, power_h100):
        caps = [1.0, 0.8, 0.6, 0.5, 0.4, 0.3]
        slowdowns = [power_h100.prompt_cap_slowdown(8192, c) for c in caps]
        assert all(b >= a for a, b in zip(slowdowns, slowdowns[1:]))

    def test_token_unaffected_down_to_half_power(self, power_h100):
        """Fig. 9b: the token phase tolerates a 50% cap."""
        assert power_h100.token_cap_slowdown(16, 0.55) == 1.0
        assert power_h100.token_cap_slowdown(16, 1.0) == 1.0

    def test_token_slows_below_half_power(self, power_h100):
        assert power_h100.token_cap_slowdown(16, 0.25) > 1.5

    def test_invalid_cap_rejected(self, power_h100):
        with pytest.raises(ValueError):
            power_h100.prompt_cap_slowdown(1024, 0.0)
        with pytest.raises(ValueError):
            power_h100.token_cap_slowdown(1, 1.5)

    def test_machine_cap_used_by_default(self):
        capped = PowerModel(LLAMA2_70B, DGX_H100_CAPPED)
        assert capped.prompt_cap_slowdown(8192) > 1.0
        assert capped.token_cap_slowdown(16) == 1.0


class TestEnergy:
    def test_energy_proportional_to_duration(self, power_h100):
        one = power_h100.prompt_energy_wh(2048, 1.0)
        two = power_h100.prompt_energy_wh(2048, 2.0)
        assert two == pytest.approx(2 * one)

    def test_energy_watthours_conversion(self, power_h100):
        watts = power_h100.token_power(8).gpu_watts
        assert power_h100.token_energy_wh(8, 3600.0) == pytest.approx(watts)

    def test_negative_duration_rejected(self, power_h100):
        with pytest.raises(ValueError):
            power_h100.prompt_energy_wh(100, -1.0)
        with pytest.raises(ValueError):
            power_h100.token_energy_wh(1, -1.0)

    def test_idle_power_positive_but_small(self, power_h100):
        assert 0 < power_h100.idle_power_watts() < 0.2 * DGX_H100.gpu_tdp_watts


class TestMemoizedPowerTables:
    def test_power_and_slowdown_caches_return_identical_values(self, power_h100):
        assert power_h100.token_power(8) is power_h100.token_power(8)  # memoized object
        assert power_h100.prompt_power(2048) is power_h100.prompt_power(2048)
        first = power_h100.token_cap_slowdown(16)
        assert power_h100.token_cap_slowdown(16) == first

    def test_explicit_cap_bypasses_the_cache(self, power_h100):
        default = power_h100.token_cap_slowdown(16)
        capped = power_h100.token_cap_slowdown(16, cap_fraction=0.3)
        assert capped > default
        # The explicit-cap result must not pollute the default-cap cache.
        assert power_h100.token_cap_slowdown(16) == default

    def test_invalidate_caches(self, power_h100):
        power_h100.token_power(4)
        power_h100.prompt_cap_slowdown(1024)
        power_h100.invalidate_caches()
        assert not power_h100._token_power_cache
        assert not power_h100._prompt_slowdown_cache


class TestTokenEnergySeries:
    def test_series_matches_scalar_calls_exactly(self, power_h100):
        durations = [0.03, 0.031, 0.0325, 0.04]
        series = power_h100.token_energy_series(8, durations)
        scalar = [power_h100.token_energy_wh(8, d) for d in durations]
        assert list(series) == scalar  # bit-identical

    def test_empty_series(self, power_h100):
        assert list(power_h100.token_energy_series(8, [])) == []
