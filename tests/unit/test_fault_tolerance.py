"""Unit tests for fault tolerance (§IV-E) and the routing-policy options."""

from __future__ import annotations

import pytest

from repro.core.cluster import ClusterSimulation
from repro.core.designs import baseline_h100, splitwise_hh
from repro.core.kv_transfer import KVTransferModel
from repro.hardware.interconnect import INFINIBAND_400
from repro.models.llm import LLAMA2_70B
from repro.simulation.request import RequestPhase
from repro.workload.generator import generate_trace
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def failure_trace() -> Trace:
    return generate_trace("conversation", rate_rps=4.0, duration_s=20.0, seed=3)


class TestRequestRestart:
    def test_reset_clears_progress_and_counts_restart(self, make_request):
        request = make_request(prompt=100, output=5)
        request.start_prompt(0.0, "prompt-0")
        request.finish_prompt(0.1)
        request.generate_token(0.2)
        request.reset_for_restart()
        assert request.phase is RequestPhase.QUEUED
        assert request.generated_tokens == 0
        assert list(request.token_times) == []
        assert request.ttft is None
        assert request.restarts == 1

    def test_completed_request_cannot_restart(self, make_request):
        request = make_request(output=1)
        request.start_prompt(0.0, "m")
        request.finish_prompt(0.1)
        with pytest.raises(RuntimeError, match="already completed"):
            request.reset_for_restart()


class TestMachineFailure:
    def test_failed_machine_rejects_new_work(self, make_request):
        from repro.core.machine import MachineRole, SimulatedMachine
        from repro.hardware.machine import DGX_H100
        from repro.simulation.engine import SimulationEngine

        machine = SimulatedMachine("m0", DGX_H100, LLAMA2_70B, SimulationEngine(), role=MachineRole.MIXED)
        machine.enqueue_prompt(make_request(request_id=0))
        surrendered = machine.fail()
        assert machine.failed
        assert len(surrendered) == 1
        with pytest.raises(RuntimeError, match="failed"):
            machine.enqueue_prompt(make_request(request_id=1))
        with pytest.raises(RuntimeError, match="failed"):
            machine.admit_token_request(make_request(request_id=2))

    def test_fail_is_idempotent_via_scheduler(self, failure_trace):
        simulation = ClusterSimulation(splitwise_hh(2, 2))
        result = simulation.run(failure_trace, failures=[(5.0, "token-0"), (6.0, "token-0")])
        assert [m.name for m in result.scheduler.failed_machines] == ["token-0"]
        assert result.completion_rate == 1.0

    def test_unknown_machine_name_raises(self):
        simulation = ClusterSimulation(splitwise_hh(1, 1))
        with pytest.raises(KeyError, match="no machine named"):
            simulation.scheduler.fail_machine("gpu-42")


class TestClusterLevelRecovery:
    def test_all_requests_complete_despite_token_machine_failure(self, failure_trace):
        simulation = ClusterSimulation(splitwise_hh(2, 2))
        result = simulation.run(failure_trace, failures=[(8.0, "token-1")])
        assert result.completion_rate == 1.0
        assert result.scheduler.restarted_requests
        assert all(r.generated_tokens == r.output_tokens for r in result.completed_requests)

    def test_all_requests_complete_despite_prompt_machine_failure(self, failure_trace):
        simulation = ClusterSimulation(splitwise_hh(2, 1))
        result = simulation.run(failure_trace, failures=[(6.0, "prompt-0")])
        assert result.completion_rate == 1.0
        assert "prompt-0" not in [m.name for m in result.scheduler.machines]

    def test_baseline_cluster_recovers_too(self, failure_trace):
        simulation = ClusterSimulation(baseline_h100(3))
        result = simulation.run(failure_trace, failures=[(7.0, "machine-2")])
        assert result.completion_rate == 1.0

    def test_recovered_machine_does_not_replay_dead_iteration(self, failure_trace):
        # Regression: fail() must tombstone the in-flight iteration's finish
        # event.  A machine repaired before that event's boundary would
        # otherwise replay the dead iteration and double-complete requests
        # that already restarted on its siblings.
        simulation = ClusterSimulation(splitwise_hh(2, 2))
        simulation.engine.schedule_at(
            5.0,
            lambda: simulation.scheduler.recover_machine("prompt-0"),
            priority=2,  # after the failure at the same instant
            tag="repair:prompt-0",
        )
        result = simulation.run(failure_trace, failures=[(5.0, "prompt-0")])
        assert result.completion_rate == 1.0
        assert not result.scheduler.failed_machines
        assert result.scheduler.restarted_requests
        assert all(r.generated_tokens == r.output_tokens for r in result.completed_requests)
        # The repaired machine rejoined the pool and served later work.
        assert any(
            r.prompt_machine == "prompt-0" and r.prompt_start_time > 5.0
            for r in result.completed_requests
        )

    def test_restarted_requests_pay_a_latency_penalty(self, failure_trace):
        clean = ClusterSimulation(splitwise_hh(2, 2)).run(failure_trace)
        faulty = ClusterSimulation(splitwise_hh(2, 2)).run(failure_trace, failures=[(8.0, "token-0")])
        restarted_ids = {r.request_id for r in faulty.scheduler.restarted_requests}
        assert restarted_ids
        clean_by_id = {r.request_id: r for r in clean.completed_requests}
        penalties = [
            faulty_request.e2e_latency - clean_by_id[faulty_request.request_id].e2e_latency
            for faulty_request in faulty.completed_requests
            if faulty_request.request_id in restarted_ids
        ]
        assert max(penalties) > 0


class TestRoutingPolicies:
    @pytest.mark.parametrize("routing", ["jsq", "round-robin", "random"])
    def test_all_policies_complete_the_trace(self, failure_trace, routing):
        result = ClusterSimulation(splitwise_hh(2, 2), routing=routing).run(failure_trace)
        assert result.completion_rate == 1.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            ClusterSimulation(splitwise_hh(1, 1), routing="power-of-two")

    def test_round_robin_spreads_prompts_evenly(self):
        trace = Trace.from_records([(i * 0.001, 128, 1) for i in range(8)], name="even")
        simulation = ClusterSimulation(splitwise_hh(2, 1), routing="round-robin")
        result = simulation.run(trace)
        counts = {
            name: result.metrics.machine_stats(name).prompt_tokens_processed
            for name in ("prompt-0", "prompt-1")
        }
        assert counts["prompt-0"] == counts["prompt-1"]

    def test_jsq_no_worse_than_random_on_tail_ttft(self):
        trace = generate_trace("coding", rate_rps=8.0, duration_s=30.0, seed=11)
        jsq = ClusterSimulation(splitwise_hh(2, 1), routing="jsq").run(trace)
        rnd = ClusterSimulation(splitwise_hh(2, 1), routing="random").run(trace)
        assert jsq.request_metrics().ttft.p99 <= rnd.request_metrics().ttft.p99 * 1.05


class TestKvCompression:
    def test_compression_shrinks_wire_latency_only(self):
        plain = KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400)
        compressed = KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400, compression_ratio=4.0)
        assert compressed.kv_bytes(2048) == pytest.approx(plain.kv_bytes(2048) / 4)
        assert compressed.serialized_latency(2048) < plain.serialized_latency(2048)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError, match="compression_ratio"):
            KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400, compression_ratio=0.5)
