"""Unit tests for the cluster-level scheduler (§IV-A): JSQ routing and pools."""

from __future__ import annotations

import pytest

from repro.core.cluster_scheduler import ClusterScheduler, MachinePool
from repro.core.machine import MachineRole, SimulatedMachine
from repro.hardware.machine import DGX_H100
from repro.metrics.collectors import MetricsCollector
from repro.models.llm import LLAMA2_70B
from repro.simulation.engine import SimulationEngine
from repro.simulation.request import Request, RequestPhase
from repro.workload.trace import RequestDescriptor


def _request(request_id: int, prompt: int = 512, output: int = 8, arrival: float = 0.0) -> Request:
    return Request(
        descriptor=RequestDescriptor(
            request_id=request_id, arrival_time_s=arrival, prompt_tokens=prompt, output_tokens=output
        )
    )


def _machine(name: str, engine: SimulationEngine, role: MachineRole, metrics: MetricsCollector) -> SimulatedMachine:
    return SimulatedMachine(
        name=name, spec=DGX_H100, model=LLAMA2_70B, engine=engine, role=role, metrics=metrics
    )


@pytest.fixture
def split_cluster():
    engine = SimulationEngine()
    metrics = MetricsCollector()
    machines = [
        _machine("prompt-0", engine, MachineRole.PROMPT, metrics),
        _machine("prompt-1", engine, MachineRole.PROMPT, metrics),
        _machine("token-0", engine, MachineRole.TOKEN, metrics),
    ]
    scheduler = ClusterScheduler(engine=engine, machines=machines, model=LLAMA2_70B, split=True)
    return engine, scheduler, machines


@pytest.fixture
def baseline_cluster():
    engine = SimulationEngine()
    metrics = MetricsCollector()
    machines = [
        _machine("machine-0", engine, MachineRole.MIXED, metrics),
        _machine("machine-1", engine, MachineRole.MIXED, metrics),
    ]
    scheduler = ClusterScheduler(engine=engine, machines=machines, model=LLAMA2_70B, split=False)
    return engine, scheduler, machines


class TestMachinePool:
    def test_add_remove_and_least_loaded(self, split_cluster):
        _, _, machines = split_cluster
        pool = MachinePool("test")
        pool.add(machines[0])
        pool.add(machines[0])  # duplicate ignored
        pool.add(machines[1])
        assert len(pool) == 2
        machines[0].enqueue_prompt(_request(0, prompt=1000))
        assert pool.least_loaded(lambda m: m.pending_prompt_tokens) is machines[1]
        pool.remove(machines[1])
        assert pool.least_loaded(lambda m: m.pending_prompt_tokens) is machines[0]

    def test_empty_pool_returns_none(self):
        assert MachinePool("empty").least_loaded(lambda m: 0) is None


class TestPoolAssignment:
    def test_split_cluster_pools(self, split_cluster):
        _, scheduler, _ = split_cluster
        assert scheduler.pool_sizes() == {"prompt": 2, "token": 1, "mixed": 0, "parked": 0}

    def test_baseline_cluster_all_mixed(self, baseline_cluster):
        _, scheduler, _ = baseline_cluster
        assert scheduler.pool_sizes() == {"prompt": 0, "token": 0, "mixed": 2, "parked": 0}

    def test_machines_by_home_role(self, split_cluster):
        _, scheduler, _ = split_cluster
        assert len(scheduler.machines_by_home_role(MachineRole.PROMPT)) == 2
        assert len(scheduler.machines_by_home_role(MachineRole.TOKEN)) == 1


class TestRouting:
    def test_split_routing_assigns_both_machines(self, split_cluster):
        _, scheduler, machines = split_cluster
        decision = scheduler.submit(_request(0))
        assert decision.prompt_machine.home_role is MachineRole.PROMPT
        assert decision.token_machine.home_role is MachineRole.TOKEN
        assert decision.token_machine.in_transfer  # transfer expected up-front

    def test_jsq_prefers_least_loaded_prompt_machine(self, split_cluster):
        _, scheduler, machines = split_cluster
        machines[0].enqueue_prompt(_request(100, prompt=2000))
        decision = scheduler.submit(_request(0, prompt=100))
        assert decision.prompt_machine is machines[1]

    def test_baseline_routing_uses_single_machine(self, baseline_cluster):
        _, scheduler, _ = baseline_cluster
        decision = scheduler.submit(_request(0))
        assert decision.prompt_machine is decision.token_machine

    def test_baseline_jsq_balances_by_total_pending_tokens(self, baseline_cluster):
        _, scheduler, machines = baseline_cluster
        first = scheduler.submit(_request(0, prompt=4000, output=2))
        second = scheduler.submit(_request(1, prompt=100, output=2))
        assert first.prompt_machine is not second.prompt_machine

    def test_single_token_requests_do_not_expect_transfer(self, split_cluster):
        _, scheduler, machines = split_cluster
        scheduler.submit(_request(0, output=1))
        token_machine = scheduler.machines_by_home_role(MachineRole.TOKEN)[0]
        assert not token_machine.in_transfer


class TestMixedPoolOverflow:
    def test_prompt_overload_pulls_token_machine_into_mixed_pool(self, split_cluster):
        _, scheduler, machines = split_cluster
        # Saturate both prompt machines beyond the queue threshold.
        for i in range(6):
            scheduler.submit(_request(i, prompt=2000, output=2))
        before = scheduler.pool_sizes()["mixed"]
        decision = scheduler.submit(_request(99, prompt=2000, output=2))
        after = scheduler.pool_sizes()["mixed"]
        assert decision.prompt_machine.home_role is MachineRole.TOKEN
        assert after == before + 1
        assert scheduler.pool_switches >= 1

    def test_machine_returns_home_after_foreign_work_drains(self, split_cluster):
        engine, scheduler, machines = split_cluster
        for i in range(7):
            scheduler.submit(_request(i, prompt=2000, output=2))
        assert scheduler.pool_sizes()["mixed"] >= 1
        engine.run()
        # All requests complete; every machine is back in its home pool.
        assert scheduler.pool_sizes() == {"prompt": 2, "token": 1, "mixed": 0, "parked": 0}
        assert all(m.role is m.home_role for m in machines)


class TestLifecycleCallbacks:
    def test_requests_complete_and_are_recorded(self, split_cluster):
        engine, scheduler, _ = split_cluster
        requests = [_request(i, prompt=300, output=4, arrival=0.0) for i in range(4)]
        for request in requests:
            scheduler.submit(request)
        engine.run()
        assert all(r.is_complete for r in requests)
        assert len(scheduler.completed_requests) == 4
        assert list(scheduler.outstanding_requests()) == []

    def test_kv_transfer_recorded_between_machines(self, split_cluster):
        engine, scheduler, _ = split_cluster
        request = _request(0, prompt=1500, output=4)
        scheduler.submit(request)
        engine.run()
        assert request.kv_transfer_start is not None
        assert request.kv_transfer_end is not None
        assert request.kv_transfer_end >= request.kv_transfer_start
        assert request.prompt_machine.startswith("prompt")
        assert request.is_complete

    def test_single_token_request_completes_on_prompt_machine(self, split_cluster):
        engine, scheduler, _ = split_cluster
        request = _request(0, prompt=500, output=1)
        scheduler.submit(request)
        engine.run()
        assert request.is_complete
        assert request.kv_transfer_start is None

    def test_baseline_requests_never_transfer(self, baseline_cluster):
        engine, scheduler, _ = baseline_cluster
        request = _request(0, prompt=500, output=4)
        scheduler.submit(request)
        engine.run()
        assert request.is_complete
        assert request.kv_transfer_start is None

    def test_second_token_delayed_by_transfer_in_split_cluster(self, split_cluster, baseline_cluster):
        split_engine, split_scheduler, _ = split_cluster
        base_engine, base_scheduler, _ = baseline_cluster
        split_request = _request(0, prompt=1024, output=3)
        base_request = _request(0, prompt=1024, output=3)
        split_scheduler.submit(split_request)
        base_scheduler.submit(base_request)
        split_engine.run()
        base_engine.run()
        split_gap = split_request.token_times[1] - split_request.token_times[0]
        base_gap = base_request.token_times[1] - base_request.token_times[0]
        assert split_gap > base_gap

    def test_transfer_model_cached_per_machine_pair(self, split_cluster):
        engine, scheduler, _ = split_cluster
        for i in range(3):
            scheduler.submit(_request(i, prompt=800, output=3))
        engine.run()
        assert len(scheduler._transfer_models) == 1


class TestErrors:
    def test_baseline_with_no_machines_raises_on_submit(self):
        engine = SimulationEngine()
        scheduler = ClusterScheduler(engine=engine, machines=[], model=LLAMA2_70B, split=False)
        with pytest.raises(RuntimeError, match="no machines"):
            scheduler.submit(_request(0))


class TestInlinedProbeMirrors:
    """The open-coded JSQ probe bodies must track the canonical properties.

    ``prompt_queue_load``/``decode_queue_load`` and the pool's
    ``least_prompt_loaded``/``least_decode_loaded`` loops inline
    ``pending_prompt_tokens``/``pending_decode_tokens`` for speed; this pins
    the mirrors to the properties on machines driven through real load so a
    future accounting change cannot silently diverge the routing probes.
    """

    def test_probe_functions_match_properties_under_load(self):
        from repro.core.cluster import ClusterSimulation
        from repro.core.cluster_scheduler import decode_queue_load, prompt_queue_load
        from repro.core.designs import splitwise_hh
        from repro.workload.generator import generate_trace

        simulation = ClusterSimulation(splitwise_hh(2, 2))
        trace = generate_trace("conversation", rate_rps=30.0, duration_s=8.0, seed=21)
        engine = simulation.engine
        live = [Request(descriptor=d) for d in trace]
        for request in live:
            engine.schedule_at(
                request.arrival_time, lambda r=request: simulation.scheduler.submit(r), priority=2
            )
        steps = 0
        while engine.step():
            steps += 1
            if steps % 11 == 0:
                for machine in simulation.machines:
                    assert prompt_queue_load(machine) == machine.pending_prompt_tokens
                    assert decode_queue_load(machine) == machine.pending_decode_tokens
        assert steps > 0

    def test_specialized_pool_selection_matches_generic(self):
        from repro.core.cluster_scheduler import decode_queue_load, prompt_queue_load

        engine = SimulationEngine()
        metrics = MetricsCollector()
        pool = MachinePool(name="token")
        for index in range(4):
            machine = _machine(f"t{index}", engine, MachineRole.TOKEN, metrics)
            for r in range(index * 2):
                request = _request(100 * index + r, output=6)
                request.phase = RequestPhase.TOKEN_QUEUED
                machine.admit_token_request(request)
            pool.add(machine)
        generic_decode = min(pool.machines, key=lambda m: (decode_queue_load(m), m.name))
        assert pool.least_decode_loaded() is generic_decode
        generic_prompt = min(pool.machines, key=lambda m: (prompt_queue_load(m), m.name))
        assert pool.least_prompt_loaded() is generic_prompt
