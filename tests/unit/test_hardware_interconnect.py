"""Unit tests for the interconnect model."""

from __future__ import annotations

import pytest

from repro.hardware.interconnect import (
    INFINIBAND_200,
    INFINIBAND_400,
    InterconnectSpec,
    Link,
    infiniband_for,
)


class TestInterconnectSpec:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth_gbps"):
            InterconnectSpec(name="bad", bandwidth_gbps=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            InterconnectSpec(name="bad", bandwidth_gbps=100, efficiency=1.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency_s"):
            InterconnectSpec(name="bad", bandwidth_gbps=100, latency_s=-1e-6)

    def test_effective_bandwidth_accounts_for_efficiency(self):
        spec = InterconnectSpec(name="x", bandwidth_gbps=400, efficiency=0.85)
        assert spec.effective_bytes_per_second == pytest.approx(400e9 / 8 * 0.85)

    def test_transfer_time_scales_linearly_with_size(self):
        spec = INFINIBAND_200
        one_gb = spec.transfer_time(1e9)
        two_gb = spec.transfer_time(2e9)
        assert two_gb - spec.latency_s == pytest.approx(2 * (one_gb - spec.latency_s))

    def test_zero_bytes_still_pays_latency(self):
        assert INFINIBAND_400.transfer_time(0) == pytest.approx(INFINIBAND_400.latency_s)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="num_bytes"):
            INFINIBAND_200.transfer_time(-1)

    def test_400g_is_twice_as_fast_as_200g_for_large_transfers(self):
        payload = 1e9
        t200 = INFINIBAND_200.transfer_time(payload) - INFINIBAND_200.latency_s
        t400 = INFINIBAND_400.transfer_time(payload) - INFINIBAND_400.latency_s
        assert t200 / t400 == pytest.approx(2.0, rel=1e-6)


class TestLink:
    def test_link_delegates_to_spec(self):
        link = Link(source="prompt-0", destination="token-0", spec=INFINIBAND_400)
        assert link.transfer_time(1e8) == pytest.approx(INFINIBAND_400.transfer_time(1e8))


class TestInfinibandFor:
    def test_homogeneous_pair_keeps_bandwidth(self):
        assert infiniband_for(400, 400).bandwidth_gbps == 400

    def test_heterogeneous_pair_limited_by_slower_endpoint(self):
        # Splitwise-HA: H100 prompt (400 Gbps) -> A100 token (200 Gbps).
        spec = infiniband_for(400, 200)
        assert spec.bandwidth_gbps == 200
        assert spec.name == "IB-200"
