"""Unit tests for workload distributions, arrivals, traces and generation (Fig. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.arrival import PoissonArrivalProcess, UniformArrivalProcess
from repro.workload.distributions import (
    CODING_WORKLOAD,
    CONVERSATION_WORKLOAD,
    EmpiricalTokenDistribution,
    LogNormalTokenDistribution,
    MixtureTokenDistribution,
    get_workload,
    registered_workloads,
)
from repro.workload.generator import TraceGenerator, generate_trace
from repro.workload.trace import RequestDescriptor, Trace


class TestLogNormalDistribution:
    def test_samples_respect_clipping(self, rng):
        dist = LogNormalTokenDistribution(median_tokens=100, sigma=1.0, min_tokens=10, max_tokens=500)
        samples = dist.sample(rng, 5000)
        assert samples.min() >= 10
        assert samples.max() <= 500

    def test_sample_median_near_configured_median(self, rng):
        dist = LogNormalTokenDistribution(median_tokens=1500, sigma=0.6, min_tokens=1, max_tokens=100000)
        samples = dist.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(1500, rel=0.05)

    def test_zero_size_sample(self, rng):
        dist = LogNormalTokenDistribution(median_tokens=10, sigma=0.5)
        assert dist.sample(rng, 0).size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogNormalTokenDistribution(median_tokens=0, sigma=1)
        with pytest.raises(ValueError):
            LogNormalTokenDistribution(median_tokens=10, sigma=0)
        with pytest.raises(ValueError):
            LogNormalTokenDistribution(median_tokens=10, sigma=1, min_tokens=0)
        with pytest.raises(ValueError):
            LogNormalTokenDistribution(median_tokens=10, sigma=1, min_tokens=10, max_tokens=5)

    def test_sample_one_returns_int(self, rng):
        dist = LogNormalTokenDistribution(median_tokens=10, sigma=0.5)
        assert isinstance(dist.sample_one(rng), int)


class TestMixtureDistribution:
    def test_weights_must_sum_to_one(self):
        component = LogNormalTokenDistribution(median_tokens=10, sigma=0.5)
        with pytest.raises(ValueError, match="sum to 1"):
            MixtureTokenDistribution(components=(component, component), weights=(0.5, 0.6))

    def test_component_and_weight_lengths_must_match(self):
        component = LogNormalTokenDistribution(median_tokens=10, sigma=0.5)
        with pytest.raises(ValueError):
            MixtureTokenDistribution(components=(component,), weights=(0.5, 0.5))

    def test_samples_come_from_both_modes(self, rng):
        low = LogNormalTokenDistribution(median_tokens=10, sigma=0.2, max_tokens=50)
        high = LogNormalTokenDistribution(median_tokens=1000, sigma=0.2, min_tokens=500, max_tokens=2000)
        mixture = MixtureTokenDistribution(components=(low, high), weights=(0.5, 0.5))
        samples = mixture.sample(rng, 4000)
        assert (samples <= 50).sum() > 1000
        assert (samples >= 500).sum() > 1000

    def test_median_reflects_mixture(self):
        assert 50 < CONVERSATION_WORKLOAD.output_tokens.median() < 400


class TestEmpiricalDistribution:
    def test_resamples_only_observed_values(self, rng):
        dist = EmpiricalTokenDistribution.from_samples([5, 10, 15])
        samples = dist.sample(rng, 1000)
        assert set(np.unique(samples)).issubset({5, 10, 15})

    def test_rejects_empty_or_invalid(self):
        with pytest.raises(ValueError):
            EmpiricalTokenDistribution(values=())
        with pytest.raises(ValueError):
            EmpiricalTokenDistribution(values=(0, 5))

    def test_median(self):
        assert EmpiricalTokenDistribution.from_samples([1, 2, 3, 4, 100]).median() == 3


class TestWorkloadSpecs:
    def test_coding_prompt_median_about_1500(self, rng):
        samples = CODING_WORKLOAD.prompt_tokens.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(1500, rel=0.08)

    def test_coding_output_median_about_13(self, rng):
        samples = CODING_WORKLOAD.output_tokens.sample(rng, 20000)
        assert 10 <= np.median(samples) <= 17

    def test_conversation_prompt_median_about_1020(self, rng):
        samples = CONVERSATION_WORKLOAD.prompt_tokens.sample(rng, 20000)
        assert np.median(samples) == pytest.approx(1020, rel=0.10)

    def test_conversation_output_is_bimodal_wide(self, rng):
        samples = CONVERSATION_WORKLOAD.output_tokens.sample(rng, 20000)
        assert np.percentile(samples, 25) < 60
        assert np.percentile(samples, 75) > 200

    def test_coding_outputs_much_shorter_than_conversation(self, rng):
        coding = CODING_WORKLOAD.output_tokens.sample(rng, 10000).mean()
        conversation = CONVERSATION_WORKLOAD.output_tokens.sample(rng, 10000).mean()
        assert conversation > 5 * coding

    def test_registry(self):
        assert get_workload("CODING") is CODING_WORKLOAD
        assert get_workload("conversation") is CONVERSATION_WORKLOAD
        with pytest.raises(KeyError):
            get_workload("search")
        assert set(registered_workloads()) == {"CODING", "CONVERSATION"}


class TestArrivalProcesses:
    def test_poisson_rate_approximately_respected(self, rng):
        process = PoissonArrivalProcess(rate_rps=10.0)
        times = process.arrival_times(rng, 200.0)
        assert len(times) == pytest.approx(2000, rel=0.10)
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 200.0

    def test_poisson_requires_positive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess(rate_rps=0)

    def test_poisson_zero_duration(self, rng):
        assert PoissonArrivalProcess(rate_rps=5).arrival_times(rng, 0.0).size == 0

    def test_uniform_spacing_exact(self, rng):
        process = UniformArrivalProcess(rate_rps=2.0)
        times = process.arrival_times(rng, 5.0)
        assert list(times) == [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5]

    def test_uniform_negative_duration_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformArrivalProcess(rate_rps=2.0).arrival_times(rng, -1.0)


class TestRequestDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestDescriptor(request_id=0, arrival_time_s=-1, prompt_tokens=1, output_tokens=1)
        with pytest.raises(ValueError):
            RequestDescriptor(request_id=0, arrival_time_s=0, prompt_tokens=0, output_tokens=1)
        with pytest.raises(ValueError):
            RequestDescriptor(request_id=0, arrival_time_s=0, prompt_tokens=1, output_tokens=0)

    def test_total_tokens(self):
        descriptor = RequestDescriptor(request_id=1, arrival_time_s=0.0, prompt_tokens=100, output_tokens=20)
        assert descriptor.total_tokens == 120


class TestTrace:
    def test_from_records_sorted_and_indexed(self):
        trace = Trace.from_records([(2.0, 10, 5), (1.0, 20, 2)])
        assert trace[0].arrival_time_s == 1.0
        assert len(trace) == 2
        assert trace.duration_s == 2.0

    def test_request_rate(self):
        trace = Trace.from_records([(0.0, 10, 1), (1.0, 10, 1), (2.0, 10, 1), (4.0, 10, 1)])
        assert trace.request_rate_rps == pytest.approx(1.0)

    def test_truncation(self):
        trace = Trace.from_records([(0.0, 10, 1), (5.0, 10, 1), (10.0, 10, 1)])
        shorter = trace.truncated(6.0)
        assert len(shorter) == 2

    def test_scaling_to_rate(self):
        trace = Trace.from_records([(float(i), 10, 1) for i in range(11)])
        faster = trace.scaled_to_rate(2.0)
        assert faster.request_rate_rps == pytest.approx(2.0)
        assert len(faster) == len(trace)

    def test_scaling_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace(requests=()).scaled_to_rate(1.0)

    def test_csv_roundtrip(self, tmp_path):
        trace = generate_trace("coding", rate_rps=2, duration_s=10, seed=3)
        path = trace.to_csv(tmp_path / "trace.csv")
        loaded = Trace.from_csv(path)
        assert len(loaded) == len(trace)
        assert loaded[0].prompt_tokens == trace[0].prompt_tokens
        assert loaded[-1].arrival_time_s == pytest.approx(trace[-1].arrival_time_s, abs=1e-5)

    def test_json_roundtrip(self, tmp_path):
        trace = generate_trace("conversation", rate_rps=2, duration_s=10, seed=3)
        path = trace.to_json(tmp_path / "trace.json")
        loaded = Trace.from_json(path)
        assert len(loaded) == len(trace)
        assert loaded.metadata["workload"] == "conversation"

    def test_token_count_accessors(self, tiny_trace):
        assert tiny_trace.prompt_token_counts() == [512, 1024, 256, 2048]
        assert tiny_trace.output_token_counts() == [8, 4, 16, 2]


class TestTraceGenerator:
    def test_deterministic_for_same_seed(self):
        first = generate_trace("coding", rate_rps=5, duration_s=20, seed=11)
        second = generate_trace("coding", rate_rps=5, duration_s=20, seed=11)
        assert [r.prompt_tokens for r in first] == [r.prompt_tokens for r in second]
        assert [r.arrival_time_s for r in first] == [r.arrival_time_s for r in second]

    def test_different_seeds_differ(self):
        first = generate_trace("coding", rate_rps=5, duration_s=20, seed=1)
        second = generate_trace("coding", rate_rps=5, duration_s=20, seed=2)
        assert [r.prompt_tokens for r in first] != [r.prompt_tokens for r in second]

    def test_rate_respected(self):
        trace = generate_trace("conversation", rate_rps=10, duration_s=120, seed=0)
        assert trace.request_rate_rps == pytest.approx(10, rel=0.15)

    def test_metadata_recorded(self):
        trace = generate_trace("coding", rate_rps=2, duration_s=10, seed=5)
        assert trace.metadata["workload"] == "coding"
        assert trace.metadata["rate_rps"] == 2
        assert trace.metadata["seed"] == 5

    def test_custom_workload_spec_accepted(self):
        trace = generate_trace(CODING_WORKLOAD, rate_rps=2, duration_s=10, seed=5)
        assert len(trace) > 0

    def test_invalid_duration_rejected(self):
        generator = TraceGenerator(workload=CODING_WORKLOAD, arrival=UniformArrivalProcess(1.0), seed=0)
        with pytest.raises(ValueError):
            generator.generate(0)
