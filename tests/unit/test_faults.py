"""Unit tests for the fault-injection plane: plan, injector, presets."""

from __future__ import annotations

import pytest

from repro.faults import (
    CHAOS_PRESETS,
    FaultPlanConfig,
    FaultTopology,
    INJECTION_KINDS,
    Injection,
    compile_fault_plan,
    get_chaos_preset,
    plan_counts,
)

TOPOLOGY = FaultTopology(
    machines={
        "cluster-0": ("cluster-0/prompt-0", "cluster-0/token-0"),
        "cluster-1": ("cluster-1/prompt-0", "cluster-1/token-0"),
        "cluster-2": ("cluster-2/prompt-0", "cluster-2/token-0"),
    },
    burst_clusters=("cluster-2",),
)

FULL_CONFIG = FaultPlanConfig(
    seed=7,
    machine_mtbf_s=30.0,
    machine_mttr_s=5.0,
    outage_interval_s=60.0,
    outage_duration_s=8.0,
    straggler_interval_s=90.0,
    straggler_duration_s=20.0,
    straggler_slowdown=1.5,
    kv_degradation_interval_s=45.0,
    kv_degradation_duration_s=10.0,
    kv_degradation_factor=2.0,
    revocation_mtbf_s=40.0,
)


class TestInjection:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Injection(time_s=1.0, kind="meteor-strike", target="cluster-0")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            Injection(time_s=-1.0, kind="machine-fail", target="m")

    def test_machine_scoped_kinds(self):
        machine_scoped = {
            kind for kind in INJECTION_KINDS
            if Injection(time_s=0.0, kind=kind, target="t").is_machine_scoped
        }
        assert machine_scoped == {
            "machine-fail", "machine-recover", "straggler-start", "straggler-end"
        }


class TestFaultPlanConfig:
    def test_disabled_by_default(self):
        assert not FaultPlanConfig().enabled

    def test_enabled_by_any_process(self):
        assert FaultPlanConfig(machine_mtbf_s=10.0).enabled
        assert FaultPlanConfig(outage_interval_s=10.0).enabled
        assert FaultPlanConfig(straggler_interval_s=10.0).enabled
        assert FaultPlanConfig(kv_degradation_interval_s=10.0).enabled
        assert FaultPlanConfig(revocation_mtbf_s=10.0).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"machine_mtbf_s": 0.0},
            {"machine_mtbf_s": 10.0, "machine_mttr_s": -1.0},
            {"outage_interval_s": 10.0, "outage_duration_s": 0.0},
            {"straggler_interval_s": 10.0, "straggler_slowdown": 1.0},
            {"kv_degradation_interval_s": 10.0, "kv_degradation_factor": 0.5},
            {"revocation_mtbf_s": -3.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlanConfig(**kwargs)


class TestCompileFaultPlan:
    def test_same_seed_same_plan(self):
        first = compile_fault_plan(FULL_CONFIG, TOPOLOGY, duration_s=120.0)
        second = compile_fault_plan(FULL_CONFIG, TOPOLOGY, duration_s=120.0)
        assert first == second

    def test_different_seed_different_plan(self):
        import dataclasses

        other = dataclasses.replace(FULL_CONFIG, seed=8)
        assert compile_fault_plan(FULL_CONFIG, TOPOLOGY, 120.0) != compile_fault_plan(
            other, TOPOLOGY, 120.0
        )

    def test_plan_is_time_sorted_and_onsets_bounded(self):
        plan = compile_fault_plan(FULL_CONFIG, TOPOLOGY, duration_s=120.0)
        assert plan
        times = [injection.time_s for injection in plan]
        assert times == sorted(times)
        # Onsets stay inside the horizon; paired end events may land past
        # it (they fire during drain).
        onset_kinds = {
            "machine-fail", "outage-start", "straggler-start", "kv-degrade-start", "revoke"
        }
        assert all(
            0.0 <= inj.time_s < 120.0 for inj in plan if inj.kind in onset_kinds
        )

    def test_every_process_represented(self):
        counts = plan_counts(compile_fault_plan(FULL_CONFIG, TOPOLOGY, duration_s=600.0))
        for kind in (
            "machine-fail", "machine-recover", "outage-start", "outage-end",
            "straggler-start", "straggler-end", "kv-degrade-start", "kv-degrade-end",
            "revoke",
        ):
            assert counts.get(kind, 0) > 0, kind

    def test_fail_recover_alternate_per_machine(self):
        plan = compile_fault_plan(
            FaultPlanConfig(seed=3, machine_mtbf_s=20.0, machine_mttr_s=4.0),
            TOPOLOGY,
            duration_s=300.0,
        )
        for machine in TOPOLOGY.machines["cluster-0"]:
            events = [inj.kind for inj in plan if inj.target == machine]
            for index, kind in enumerate(events):
                expected = "machine-fail" if index % 2 == 0 else "machine-recover"
                assert kind == expected

    def test_revocation_only_targets_burst_clusters(self):
        plan = compile_fault_plan(FULL_CONFIG, TOPOLOGY, duration_s=600.0)
        revoked = {inj.target for inj in plan if inj.kind == "revoke"}
        assert revoked == {"cluster-2"}

    def test_disabled_config_compiles_empty(self):
        assert compile_fault_plan(FaultPlanConfig(), TOPOLOGY, 120.0) == ()

    def test_zero_duration_compiles_empty(self):
        assert compile_fault_plan(FULL_CONFIG, TOPOLOGY, 0.0) == ()


class TestChaosPresets:
    def test_known_presets_resolve(self):
        for name in CHAOS_PRESETS:
            preset = get_chaos_preset(name)
            assert preset.name == name
            assert preset.faults.enabled

    def test_unknown_preset_lists_known(self):
        with pytest.raises(KeyError, match="failure-storm"):
            get_chaos_preset("zombie-apocalypse")

    def test_failure_storm_arms_everything(self):
        storm = get_chaos_preset("failure-storm")
        faults = storm.faults
        assert faults.machine_mtbf_s and faults.outage_interval_s
        assert faults.straggler_interval_s and faults.kv_degradation_interval_s
        assert faults.revocation_mtbf_s
        assert storm.reliability is not None
        assert storm.admission is not None
