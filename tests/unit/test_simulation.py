"""Unit tests for the discrete-event engine and the request state machine."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event
from repro.simulation.request import Request, RequestPhase


class TestEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, priority=0, sequence=0, action=lambda: None)

    def test_ordering_by_time_then_priority_then_sequence(self):
        a = Event(time=1.0, priority=0, sequence=0, action=lambda: None)
        b = Event(time=1.0, priority=1, sequence=1, action=lambda: None)
        c = Event(time=0.5, priority=5, sequence=2, action=lambda: None)
        assert sorted([a, b, c]) == [c, a, b]


class TestSimulationEngine:
    def test_clock_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_events_execute_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(2.0, lambda: order.append("late"))
        engine.schedule_at(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 2.0

    def test_same_time_events_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        for i in range(5):
            engine.schedule_at(1.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("low"), priority=5)
        engine.schedule_at(1.0, lambda: order.append("high"), priority=0)
        engine.run()
        assert order == ["high", "low"]

    def test_schedule_after_uses_relative_delay(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_after(3.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: engine.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError, match="cannot schedule"):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            SimulationEngine().schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_new_events(self):
        engine = SimulationEngine()
        log = []

        def chain(depth: int) -> None:
            log.append(engine.now)
            if depth:
                engine.schedule_after(1.0, lambda: chain(depth - 1))

        engine.schedule_at(0.0, lambda: chain(3))
        engine.run()
        assert log == [0.0, 1.0, 2.0, 3.0]

    def test_run_until_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_run_until_past_queue_advances_clock(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_max_events_limits_execution(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule_at(float(i), lambda: None)
        engine.run(max_events=4)
        assert engine.events_processed == 4
        assert engine.pending_events == 6

    def test_step_returns_false_on_empty_queue(self):
        assert SimulationEngine().step() is False

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2


class TestEventCancellation:
    def test_cancelled_event_never_executes(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append("cancelled"))
        engine.schedule_at(2.0, lambda: fired.append("kept"))
        assert engine.cancel(event) is True
        engine.run()
        assert fired == ["kept"]
        assert engine.events_processed == 1
        assert engine.events_cancelled == 1

    def test_pending_events_excludes_tombstones(self):
        engine = SimulationEngine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.cancel(event)
        assert engine.pending_events == 1

    def test_cancel_is_idempotent_and_rejects_fired_events(self):
        engine = SimulationEngine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.cancel(event) is False  # already fired
        pending = engine.schedule_at(5.0, lambda: None)
        assert engine.cancel(pending) is True
        assert engine.cancel(pending) is False  # already cancelled

    def test_cancelled_event_does_not_advance_clock(self):
        engine = SimulationEngine()
        event = engine.schedule_at(10.0, lambda: None)
        engine.schedule_at(1.0, lambda: None)
        engine.cancel(event)
        engine.run()
        assert engine.now == 1.0

    def test_run_drains_queue_of_only_tombstones(self):
        engine = SimulationEngine()
        events = [engine.schedule_at(float(i + 1), lambda: None) for i in range(3)]
        for event in events:
            engine.cancel(event)
        engine.run()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.events_processed == 0


class TestScheduleRecurring:
    def test_fires_at_interval_until_cancelled(self):
        engine = SimulationEngine()
        times = []
        task = engine.schedule_recurring(1.0, lambda: times.append(engine.now))
        engine.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]
        task.cancel()
        engine.run(until=10.0)
        assert times == [1.0, 2.0, 3.0]
        assert task.cancelled
        assert task.fire_count == 3

    def test_first_delay_overrides_interval(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_recurring(2.0, lambda: times.append(engine.now), first_delay=0.5)
        engine.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_action_can_cancel_its_own_task(self):
        engine = SimulationEngine()
        times = []
        holder = {}

        def action():
            times.append(engine.now)
            if len(times) == 2:
                holder["task"].cancel()

        holder["task"] = engine.schedule_recurring(1.0, action)
        engine.run(until=10.0)
        assert times == [1.0, 2.0]
        assert engine.pending_events == 0

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            SimulationEngine().schedule_recurring(0.0, lambda: None)


class TestRequestLifecycle:
    def test_initial_state(self, make_request):
        request = make_request(prompt=100, output=5)
        assert request.phase is RequestPhase.QUEUED
        assert request.remaining_tokens == 5
        assert request.ttft is None
        assert request.e2e_latency is None
        assert request.context_tokens == 100

    def test_prompt_phase_produces_first_token(self, make_request):
        request = make_request(arrival=1.0, prompt=100, output=5)
        request.start_prompt(2.0, "prompt-0")
        assert request.phase is RequestPhase.PROMPT_RUNNING
        assert request.queueing_delay == pytest.approx(1.0)
        request.finish_prompt(2.5)
        assert request.generated_tokens == 1
        assert request.ttft == pytest.approx(1.5)
        assert not request.is_complete

    def test_single_token_request_completes_at_prompt(self, make_request):
        request = make_request(prompt=50, output=1)
        request.start_prompt(0.0, "m")
        request.finish_prompt(0.2)
        assert request.is_complete
        assert request.e2e_latency == pytest.approx(0.2)

    def test_token_generation_until_complete(self, make_request):
        request = make_request(prompt=10, output=3)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        request.generate_token(0.2)
        assert request.phase is RequestPhase.TOKEN_RUNNING
        request.generate_token(0.35)
        assert request.is_complete
        assert request.completion_time == pytest.approx(0.35)
        assert request.generated_tokens == 3

    def test_generate_beyond_completion_raises(self, make_request):
        request = make_request(output=1)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        with pytest.raises(RuntimeError, match="already complete"):
            request.generate_token(0.2)

    def test_tbt_series(self, make_request):
        request = make_request(prompt=10, output=4)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        for t in (0.2, 0.35, 0.45):
            request.generate_token(t)
        assert request.tbt_values == pytest.approx([0.1, 0.15, 0.1])
        assert request.mean_tbt == pytest.approx(0.35 / 3)
        assert request.max_tbt == pytest.approx(0.15)

    def test_tbt_none_for_single_token(self, make_request):
        request = make_request(output=1)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        assert request.mean_tbt is None
        assert request.max_tbt is None

    def test_kv_transfer_transitions(self, make_request):
        request = make_request(prompt=100, output=5)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        request.start_kv_transfer(0.1)
        assert request.phase is RequestPhase.KV_TRANSFER
        request.finish_kv_transfer(0.12)
        assert request.phase is RequestPhase.TOKEN_QUEUED
        assert request.kv_transfer_end == pytest.approx(0.12)

    def test_kv_transfer_after_completion_keeps_completed(self, make_request):
        request = make_request(output=1)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        request.start_kv_transfer(0.1)
        request.finish_kv_transfer(0.2)
        assert request.is_complete

    def test_preemption_counts(self, make_request):
        request = make_request(output=5)
        request.preempt(1.0)
        request.preempt(2.0)
        assert request.preemptions == 2
        assert request.phase is RequestPhase.PREEMPTED

    def test_context_grows_with_generated_tokens(self, make_request):
        request = make_request(prompt=100, output=5)
        request.start_prompt(0.0, "p0")
        request.finish_prompt(0.1)
        request.generate_token(0.2)
        assert request.context_tokens == 102


class TestTokenIntervals:
    def test_intervals_match_tbt_values_without_copies(self):
        from repro.workload.trace import RequestDescriptor

        request = Request(
            descriptor=RequestDescriptor(request_id=0, arrival_time_s=0.0, prompt_tokens=8, output_tokens=4)
        )
        for time in (1.0, 1.1, 1.25, 1.35):
            request.token_times.append(time)
        assert request.token_intervals == pytest.approx([0.1, 0.15, 0.1])
        assert request.tbt_values == request.token_intervals

    def test_token_times_is_a_packed_array(self):
        from array import array

        from repro.workload.trace import RequestDescriptor

        request = Request(
            descriptor=RequestDescriptor(request_id=0, arrival_time_s=0.0, prompt_tokens=8, output_tokens=4)
        )
        assert isinstance(request.token_times, array)
        request.generate_token(0.5)
        request.reset_for_restart()
        assert isinstance(request.token_times, array)
        assert len(request.token_times) == 0
