"""Unit tests for metrics: summaries, occupancy tracking, and SLOs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.machine import DGX_A100
from repro.metrics.collectors import BatchOccupancyTracker, MetricsCollector
from repro.metrics.slo import DEFAULT_SLO, SloPolicy, evaluate_slo
from repro.metrics.summary import LatencySummary, percentile, summarize_requests
from repro.models.llm import LLAMA2_70B
from repro.models.performance import AnalyticalPerformanceModel


class TestPercentile:
    def test_median_of_known_sequence(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p99 == pytest.approx(99.01)
        assert summary.max == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_values([])


class TestSummarizeRequests:
    def _completed_request(self, make_request, request_id, arrival, ttft, tbt, tokens):
        request = make_request(request_id=request_id, arrival=arrival, prompt=100, output=tokens)
        request.start_prompt(arrival, "m")
        request.finish_prompt(arrival + ttft)
        for i in range(1, tokens):
            request.generate_token(arrival + ttft + i * tbt)
        return request

    def test_summary_over_mixed_requests(self, make_request):
        done = self._completed_request(make_request, 0, 0.0, 0.1, 0.05, 5)
        pending = make_request(request_id=1)
        metrics = summarize_requests([done, pending], duration_s=10.0)
        assert metrics.completed == 1
        assert metrics.total == 2
        assert metrics.completion_rate == 0.5
        assert metrics.ttft.p50 == pytest.approx(0.1)
        assert metrics.tbt.p50 == pytest.approx(0.05)
        assert metrics.throughput_rps == pytest.approx(0.1)

    def test_no_completed_requests_raises(self, make_request):
        with pytest.raises(ValueError, match="no completed requests"):
            summarize_requests([make_request()])

    def test_duration_defaults_to_last_completion(self, make_request):
        done = self._completed_request(make_request, 0, 0.0, 0.1, 0.05, 3)
        metrics = summarize_requests([done])
        assert metrics.throughput_rps == pytest.approx(1.0 / done.completion_time)


class TestBatchOccupancyTracker:
    def test_cdf_accumulates_time(self):
        tracker = BatchOccupancyTracker()
        tracker.record(1, 3.0)
        tracker.record(10, 1.0)
        tracker.record(100, 1.0)
        assert tracker.total_time == pytest.approx(5.0)
        assert tracker.fraction_at_or_below(1) == pytest.approx(0.6)
        assert tracker.fraction_at_or_below(10) == pytest.approx(0.8)
        cdf = tracker.cdf()
        assert cdf[-1] == (100, pytest.approx(1.0))

    def test_zero_duration_ignored(self):
        tracker = BatchOccupancyTracker()
        tracker.record(5, 0.0)
        assert tracker.total_time == 0.0
        assert tracker.cdf() == []
        assert tracker.fraction_at_or_below(10) == 0.0

    def test_invalid_inputs(self):
        tracker = BatchOccupancyTracker()
        with pytest.raises(ValueError):
            tracker.record(-1, 1.0)
        with pytest.raises(ValueError):
            tracker.record(1, -1.0)

    def test_merge(self):
        a = BatchOccupancyTracker()
        b = BatchOccupancyTracker()
        a.record(1, 1.0)
        b.record(1, 1.0)
        b.record(50, 2.0)
        a.merge(b)
        assert a.total_time == pytest.approx(4.0)
        assert a.as_mapping()[1] == pytest.approx(2.0)


class TestMetricsCollector:
    def test_per_machine_accumulation(self):
        collector = MetricsCollector()
        collector.record_iteration("m0", duration_s=0.1, active_tokens=100, energy_wh=0.5, prompt_tokens=100)
        collector.record_iteration("m0", duration_s=0.2, active_tokens=4, energy_wh=0.2, tokens_generated=4)
        collector.record_iteration("m1", duration_s=0.3, active_tokens=1, energy_wh=0.1)
        stats = collector.machine_stats("m0")
        assert stats.busy_time_s == pytest.approx(0.3)
        assert stats.iterations == 2
        assert stats.prompt_tokens_processed == 100
        assert stats.tokens_generated == 4
        assert collector.total_energy_wh() == pytest.approx(0.8)
        assert collector.machines() == ["m0", "m1"]

    def test_utilization(self):
        collector = MetricsCollector()
        collector.record_iteration("m0", duration_s=5.0, active_tokens=1)
        assert collector.machine_stats("m0").utilization(10.0) == pytest.approx(0.5)
        assert collector.mean_utilization(10.0) == pytest.approx(0.5)
        assert collector.mean_utilization(10.0, ["m0", "missing"]) == pytest.approx(0.25)

    def test_group_occupancy_merges(self):
        collector = MetricsCollector()
        collector.record_iteration("a", duration_s=1.0, active_tokens=1)
        collector.record_iteration("b", duration_s=1.0, active_tokens=100)
        merged = collector.group_occupancy(["a", "b"])
        assert merged.fraction_at_or_below(1) == pytest.approx(0.5)

    def test_as_dict(self):
        collector = MetricsCollector()
        collector.record_iteration("m0", duration_s=1.0, active_tokens=1, energy_wh=1.0)
        report = collector.as_dict(horizon_s=2.0)
        assert report["m0"]["utilization"] == pytest.approx(0.5)
        assert report["m0"]["energy_wh"] == pytest.approx(1.0)


class TestSlo:
    def _request_with_slowdown(self, make_request, reference, slowdown, prompt=1000, output=10):
        request = make_request(request_id=0, arrival=0.0, prompt=prompt, output=output)
        ttft = reference.ttft(prompt) * slowdown
        tbt = reference.tbt(1, prompt) * slowdown
        request.start_prompt(0.0, "m")
        request.finish_prompt(ttft)
        for i in range(1, output):
            request.generate_token(ttft + i * tbt)
        return request

    def test_limits_match_table_vi(self):
        limits = DEFAULT_SLO.limits()
        assert limits[("ttft", 50.0)] == 2.0
        assert limits[("ttft", 99.0)] == 6.0
        assert limits[("tbt", 90.0)] == 1.5
        assert limits[("e2e", 50.0)] == 1.25
        assert len(limits) == 9

    def test_uncontended_requests_satisfy_slo(self, make_request):
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        requests = [self._request_with_slowdown(make_request, reference, 1.0) for _ in range(5)]
        report = evaluate_slo(requests, reference)
        assert report.satisfied
        assert report.violations() == {}
        assert report.worst_margin() <= 1.0

    def test_heavily_slowed_requests_violate(self, make_request):
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        requests = [self._request_with_slowdown(make_request, reference, 4.0) for _ in range(5)]
        report = evaluate_slo(requests, reference)
        assert not report.satisfied
        assert ("tbt", 50.0) in report.violations()
        assert report.worst_margin() > 1.0

    def test_no_completed_requests_raises(self, make_request):
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        with pytest.raises(ValueError):
            evaluate_slo([make_request()], reference)

    def test_custom_policy(self, make_request):
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        lax = SloPolicy(ttft={50: 100.0}, tbt={50: 100.0}, e2e={50: 100.0})
        requests = [self._request_with_slowdown(make_request, reference, 4.0) for _ in range(3)]
        assert evaluate_slo(requests, reference, lax).satisfied

    def test_missing_tbt_series_never_passes_vacuously(self, make_request):
        """Single-output-token requests produce no TBT gaps: the report must
        not claim the TBT SLO is met on zero evidence."""
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        request = make_request(request_id=0, arrival=0.0, prompt=1000, output=1)
        request.start_prompt(0.0, "m")
        request.finish_prompt(reference.ttft(1000))  # completes: output == 1
        report = evaluate_slo([request], reference)
        assert not report.satisfied
        assert report.missing_series() == ["tbt"]
        assert report.samples["tbt"] == 0
        assert all(np.isnan(report.slowdowns[("tbt", pct)]) for pct in (50.0, 90.0, 99.0))
        assert ("tbt", 99.0) in report.violations()
        assert np.isnan(report.worst_margin())

    def test_samples_counted_per_metric(self, make_request):
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        requests = [self._request_with_slowdown(make_request, reference, 1.0, output=10) for _ in range(4)]
        report = evaluate_slo(requests, reference)
        assert report.samples["ttft"] == 4
        assert report.samples["e2e"] == 4
        # Per-token pooling: 9 gaps per 10-token request.
        assert report.samples["tbt"] == 4 * 9

    def test_per_token_mode_catches_stalls_mean_mode_hides(self, make_request):
        """A single long stall inside an otherwise-fast request must show up
        in the paper-faithful per-token P99 but can hide in per-request means."""
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        prompt, output = 1000, 101
        ref_tbt = reference.tbt(1, prompt)
        requests = []
        for request_id in range(3):
            request = make_request(request_id=request_id, arrival=0.0, prompt=prompt, output=output)
            ttft = reference.ttft(prompt)
            request.start_prompt(0.0, "m")
            request.finish_prompt(ttft)
            time = ttft
            for i in range(1, output):
                # 97 uncontended gaps and three 40x stalls (3% of tokens): the
                # per-request mean stays ~2.2x, under the 5.0 P99 limit.
                time += ref_tbt * (40.0 if i in (25, 50, 75) else 1.0)
                request.generate_token(time)
            requests.append(request)
        per_token = evaluate_slo(requests, reference, tbt_mode="per-token")
        per_mean = evaluate_slo(requests, reference, tbt_mode="per-request-mean")
        assert ("tbt", 99.0) in per_token.violations()
        assert ("tbt", 99.0) not in per_mean.violations()

    def test_unknown_tbt_mode_rejected(self, make_request):
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        requests = [self._request_with_slowdown(make_request, reference, 1.0)]
        with pytest.raises(ValueError, match="tbt_mode"):
            evaluate_slo(requests, reference, tbt_mode="median")


class TestCoalescedRecording:
    def test_record_coalesced_equals_sequential_record_iteration(self):
        """Bulk recording must match per-iteration recording bit for bit."""
        durations = [0.0301, 0.0302, 0.0303, 0.0304]
        energies = [0.011, 0.012, 0.013, 0.014]
        sequential = MetricsCollector()
        for duration, energy in zip(durations, energies):
            sequential.record_iteration("m0", duration, 48, energy, 0, 48)
        bulk = MetricsCollector()
        bulk.record_coalesced("m0", len(durations), 48, durations, energies, 48)
        a = sequential.machine_stats("m0")
        b = bulk.machine_stats("m0")
        assert a.busy_time_s == b.busy_time_s
        assert a.energy_wh == b.energy_wh
        assert a.iterations == b.iterations
        assert a.tokens_generated == b.tokens_generated
        assert a.occupancy.as_mapping() == b.occupancy.as_mapping()

    def test_record_coalesced_zero_count_is_a_noop(self):
        collector = MetricsCollector()
        collector.record_coalesced("m0", 0, 8, [], [], 8)
        assert collector.machine_stats("m0").iterations == 0

    def test_occupancy_record_bulk_matches_sequential(self):
        sequential = BatchOccupancyTracker()
        for duration in (0.1, 0.2, 0.3):
            sequential.record(7, duration)
        bulk = BatchOccupancyTracker()
        bulk.record_bulk(7, [0.1, 0.2, 0.3])
        assert sequential.as_mapping() == bulk.as_mapping()
