"""Unit tests for the steady-state rotation forest (`repro.batching.rotation`).

The forest must reproduce the flat ``(-priority_boost, arrival, id)`` order
exactly through any sequence of selections, aging passes, insertions, and
flattenings — the machine-level parity tests in
``tests/property/test_accounting_invariants.py`` exercise it end-to-end;
these tests pin the structural invariants directly.
"""

from __future__ import annotations

import random

from repro.batching.policies import priority_key
from repro.batching.rotation import RotationForest
from repro.simulation.request import Request
from repro.workload.trace import RequestDescriptor


def _request(request_id: int, arrival: float, boost: float = 0.0, prompt: int = 100, output: int = 50) -> Request:
    request = Request(
        descriptor=RequestDescriptor(
            request_id=request_id, arrival_time_s=arrival, prompt_tokens=prompt, output_tokens=output
        )
    )
    request.priority_boost = boost
    return request


def _ordered_pool(count: int, rng: random.Random) -> list[Request]:
    pool = [
        _request(i, arrival=rng.random() * 10.0, boost=float(rng.randrange(4)), output=rng.randrange(5, 60))
        for i in range(count)
    ]
    pool.sort(key=priority_key)
    return pool


class TestRotationForest:
    def test_flatten_roundtrips_the_view(self):
        rng = random.Random(1)
        pool = _ordered_pool(50, rng)
        forest = RotationForest.from_ordered_view(pool)
        assert forest is not None
        assert forest.total_size() == 50
        assert forest.flatten() == pool

    def test_non_integer_boosts_are_rejected(self):
        pool = [_request(0, 1.0, boost=0.5)]
        assert RotationForest.from_ordered_view(pool) is None

    def test_selection_is_the_view_prefix(self):
        rng = random.Random(2)
        pool = _ordered_pool(40, rng)
        forest = RotationForest.from_ordered_view(pool)
        selection = forest.select(16, 10**9)
        assert selection is not None
        assert selection.requests() == pool[:16]
        assert selection.context == sum(r.prompt_tokens + r.generated_tokens for r in pool[:16])

    def test_selection_respects_kv_budget(self):
        pool = _ordered_pool(10, random.Random(3))
        forest = RotationForest.from_ordered_view(pool)
        # A budget below the prefix context forces the policy's skip logic,
        # which the forest cannot reproduce: it must decline (and leave the
        # forest untouched for the exact fallback path).
        assert forest.select(8, 1) is None
        assert forest.flatten() == pool

    def test_aging_matches_flat_semantics(self):
        """Selection + aging over the forest == the same over a flat list."""
        rng = random.Random(4)
        pool = _ordered_pool(30, rng)
        mirror = {r.request_id: r.priority_boost for r in pool}
        forest = RotationForest.from_ordered_view(pool)
        batch = 8
        for _ in range(25):
            selection = forest.select(batch, 10**9)
            selected = selection.requests()
            selected_ids = {r.request_id for r in selected}
            # Flat reference: everyone skipped gains +1.
            for request_id in mirror:
                if request_id not in selected_ids:
                    mirror[request_id] += 1.0
            forest.note_serviced(selection, [None] * len(selection.segments))
            survivors = selection.extracted
            survivors_context = selection.extracted_context + len(survivors)
            for request in selected:
                request.generated_tokens += 1
            forest.commit_aging(selection, survivors, survivors_context)
        flat = forest.flatten()
        assert [r.request_id for r in flat] == [
            r.request_id for r in sorted(flat, key=priority_key)
        ]
        for request in flat:
            assert request.priority_boost == mirror[request.request_id]

    def test_insert_keeps_order(self):
        rng = random.Random(5)
        pool = _ordered_pool(20, rng)
        forest = RotationForest.from_ordered_view(pool)
        newcomer = _request(1000, arrival=rng.random() * 10.0, boost=0.0)
        forest.insert(newcomer)
        flat = forest.flatten()
        assert len(flat) == 21
        assert [priority_key(r) for r in flat] == sorted(priority_key(r) for r in flat)

    def test_galloping_extraction_across_sibling_runs(self):
        """Force same-level sibling runs and verify k-way extraction order."""
        rng = random.Random(6)
        pool = _ordered_pool(64, rng)
        forest = RotationForest.from_ordered_view(pool)
        for _ in range(40):
            expected = forest.flatten()  # the exact flat-view order before selecting
            selection = forest.select(7, 10**9)
            # Wholly-selected levels list sibling runs in run order, so the
            # selection is set-identical (not order-identical) to the view
            # prefix; every order-sensitive consumer re-derives order from
            # the flattened view.
            assert {r.request_id for r in selection.requests()} == {
                r.request_id for r in expected[:7]
            }
            assert selection.context == sum(
                r.prompt_tokens + r.generated_tokens for r in expected[:7]
            )
            for request in selection.requests():
                request.generated_tokens += 1  # emulate the decode service
            forest.note_serviced(selection, [None] * len(selection.segments))
            survivors = selection.extracted
            forest.commit_aging(
                selection, survivors, selection.extracted_context + len(survivors)
            )
