"""Unit tests for the dynamic pool autoscaler and the scheduler's re-purposing hooks."""

from __future__ import annotations

import pytest

from repro.core.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.core.cluster import ClusterSimulation
from repro.core.cluster_scheduler import ClusterScheduler
from repro.core.designs import baseline_h100, splitwise_hh
from repro.core.machine import MachineRole, SimulatedMachine
from repro.hardware.machine import DGX_H100
from repro.metrics.collectors import MetricsCollector
from repro.models.llm import LLAMA2_70B
from repro.simulation.engine import SimulationEngine
from repro.simulation.request import Request
from repro.workload.scenarios import PiecewiseRateArrival, get_scenario
from repro.workload.distributions import get_workload
from repro.workload.generator import TraceGenerator
from repro.workload.trace import RequestDescriptor


def _machine(name: str, engine: SimulationEngine, role: MachineRole, metrics: MetricsCollector):
    return SimulatedMachine(
        name=name, spec=DGX_H100, model=LLAMA2_70B, engine=engine, role=role, metrics=metrics
    )


def _request(request_id: int, prompt: int = 512, output: int = 8) -> Request:
    return Request(
        descriptor=RequestDescriptor(
            request_id=request_id, arrival_time_s=0.0, prompt_tokens=prompt, output_tokens=output
        )
    )


@pytest.fixture
def split_cluster():
    engine = SimulationEngine()
    metrics = MetricsCollector()
    machines = [
        _machine("prompt-0", engine, MachineRole.PROMPT, metrics),
        _machine("prompt-1", engine, MachineRole.PROMPT, metrics),
        _machine("token-0", engine, MachineRole.TOKEN, metrics),
        _machine("token-1", engine, MachineRole.TOKEN, metrics),
    ]
    scheduler = ClusterScheduler(engine=engine, machines=machines, model=LLAMA2_70B, split=True)
    return engine, scheduler, machines


class TestSchedulerHooks:
    def test_park_and_unpark_idle_machine(self, split_cluster):
        _, scheduler, machines = split_cluster
        machine = machines[0]
        scheduler.park_machine(machine)
        assert machine in scheduler.parked_pool
        assert machine not in scheduler.prompt_pool
        assert scheduler.pool_sizes() == {"prompt": 1, "token": 2, "mixed": 0, "parked": 1}
        scheduler.unpark_machine(machine)
        assert machine in scheduler.prompt_pool
        assert scheduler.pool_sizes()["parked"] == 0

    def test_park_rejects_busy_machine(self, split_cluster):
        engine, scheduler, machines = split_cluster
        scheduler.submit(_request(0))
        engine.run(until=0.01)
        busy = next(m for m in machines if m.has_prompt_work() or m.is_busy)
        with pytest.raises(ValueError, match="only idle machines"):
            scheduler.park_machine(busy)

    def test_parked_machine_not_routed_to(self, split_cluster):
        engine, scheduler, machines = split_cluster
        scheduler.park_machine(machines[0])
        for request_id in range(6):
            decision = scheduler.submit(_request(request_id))
            assert decision.prompt_machine is not machines[0]
            assert decision.token_machine is not machines[0]

    def test_retarget_idle_machine_switches_pool_immediately(self, split_cluster):
        _, scheduler, machines = split_cluster
        machine = machines[3]  # idle token machine
        scheduler.retarget_home(machine, MachineRole.PROMPT)
        assert machine.home_role is MachineRole.PROMPT
        assert machine in scheduler.prompt_pool
        assert machine not in scheduler.token_pool
        assert scheduler.count_home_machines(MachineRole.PROMPT) == 3

    def test_retarget_busy_machine_drains_through_mixed_pool(self, split_cluster):
        engine, scheduler, machines = split_cluster
        # Give token-0 long-lived decode work, then re-purpose it toward the
        # prompt pool while that work is still draining.
        request = _request(0, prompt=256, output=400)
        decision = scheduler.submit(request)
        engine.run(until=0.2)  # prompt done, KV transfer queued/underway
        token_machine = decision.token_machine
        engine.run(until=0.5)
        if not token_machine.has_token_work():
            pytest.skip("decode finished before the re-purpose could be exercised")
        scheduler.retarget_home(token_machine, MachineRole.PROMPT)
        # Drain-before-switch: still serving foreign (token) work from mixed.
        assert token_machine in scheduler.mixed_pool
        assert token_machine.role is MachineRole.MIXED
        engine.run()
        assert request.is_complete
        assert token_machine in scheduler.prompt_pool
        assert token_machine.role is MachineRole.PROMPT

    def test_retarget_to_mixed_rejected(self, split_cluster):
        _, scheduler, machines = split_cluster
        with pytest.raises(ValueError):
            scheduler.retarget_home(machines[0], MachineRole.MIXED)

    def test_failed_machine_leaves_parked_pool(self, split_cluster):
        _, scheduler, machines = split_cluster
        scheduler.park_machine(machines[0])
        scheduler.fail_machine(machines[0])
        assert scheduler.pool_sizes()["parked"] == 0
        assert machines[0] in scheduler.failed_machines


def _square_wave_trace(seed=0):
    """Busy half then idle half: forces scale-down and keeps determinism."""
    arrival = PiecewiseRateArrival(schedule=((40.0, 5.0), (80.0, 0.2)))
    generator = TraceGenerator(workload=get_workload("conversation"), arrival=arrival, seed=seed)
    return generator.generate(120.0)


class TestPoolAutoscaler:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(interval_s=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(hysteresis_ticks=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_prompt_machines=0)

    def test_requires_split_cluster(self):
        simulation = ClusterSimulation(baseline_h100(2), autoscaler=True)
        with pytest.raises(RuntimeError, match="split"):
            simulation.run(_square_wave_trace())

    def test_parks_idle_machines_and_accounts_hours(self):
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=True)
        result = simulation.run(_square_wave_trace())
        autoscaler = result.autoscaler
        assert result.completion_rate == 1.0
        assert any(event.action == "park" for event in autoscaler.timeline)
        assert autoscaler.machine_hours_saved() > 0
        static_hours = result.design.num_machines * result.duration_s / 3600.0
        assert result.machine_hours() == pytest.approx(static_hours - autoscaler.machine_hours_saved())
        assert result.machine_hours() < static_hours

    def test_respects_minimum_pool_sizes(self):
        config = AutoscalerConfig(min_prompt_machines=2, min_token_machines=2)
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=config)
        result = simulation.run(_square_wave_trace())
        scheduler = result.scheduler
        assert result.completion_rate == 1.0
        assert scheduler.count_home_machines(MachineRole.PROMPT) >= 2
        assert scheduler.count_home_machines(MachineRole.TOKEN) >= 2
        # Only the third prompt machine was ever eligible for parking.
        parked_names = {event.machine for event in result.autoscaler.timeline if event.action == "park"}
        assert len(parked_names) <= 1

    def test_machine_counts_conserved_through_run(self):
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=True)
        trace = _square_wave_trace(seed=5)
        simulation.autoscaler.attach(simulation.engine, simulation.scheduler)
        engine = simulation.engine
        for request in [Request(descriptor=d) for d in trace]:
            engine.schedule_at(request.arrival_time, lambda r=request: simulation.scheduler.submit(r), priority=2)
        steps = 0
        while engine.step():
            steps += 1
            if steps % 50 == 0:
                sizes = simulation.scheduler.pool_sizes()
                assert sum(sizes.values()) == 5
        assert sum(simulation.scheduler.pool_sizes().values()) == 5

    def test_busy_idle_busy_wave_exercises_every_action(self):
        """A re-spiking load must recall parked capacity (unpark) and shift
        machines between pools (repurpose), not just park them."""
        arrival = PiecewiseRateArrival(schedule=((30.0, 5.0), (40.0, 0.2), (30.0, 6.0)))
        trace = TraceGenerator(
            workload=get_workload("conversation"), arrival=arrival, seed=21
        ).generate(100.0)
        config = AutoscalerConfig(interval_s=3.0, hysteresis_ticks=1, cooldown_s=5.0)
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=config)
        result = simulation.run(trace)
        assert result.completion_rate == 1.0
        actions = {event.action for event in result.autoscaler.timeline}
        assert actions == {"park", "unpark", "repurpose"}
        assert result.autoscaler.repurpose_count() >= 2
        assert result.autoscaler.machine_hours_saved() > 0

    def test_disabled_parking_only_repurposes(self):
        config = AutoscalerConfig(park_idle_machines=False, interval_s=2.0, hysteresis_ticks=1)
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=config)
        result = simulation.run(_square_wave_trace())
        assert all(event.action != "park" for event in result.autoscaler.timeline)
        assert result.autoscaler.machine_hours_saved() == 0.0

    def test_timeline_as_dicts_is_json_friendly(self):
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=True)
        result = simulation.run(_square_wave_trace())
        for entry in result.autoscaler.timeline_as_dicts():
            assert set(entry) == {"time_s", "machine", "action", "from", "to", "reason"}

    def test_static_run_has_no_autoscaler(self):
        simulation = ClusterSimulation(splitwise_hh(1, 1))
        result = simulation.run(_square_wave_trace())
        assert result.autoscaler is None
        assert result.machine_hours() == pytest.approx(2 * result.duration_s / 3600.0)


class TestScenarioExperiment:
    def test_scenario_sweep_reports_savings(self):
        from repro.experiments import scenario_sweep

        results = scenario_sweep(presets=["diurnal"], scale=0.7, seed=0)
        entry = results["diurnal"]
        assert entry["static"]["completion_rate"] == 1.0
        assert entry["autoscaled"]["completion_rate"] == 1.0
        assert entry["autoscaled"]["tbt_slo_samples"] > 0
        assert entry["machine_hours_saved"] >= 0.0

    def test_preset_overrides_flow_into_config(self):
        preset = get_scenario("burst-storm")
        config = AutoscalerConfig(**dict(preset.autoscaler_overrides))
        assert config.interval_s == 2.0
        assert config.park_idle_machines is False
