"""Observability plane: spans, Perfetto export, metrics, and the profiler."""

from __future__ import annotations

import json

import pytest

from repro.core.designs import splitwise_hh
from repro.experiments.fleet_sweep import prepare_fleet_run
from repro.fleet.fleet import FleetSimulation
from repro.obs import (
    Histogram,
    MetricsRegistry,
    ObservabilityConfig,
    PhaseProfiler,
    SpanRecorder,
    bucket_for_tag,
    build_trace,
    export_trace,
    metric_key,
    span_census,
    validate_trace,
)
from repro.simulation.engine import SimulationEngine
from repro.workload.scenarios import get_scenario
from repro.workload.trace import Trace


def _storm_observed(seed=7, **config_kwargs):
    """Observed failure-storm run; returns (result, fleet, plane)."""
    fleet, trace, failures = prepare_fleet_run(
        get_scenario("failure-storm"),
        clusters=2,
        burst_clusters=1,
        seed=seed,
        scale=0.2,
        chaos="failure-storm",
    )
    plane = fleet.observe(ObservabilityConfig(**config_kwargs))
    result = fleet.run(trace, failures=failures)
    return result, fleet, plane


class TestSpanCensus:
    """The trace's root spans must close the fleet census exactly."""

    def test_failure_storm_census_closes(self):
        result, _fleet, plane = _storm_observed()
        census = plane.census()
        assert sum(census.values()) == len(result.requests)
        assert census.get("completed", 0) == len(result.completed_requests)
        assert census.get("shed", 0) == result.requests_shed
        assert census.get("expired", 0) == result.requests_expired
        assert "incomplete" not in census  # drained run: every journey ended

    def test_trace_census_matches_plane_census(self):
        _result, _fleet, plane = _storm_observed()
        payload = build_trace(plane.recorder)
        assert span_census(payload) == plane.census()

    def test_finalize_is_idempotent(self):
        result, _fleet, plane = _storm_observed()
        spans_before = plane.span_count
        plane.finalize(result)  # second call (run() already finalized)
        assert plane.span_count == spans_before
        assert sum(plane.census().values()) == len(result.requests)


class TestPerfettoSchema:
    def test_emitted_trace_validates(self):
        _result, _fleet, plane = _storm_observed()
        payload = build_trace(plane.recorder)
        assert validate_trace(payload) == []

    def test_pid_tid_map_to_cluster_and_tracks(self):
        _result, fleet, plane = _storm_observed()
        payload = build_trace(plane.recorder)
        processes = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        cluster_names = {c.name for c in fleet.clusters}
        named = set(processes.values())
        assert "fleet" in named
        assert named - {"fleet"} <= cluster_names
        # Every non-metadata event lands on a named pid/tid.
        tids = {
            (e["pid"], e["tid"])
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for event in payload["traceEvents"]:
            if event["ph"] == "M":
                continue
            assert (event["pid"], event["tid"]) in tids

    def test_timestamps_monotone_and_x_complete(self):
        _result, _fleet, plane = _storm_observed()
        payload = build_trace(plane.recorder)
        last = None
        for event in payload["traceEvents"]:
            if event["ph"] == "M":
                continue
            assert event["ts"] >= 0
            if last is not None:
                assert event["ts"] >= last
            last = event["ts"]
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_export_is_byte_stable(self, tmp_path):
        _result, _fleet, plane = _storm_observed()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        export_trace(plane.recorder, str(a))
        export_trace(plane.recorder, str(b))
        assert a.read_bytes() == b.read_bytes()
        assert validate_trace(json.loads(a.read_text())) == []

    def test_validator_flags_broken_traces(self):
        assert validate_trace({}) == ["payload has no traceEvents list"]
        bad = {
            "traceEvents": [
                {"ph": "M", "name": "process_name", "pid": 1, "tid": 0, "args": {"name": "p"}},
                {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1, "args": {"name": "t"}},
                {"ph": "X", "name": "s", "pid": 1, "tid": 1, "ts": 5.0, "dur": -1.0},
                {"ph": "X", "name": "s", "pid": 1, "tid": 1, "ts": 1.0, "dur": 1.0},
                {"ph": "X", "name": "s", "pid": 2, "tid": 9, "ts": 2.0, "dur": 1.0},
                {"ph": "B", "name": "open", "pid": 1, "tid": 1, "ts": 3.0},
            ]
        }
        problems = validate_trace(bad)
        assert any("bad dur" in p for p in problems)
        assert any("monotonicity" in p for p in problems)
        assert any("unnamed pid" in p for p in problems)
        assert any("unclosed B" in p for p in problems)


class TestEmptyRun:
    def test_empty_trace_yields_valid_zero_span_trace(self):
        fleet = FleetSimulation(splitwise_hh(1, 1), num_clusters=1)
        plane = fleet.observe(ObservabilityConfig())
        result = fleet.run(Trace(requests=(), name="empty"))
        assert result.requests == []
        assert plane.census() == {}
        payload = build_trace(plane.recorder)
        assert validate_trace(payload) == []
        assert span_census(payload) == {}
        # No journeys: only (possibly zero) metadata records.
        assert all(e["ph"] == "M" for e in payload["traceEvents"])

    def test_fresh_recorder_exports_cleanly(self):
        payload = build_trace(SpanRecorder())
        assert payload["traceEvents"] == []
        assert validate_trace(payload) == []


class TestMetrics:
    def test_ticker_samples_and_exports(self, tmp_path):
        _result, _fleet, plane = _storm_observed()
        registry = plane.registry
        assert registry.num_samples > 0
        key = metric_key("outstanding_requests", cluster="cluster-0")
        assert key in registry.columns
        assert len(registry.columns[key]) == registry.num_samples
        jsonl = registry.to_jsonl()
        rows = [json.loads(line) for line in jsonl.splitlines()]
        assert len(rows) == registry.num_samples
        assert rows[0]["time_s"] == 0.0  # first sample at t=0
        csv = registry.to_csv()
        assert csv.splitlines()[0].startswith("time_s,")
        assert len(csv.splitlines()) == registry.num_samples + 1
        prom = registry.prometheus_text()
        assert "# TYPE fleet_outstanding_requests gauge" in prom
        assert 'fleet_outstanding_depth_bucket{le="+Inf"}' in prom

    def test_column_set_is_frozen_after_first_sample(self):
        registry = MetricsRegistry()
        registry.sample(0.0, {"a": 1.0, "b": 2.0})
        with pytest.raises(ValueError, match="column set"):
            registry.sample(1.0, {"a": 1.0})

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram((1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            hist.observe(value)
        assert hist.cumulative() == [(1.0, 1), (5.0, 2), (10.0, 3), (float("inf"), 4)]
        assert hist.total == 4

    def test_metrics_files_written(self, tmp_path):
        metrics_path = tmp_path / "metrics.jsonl"
        _result, _fleet, plane = _storm_observed(metrics_path=str(metrics_path))
        provenance = plane.export()
        assert metrics_path.exists()
        prom_path = tmp_path / "metrics.prom"
        assert prom_path.exists()
        assert provenance["prometheus_path"] == str(prom_path)
        assert provenance["metric_samples"] == plane.registry.num_samples


class TestLifecycleSpans:
    def test_storm_records_control_plane_spans(self):
        result, _fleet, plane = _storm_observed()
        cats = {span.cat for span in plane.recorder.spans}
        assert "request" in cats
        assert "phase" in cats
        assert "control" in cats  # injections / health transitions / provisioner
        names = {span.name for span in plane.recorder.spans}
        assert any(name.startswith("fault:") for name in names)
        # Every fired-or-skipped injection left an instant.
        injections = [s for s in plane.recorder.spans if s.name.startswith("fault:")]
        snap = result.injector.snapshot()
        assert len(injections) == sum(snap["fired"].values()) + sum(snap["skipped"].values())

    def test_shed_requests_get_zero_length_root_spans(self):
        result, _fleet, plane = _storm_observed()
        shed_ids = {r.request_id for r in result.shed_requests}
        if not shed_ids:  # pragma: no cover - storm preset always sheds
            pytest.skip("storm run shed nothing at this seed")
        roots = {
            span.args["outcome"]
            for span in plane.recorder.spans
            if span.cat == "request" and int(span.name.split()[-1]) in shed_ids
        }
        assert roots == {"shed"}


class TestPhaseProfiler:
    def test_bucket_mapping(self):
        assert bucket_for_tag("fleet-arrival:7") == "routing"
        assert bucket_for_tag("retry:3") == "lifecycle"
        assert bucket_for_tag("fault:machine-fail:cluster-0/p0") == "faults"
        assert bucket_for_tag("metrics-tick") == "observability"
        assert bucket_for_tag("") == "machine-step"

    def test_attach_detach_round_trip(self):
        engine = SimulationEngine()
        profiler = PhaseProfiler()
        profiler.attach(engine)
        assert profiler.attached
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1), priority=2, tag="arrival:1")
        engine.run()
        assert fired == [1]
        snapshot = profiler.snapshot()
        assert snapshot["routing"]["events"] == 1
        assert snapshot["routing"]["wall_s"] >= 0.0
        profiler.detach()
        assert not profiler.attached
        # The engine's own method is restored (class attribute, not wrapper).
        assert "schedule_at" not in vars(engine)
        with pytest.raises(RuntimeError):
            profiler.attach(engine)
            profiler.attach(engine)

    def test_unobserved_fleet_has_no_plane(self):
        fleet = FleetSimulation(splitwise_hh(1, 1), num_clusters=1)
        assert fleet.obs is None
