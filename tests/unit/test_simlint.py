"""Tests for the simlint determinism linter.

Every rule gets at least one fixture snippet that must fire and one
near-miss snippet that must not; plus pragma suppression, baseline
application (including stale-entry detection), the ``--json`` document,
and the CLI exit-code contract.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY
from repro.analysis.simlint import lint_source, main

SIM_PATH = "src/repro/fleet/example.py"  # inside an ordering-sensitive package
PLAIN_PATH = "src/repro/workload/example.py"  # simulated code, not ordering-sensitive
TEST_PATH = "tests/unit/test_example.py"


def rules_of(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


def assert_fires(source: str, rule: str, path: str = PLAIN_PATH) -> list[Finding]:
    findings = lint_source(source, path=path)
    assert rule in rules_of(findings), f"expected {rule} to fire on:\n{source}"
    return [f for f in findings if f.rule == rule]


def assert_clean(source: str, rule: str, path: str = PLAIN_PATH) -> None:
    findings = lint_source(source, path=path)
    assert rule not in rules_of(findings), (
        f"expected {rule} NOT to fire on:\n{source}\ngot: {findings}"
    )


# ---------------------------------------------------------------------------
# SIM001: unseeded / global-state randomness
# ---------------------------------------------------------------------------


class TestSIM001:
    def test_global_stdlib_draw_fires(self):
        assert_fires("import random\nx = random.random()\n", "SIM001")

    def test_global_stdlib_shuffle_fires(self):
        assert_fires("import random\nrandom.shuffle(items)\n", "SIM001")

    def test_unseeded_default_rng_fires(self):
        assert_fires("import numpy as np\nrng = np.random.default_rng()\n", "SIM001")

    def test_legacy_np_global_fires(self):
        assert_fires("import numpy as np\nx = np.random.rand(3)\n", "SIM001")

    def test_unseeded_random_instance_fires(self):
        assert_fires("import random\nrng = random.Random()\n", "SIM001")

    def test_system_random_fires(self):
        assert_fires("import random\nrng = random.SystemRandom()\n", "SIM001")

    def test_seeded_stdlib_in_sim_dir_fires(self):
        # Inside ordering-sensitive packages even a *seeded* stdlib stream
        # must justify itself in the baseline.
        assert_fires("import random\nrng = random.Random(seed)\n", "SIM001", path=SIM_PATH)

    def test_seeded_default_rng_clean(self):
        assert_clean("import numpy as np\nrng = np.random.default_rng(42)\n", "SIM001")

    def test_seeded_stdlib_outside_sim_dirs_clean(self):
        assert_clean("import random\nrng = random.Random(7)\n", "SIM001")

    def test_generator_method_clean(self):
        assert_clean("x = rng.random()\ny = rng.integers(0, 10)\n", "SIM001")

    def test_test_code_exempt(self):
        assert_clean("import random\nx = random.random()\n", "SIM001", path=TEST_PATH)


# ---------------------------------------------------------------------------
# SIM002: wall-clock reads
# ---------------------------------------------------------------------------


class TestSIM002:
    def test_time_time_fires(self):
        assert_fires("import time\nt = time.time()\n", "SIM002")

    def test_perf_counter_fires(self):
        assert_fires("import time\nt = time.perf_counter()\n", "SIM002")

    def test_datetime_now_fires(self):
        assert_fires(
            "import datetime\nt = datetime.datetime.now()\n", "SIM002"
        )

    def test_engine_now_clean(self):
        assert_clean("t = engine.now\n", "SIM002")

    def test_perf_module_allowlisted(self):
        assert_clean(
            "import time\nt = time.perf_counter()\n", "SIM002",
            path="src/repro/metrics/perf.py",
        )

    def test_cli_allowlisted(self):
        assert_clean("import time\nt = time.time()\n", "SIM002", path="src/repro/cli.py")

    def test_benchmarks_allowlisted(self):
        assert_clean(
            "import time\nt = time.monotonic()\n", "SIM002",
            path="benchmarks/bench_engine.py",
        )

    def test_test_code_exempt(self):
        assert_clean("import time\nt = time.time()\n", "SIM002", path=TEST_PATH)


# ---------------------------------------------------------------------------
# SIM003: set iteration order
# ---------------------------------------------------------------------------


class TestSIM003:
    def test_for_over_set_literal_fires(self):
        assert_fires("for m in {1, 2, 3}:\n    go(m)\n", "SIM003", path=SIM_PATH)

    def test_for_over_tracked_set_name_fires(self):
        assert_fires(
            "machines = set()\nfor m in machines:\n    go(m)\n", "SIM003", path=SIM_PATH
        )

    def test_for_over_annotated_self_attr_fires(self):
        source = (
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self.live: set[int] = set()\n"
            "    def drain(self):\n"
            "        for m in self.live:\n"
            "            go(m)\n"
        )
        assert_fires(source, "SIM003", path=SIM_PATH)

    def test_list_of_set_fires(self):
        assert_fires("s = {1, 2}\nitems = list(s)\n", "SIM003", path=SIM_PATH)

    def test_comprehension_over_set_fires(self):
        assert_fires("s = set()\nout = [x for x in s]\n", "SIM003", path=SIM_PATH)

    def test_set_pop_fires(self):
        assert_fires("s = {1, 2}\nx = s.pop()\n", "SIM003", path=SIM_PATH)

    def test_sorted_set_clean(self):
        assert_clean("s = {3, 1}\nfor m in sorted(s):\n    go(m)\n", "SIM003", path=SIM_PATH)

    def test_set_into_set_comprehension_clean(self):
        # set -> set keeps it unordered; no order is observed.
        assert_clean("s = {1, 2}\nout = {x + 1 for x in s}\n", "SIM003", path=SIM_PATH)

    def test_rebound_name_clean(self):
        assert_clean(
            "s = {1, 2}\ns = sorted(s)\nfor m in s:\n    go(m)\n", "SIM003", path=SIM_PATH
        )

    def test_outside_sim_dirs_not_checked(self):
        assert_clean("for m in {1, 2}:\n    go(m)\n", "SIM003", path=PLAIN_PATH)

    def test_membership_check_clean(self):
        assert_clean("s = {1, 2}\nok = 1 in s\n", "SIM003", path=SIM_PATH)


# ---------------------------------------------------------------------------
# SIM004: named event priorities
# ---------------------------------------------------------------------------


class TestSIM004:
    def test_bare_int_priority_fires(self):
        assert_fires(
            "engine.schedule_at(t, cb, priority=1, tag='x')\n", "SIM004", path=SIM_PATH
        )

    def test_arbitrary_name_fires(self):
        assert_fires(
            "engine.schedule_after(d, cb, priority=level)\n", "SIM004", path=SIM_PATH
        )

    def test_named_constant_clean(self):
        assert_clean(
            "engine.schedule_at(t, cb, priority=FAULT_EVENT_PRIORITY)\n",
            "SIM004",
            path=SIM_PATH,
        )

    def test_dotted_constant_clean(self):
        assert_clean(
            "engine.schedule_at(t, cb, priority=events.ARRIVAL_EVENT_PRIORITY)\n",
            "SIM004",
            path=SIM_PATH,
        )

    def test_forwarded_priority_variable_clean(self):
        # Forwarding a parameter literally named `priority` is the
        # RecurringTask pattern, not a re-derived ladder.
        assert_clean(
            "engine.schedule_after(d, cb, priority=priority)\n", "SIM004", path=SIM_PATH
        )

    def test_positional_priority_not_checked(self):
        # Only keyword priorities are inspected; positional ones are rare
        # enough that the rule stays quiet rather than guessing signatures.
        assert_clean("engine.schedule_at(t, cb, 1)\n", "SIM004", path=SIM_PATH)

    def test_default_priority_omitted_clean(self):
        assert_clean("engine.schedule_at(t, cb, tag='x')\n", "SIM004", path=SIM_PATH)


# ---------------------------------------------------------------------------
# SIM005: frozen-instance mutation
# ---------------------------------------------------------------------------


class TestSIM005:
    def test_foreign_setattr_fires(self):
        assert_fires(
            "object.__setattr__(event, 'cancelled', True)\n", "SIM005", path=SIM_PATH
        )

    def test_foreign_delattr_fires(self):
        assert_fires("object.__delattr__(cfg, 'seed')\n", "SIM005", path=SIM_PATH)

    def test_self_setattr_clean(self):
        source = (
            "class Event:\n"
            "    def _mark(self):\n"
            "        object.__setattr__(self, 'fired', True)\n"
        )
        assert_clean(source, "SIM005", path=SIM_PATH)


# ---------------------------------------------------------------------------
# SIM006: exact simulated-time comparison
# ---------------------------------------------------------------------------


class TestSIM006:
    def test_eq_on_time_attrs_fires(self):
        assert_fires("if event.time == engine.now:\n    pass\n", "SIM006", path=SIM_PATH)

    def test_neq_on_deadline_fires(self):
        assert_fires("done = deadline != finish_time\n", "SIM006", path=SIM_PATH)

    def test_suffix_match_fires(self):
        assert_fires("if arrival_time_s == depart_time_s:\n    pass\n", "SIM006", path=SIM_PATH)

    def test_literal_sentinel_clean(self):
        # Comparisons against literal sentinels are state flags, not
        # independently computed times.
        assert_clean("if start_time == 0.0:\n    pass\n", "SIM006", path=SIM_PATH)

    def test_inequality_clean(self):
        assert_clean("if event.time <= engine.now:\n    pass\n", "SIM006", path=SIM_PATH)

    def test_non_time_names_clean(self):
        assert_clean("if count == total:\n    pass\n", "SIM006", path=SIM_PATH)


# ---------------------------------------------------------------------------
# SIM007: os.environ reads
# ---------------------------------------------------------------------------


class TestSIM007:
    def test_environ_get_fires(self):
        assert_fires("import os\nv = os.environ.get('X')\n", "SIM007")

    def test_getenv_fires(self):
        assert_fires("import os\nv = os.getenv('X', '1')\n", "SIM007")

    def test_environ_subscript_fires(self):
        assert_fires("import os\nv = os.environ['X']\n", "SIM007")

    def test_cli_allowlisted(self):
        assert_clean("import os\nv = os.environ.get('X')\n", "SIM007", path="src/repro/cli.py")

    def test_config_module_allowlisted(self):
        assert_clean(
            "import os\nv = os.getenv('X')\n", "SIM007", path="src/repro/fleet/config.py"
        )

    def test_test_code_exempt(self):
        assert_clean("import os\nv = os.environ['X']\n", "SIM007", path=TEST_PATH)


# ---------------------------------------------------------------------------
# Pragma suppression
# ---------------------------------------------------------------------------


class TestPragmas:
    def test_trailing_pragma_suppresses(self):
        source = "import time\nt = time.time()  # simlint: disable=SIM002\n"
        assert_clean(source, "SIM002")

    def test_trailing_pragma_is_rule_specific(self):
        source = "import time\nt = time.time()  # simlint: disable=SIM007\n"
        assert_fires(source, "SIM002")

    def test_standalone_pragma_covers_next_line(self):
        source = (
            "import time\n"
            "# simlint: disable=SIM002\n"
            "t = time.time()\n"
        )
        assert_clean(source, "SIM002")

    def test_standalone_pragma_does_not_leak_further(self):
        source = (
            "import time\n"
            "# simlint: disable=SIM002\n"
            "a = 1\n"
            "t = time.time()\n"
        )
        assert_fires(source, "SIM002")

    def test_file_wide_pragma(self):
        source = (
            "# simlint: disable-file=SIM002\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert_clean(source, "SIM002")

    def test_multiple_rules_one_pragma(self):
        source = (
            "import time, os\n"
            "t = time.time()  # simlint: disable=SIM002,SIM007\n"
        )
        assert_clean(source, "SIM002")

    def test_pragma_with_trailing_justification_prose(self):
        source = (
            "import time\n"
            "t = time.time()  # simlint: disable=SIM002 - measured for the log banner\n"
        )
        assert_clean(source, "SIM002")


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def _finding(rule="SIM001", path="src/repro/fleet/x.py", line=10) -> Finding:
    return Finding(rule=rule, path=path, line=line, col=0, message="m", hint="h")


class TestBaseline:
    def test_pinned_line_matches(self):
        entry = BaselineEntry(rule="SIM001", path="src/repro/fleet/x.py", line=10, note="ok")
        assert entry.matches(_finding())
        assert not entry.matches(_finding(line=11))

    def test_file_wide_entry_matches_any_line(self):
        entry = BaselineEntry(rule="SIM001", path="src/repro/fleet/x.py", line=None, note="ok")
        assert entry.matches(_finding(line=10))
        assert entry.matches(_finding(line=999))
        assert not entry.matches(_finding(rule="SIM002"))

    def test_apply_partitions_and_detects_stale(self):
        live = BaselineEntry(rule="SIM001", path="src/repro/fleet/x.py", line=10, note="ok")
        stale = BaselineEntry(rule="SIM003", path="gone.py", line=None, note="old")
        baseline = Baseline(entries=(live, stale))
        result = baseline.apply([_finding(), _finding(rule="SIM002")])
        assert rules_of(result.unbaselined) == ["SIM002"]
        assert rules_of(result.suppressed) == ["SIM001"]
        assert result.stale == [stale]

    def test_load_rejects_empty_note(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "SIM001", "path": "x.py", "note": "  "}],
        }))
        with pytest.raises(ValueError, match="empty note"):
            Baseline.load(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 2, "entries": []}))
        with pytest.raises(ValueError, match="version 1"):
            Baseline.load(path)

    def test_write_then_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([_finding()], note="justified")
        path = tmp_path / "b.json"
        baseline.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries[0].rule == "SIM001"
        assert loaded.entries[0].note == "justified"


# ---------------------------------------------------------------------------
# CLI: exit codes, --json, --write-baseline
# ---------------------------------------------------------------------------


@pytest.fixture
def dirty_tree(tmp_path):
    """A tiny tree with one deliberate finding (SIM002 in simulated code)."""
    pkg = tmp_path / "src" / "repro" / "fleet"
    pkg.mkdir(parents=True)
    (pkg / "clocky.py").write_text("import time\n\n\ndef f():\n    return time.time()\n")
    clean = tmp_path / "src" / "repro" / "ok.py"
    clean.write_text("def g():\n    return 1\n")
    return tmp_path


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main([str(dirty_tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "SIM002" in out and "clocky.py" in out

    def test_json_document(self, dirty_tree, capsys):
        assert main([str(dirty_tree), "--no-baseline", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["files_checked"] == 2
        assert [f["rule"] for f in doc["findings"]] == ["SIM002"]
        assert doc["baselined"] == [] and doc["stale_baseline_entries"] == []
        assert set(doc["rules"]) == set(RULE_REGISTRY)

    def test_write_baseline_then_lint_clean(self, dirty_tree, capsys):
        baseline = dirty_tree / "accepted.json"
        assert main([
            str(dirty_tree), "--write-baseline", str(baseline),
            "--baseline-note", "known wall-clock read",
        ]) == 0
        assert main([str(dirty_tree), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_stale_baseline_reported_and_strict_fails(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "SIM001", "path": "gone.py", "note": "was here"}],
        }))
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
        assert main([str(tmp_path), "--baseline", str(baseline), "--strict-baseline"]) == 1

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"version": 99}))
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 2

    def test_syntax_error_becomes_sim000(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path), "--no-baseline"]) == 1
        assert "SIM000" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_REGISTRY:
            assert rule_id in out

    def test_repro_sim_lint_subcommand(self, dirty_tree, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", str(dirty_tree), "--no-baseline"]) == 1
        assert "SIM002" in capsys.readouterr().out


class TestRepoIsClean:
    def test_src_tree_has_no_unbaselined_findings(self, capsys, monkeypatch):
        # The acceptance gate: the shipped tree lints clean against the
        # committed baseline (run from the repo root, as CI does — finding
        # paths are cwd-relative, so chdir there first).
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        rc = main(["src", "--baseline", ".simlint-baseline.json", "--strict-baseline"])
        out = capsys.readouterr().out
        assert rc == 0, f"simlint found unbaselined findings:\n{out}"
