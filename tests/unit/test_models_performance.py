"""Unit tests for the performance models (Figs. 5/6, Table IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.machine import DGX_A100, DGX_H100, DGX_H100_CAPPED, MachineSpec
from repro.hardware.gpu import GPU_H100
from repro.models.llm import BLOOM_176B, LLAMA2_70B, ModelSpec
from repro.models.performance import (
    AnalyticalPerformanceModel,
    BatchSpec,
    ProfiledPerformanceModel,
    mean_absolute_percentage_error,
)


class TestBatchSpec:
    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            BatchSpec(prompt_tokens=-1)
        with pytest.raises(ValueError):
            BatchSpec(token_requests=-1)

    def test_context_without_tokens_rejected(self):
        with pytest.raises(ValueError, match="context_tokens"):
            BatchSpec(context_tokens=10)

    def test_active_tokens_definition(self):
        spec = BatchSpec(prompt_tokens=100, token_requests=5, context_tokens=5000)
        assert spec.active_tokens == 105
        assert spec.is_mixed
        assert not spec.is_empty

    def test_empty_batch(self):
        assert BatchSpec().is_empty


class TestCalibrationAnchors:
    """The analytical model reproduces the paper's published latencies."""

    def test_ttft_h100_at_1500_tokens_about_95ms(self, llama_h100_perf):
        assert llama_h100_perf.ttft(1500) * 1e3 == pytest.approx(95, rel=0.10)

    def test_ttft_a100_at_1500_tokens_about_185ms(self, llama_a100_perf):
        assert llama_a100_perf.ttft(1500) * 1e3 == pytest.approx(185, rel=0.10)

    def test_ttft_ratio_h100_over_a100_about_half(self, llama_h100_perf, llama_a100_perf):
        ratio = llama_h100_perf.ttft(1500) / llama_a100_perf.ttft(1500)
        assert 0.45 <= ratio <= 0.60

    def test_tbt_h100_about_28ms(self, llama_h100_perf):
        assert llama_h100_perf.tbt(1, 1024) * 1e3 == pytest.approx(28, rel=0.10)

    def test_tbt_ratio_h100_over_a100_about_07(self, llama_h100_perf, llama_a100_perf):
        ratio = llama_h100_perf.tbt(1, 1024) / llama_a100_perf.tbt(1, 1024)
        assert 0.6 <= ratio <= 0.8

    def test_tbt_at_batch_64_roughly_doubles(self, llama_h100_perf):
        """Fig. 5b: batching 64 decode requests only ~doubles TBT."""
        ratio = llama_h100_perf.tbt(64, 64 * 1024) / llama_h100_perf.tbt(1, 1024)
        assert 1.5 <= ratio <= 2.6

    def test_ttft_grows_with_prompt_size(self, llama_h100_perf):
        sizes = [128, 256, 512, 1024, 2048, 4096, 8192]
        latencies = [llama_h100_perf.ttft(n) for n in sizes]
        assert latencies == sorted(latencies)

    def test_bloom_slower_than_llama(self):
        bloom = AnalyticalPerformanceModel(BLOOM_176B, DGX_H100)
        llama = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        assert bloom.ttft(1500) > llama.ttft(1500)
        assert bloom.tbt(1, 1024) > llama.tbt(1, 1024)

    def test_bloom_prompt_1500_about_six_decode_iterations(self):
        """Insight III for BLOOM-176B."""
        bloom = AnalyticalPerformanceModel(BLOOM_176B, DGX_H100)
        equivalent_tokens = bloom.ttft(1500) / bloom.tbt(1, 1500)
        assert 3.5 <= equivalent_tokens <= 8.0


class TestThroughputShapes:
    def test_prompt_throughput_peaks_near_2048(self, llama_h100_perf):
        """Fig. 6a / Insight IV: prompt throughput declines past ~2048 tokens."""
        t2048 = llama_h100_perf.prompt_throughput(2048)
        t8192 = llama_h100_perf.prompt_throughput(8192)
        t512 = llama_h100_perf.prompt_throughput(512)
        assert t2048 > t512
        assert t2048 > t8192

    def test_token_throughput_monotonically_increases_with_batch(self, llama_h100_perf):
        """Fig. 6b: decode throughput keeps scaling with batch size."""
        throughputs = [llama_h100_perf.token_throughput(b, b * 1024) for b in (1, 2, 4, 8, 16, 32, 64)]
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))


class TestLatencyComposition:
    def test_iteration_latency_is_additive_for_mixed_batches(self, llama_h100_perf):
        spec = BatchSpec(prompt_tokens=1024, token_requests=8, context_tokens=8192)
        combined = llama_h100_perf.iteration_latency(spec)
        parts = llama_h100_perf.prompt_latency(1024) + llama_h100_perf.token_latency(8, 8192)
        assert combined == pytest.approx(parts)

    def test_empty_iteration_takes_no_time(self, llama_h100_perf):
        assert llama_h100_perf.iteration_latency(BatchSpec()) == 0.0
        assert llama_h100_perf.prompt_latency(0) == 0.0
        assert llama_h100_perf.token_latency(0) == 0.0

    def test_e2e_latency_grows_with_output_tokens(self, llama_h100_perf):
        assert llama_h100_perf.e2e_latency(1000, 50) > llama_h100_perf.e2e_latency(1000, 10)

    def test_e2e_latency_of_single_token_is_ttft(self, llama_h100_perf):
        assert llama_h100_perf.e2e_latency(1000, 1) == pytest.approx(llama_h100_perf.ttft(1000))

    def test_e2e_rejects_zero_output(self, llama_h100_perf):
        with pytest.raises(ValueError, match="output_tokens"):
            llama_h100_perf.e2e_latency(100, 0)

    def test_negative_inputs_rejected(self, llama_h100_perf):
        with pytest.raises(ValueError):
            llama_h100_perf.prompt_latency(-1)
        with pytest.raises(ValueError):
            llama_h100_perf.token_latency(-1)


class TestPowerCapInteraction:
    def test_capped_machine_has_slower_prompts(self):
        capped = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100_CAPPED)
        uncapped = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        assert capped.prompt_latency(4096) > uncapped.prompt_latency(4096)

    def test_capped_machine_decode_unaffected_at_50_percent(self):
        """Fig. 9b / Insight VI: 50% cap leaves the token phase untouched."""
        capped = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100_CAPPED)
        uncapped = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        assert capped.token_latency(16, 16 * 1024) == pytest.approx(uncapped.token_latency(16, 16 * 1024))

    def test_cap_can_be_disabled(self):
        ignore_cap = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100_CAPPED, apply_power_cap=False)
        uncapped = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        assert ignore_cap.prompt_latency(4096) == pytest.approx(uncapped.prompt_latency(4096))


class TestExtrapolationToUnknownHardware:
    def test_unknown_model_scales_with_parameter_count(self):
        small = ModelSpec(
            name="Phi-20B", num_parameters=20e9, num_layers=40, hidden_size=5120, num_heads=40, num_kv_heads=8
        )
        perf_small = AnalyticalPerformanceModel(small, DGX_H100)
        perf_llama = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        assert perf_small.tbt(1, 1024) < perf_llama.tbt(1, 1024)

    def test_unknown_gpu_scales_with_compute(self):
        from dataclasses import replace

        slow_gpu = replace(GPU_H100, name="H50", fp16_tflops=GPU_H100.fp16_tflops / 2)
        slow_machine = MachineSpec(name="DGX-H50", gpu=slow_gpu)
        slow = AnalyticalPerformanceModel(LLAMA2_70B, slow_machine)
        fast = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        assert slow.prompt_latency(2048) > fast.prompt_latency(2048)


class TestProfiledModel:
    def test_matches_reference_within_a_few_percent(self, llama_h100_perf):
        """The piecewise-linear model tracks the analytical model with low MAPE,
        mirroring the <3% validation in the paper (§V-B)."""
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf)
        sizes = [100, 300, 700, 900, 1500, 3000, 6000]
        actual = [llama_h100_perf.prompt_latency(n) for n in sizes]
        predicted = [profiled.prompt_latency(n) for n in sizes]
        assert mean_absolute_percentage_error(actual, predicted) < 0.05

    def test_interpolates_exactly_at_profile_points(self, llama_h100_perf):
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf, prompt_grid=(128, 1024, 4096))
        assert profiled.prompt_latency(1024) == pytest.approx(llama_h100_perf.prompt_latency(1024))

    def test_extrapolates_beyond_last_point(self, llama_h100_perf):
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf, prompt_grid=(128, 1024, 2048))
        assert profiled.prompt_latency(4096) > profiled.prompt_latency(2048)

    def test_token_latency_adjusts_for_context(self, llama_h100_perf):
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf)
        short_ctx = profiled.token_latency(8, 8 * 256)
        long_ctx = profiled.token_latency(8, 8 * 8192)
        assert long_ctx > short_ctx

    def test_requires_two_profile_points(self):
        with pytest.raises(ValueError, match="two points"):
            ProfiledPerformanceModel(LLAMA2_70B, DGX_H100, prompt_profile=[(1, 0.1)], token_profile=[(1, 0.01), (2, 0.02)])

    def test_rejects_duplicate_profile_points(self):
        with pytest.raises(ValueError, match="duplicate"):
            ProfiledPerformanceModel(
                LLAMA2_70B,
                DGX_H100,
                prompt_profile=[(1, 0.1), (1, 0.2), (2, 0.3)],
                token_profile=[(1, 0.01), (2, 0.02)],
            )

    def test_custom_profile_from_measurements(self):
        """Users can plug raw (tokens, seconds) measurements directly."""
        profiled = ProfiledPerformanceModel(
            LLAMA2_70B,
            DGX_A100,
            prompt_profile=[(128, 0.12), (1024, 0.16), (2048, 0.22)],
            token_profile=[(1, 0.040), (32, 0.055), (64, 0.080)],
        )
        assert 0.12 <= profiled.prompt_latency(500) <= 0.16
        assert 0.040 <= profiled.token_latency(16) <= 0.080


class TestMape:
    def test_zero_for_identical_series(self):
        assert mean_absolute_percentage_error([1, 2, 3], [1, 2, 3]) == 0.0

    def test_value(self):
        assert mean_absolute_percentage_error([100, 200], [110, 180]) == pytest.approx(0.10)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="length mismatch"):
            mean_absolute_percentage_error([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            mean_absolute_percentage_error([], [])

    def test_rejects_zero_actuals(self):
        with pytest.raises(ValueError, match="non-zero"):
            mean_absolute_percentage_error([0, 1], [1, 1])


class TestMemoizedLatencyTables:
    def test_prompt_latency_cache_hits_are_bit_identical(self, llama_h100_perf):
        first = llama_h100_perf.prompt_latency(1024)
        assert llama_h100_perf.prompt_latency(1024) == first
        assert 1024 in llama_h100_perf._prompt_cache

    def test_token_latency_cache_key_is_exact(self, llama_h100_perf):
        a = llama_h100_perf.token_latency(8, 8000)
        b = llama_h100_perf.token_latency(8, 8001)
        assert a != b  # exact context keys, not rounded buckets
        assert llama_h100_perf.token_latency(8, 8000) == a

    def test_invalidate_caches_clears_tables(self, llama_h100_perf):
        llama_h100_perf.prompt_latency(512)
        llama_h100_perf.token_latency(4, 4096)
        llama_h100_perf.invalidate_caches()
        assert not llama_h100_perf._prompt_cache
        assert not llama_h100_perf._token_cache

    def test_validation_still_raises_on_negative(self, llama_h100_perf):
        with pytest.raises(ValueError):
            llama_h100_perf.prompt_latency(-1)
        with pytest.raises(ValueError):
            llama_h100_perf.token_latency(-1)


class TestTokenLatencySeries:
    def test_analytical_series_matches_scalar_calls_exactly(self, llama_h100_perf):
        series = llama_h100_perf.token_latency_series(16, 20000, 16, 40)
        scalar = [llama_h100_perf.token_latency(16, 20000 + i * 16) for i in range(40)]
        assert list(series) == scalar  # bit-identical, not approx

    def test_profiled_series_matches_scalar_calls_exactly(self, llama_h100_perf):
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf)
        series = profiled.token_latency_series(8, 9000, 8, 25)
        scalar = [profiled.token_latency(8, 9000 + i * 8) for i in range(25)]
        assert list(series) == scalar

    def test_empty_series(self, llama_h100_perf):
        assert list(llama_h100_perf.token_latency_series(4, 100, 4, 0)) == []
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf)
        assert list(profiled.token_latency_series(4, 100, 4, 0)) == []


class TestVectorizedInterp:
    def test_array_queries_match_scalar_queries(self, llama_h100_perf):
        profiled = ProfiledPerformanceModel.from_model(llama_h100_perf)
        queries = np.asarray([1.0, 3.5, 64.0, 200.0, 0.5])  # interior + both extrapolation sides
        vector = profiled._interp(queries, profiled._token_x, profiled._token_y)
        scalar = [profiled._interp(float(q), profiled._token_x, profiled._token_y) for q in queries]
        assert list(vector) == scalar
