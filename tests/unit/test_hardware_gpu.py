"""Unit tests for GPU specifications (Table I)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.gpu import GPU_A100, GPU_H100, GpuSpec, get_gpu, power_capped, registered_gpus


class TestGpuSpecValidation:
    def test_rejects_non_positive_tflops(self):
        with pytest.raises(ValueError, match="fp16_tflops"):
            dataclasses.replace(GPU_A100, fp16_tflops=0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="hbm_capacity_gb"):
            dataclasses.replace(GPU_A100, hbm_capacity_gb=-1)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError, match="hbm_bandwidth_gbps"):
            dataclasses.replace(GPU_A100, hbm_bandwidth_gbps=0)

    def test_rejects_cap_above_tdp(self):
        with pytest.raises(ValueError, match="power_cap_watts"):
            dataclasses.replace(GPU_A100, power_cap_watts=500.0)

    def test_rejects_zero_cap(self):
        with pytest.raises(ValueError, match="power_cap_watts"):
            dataclasses.replace(GPU_A100, power_cap_watts=0.0)

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GPU_A100.tdp_watts = 1.0  # type: ignore[misc]


class TestTable1Values:
    """The registered specs reproduce Table I of the paper."""

    def test_a100_values(self):
        assert GPU_A100.fp16_tflops == 19.5
        assert GPU_A100.hbm_capacity_gb == 80.0
        assert GPU_A100.hbm_bandwidth_gbps == 2039.0
        assert GPU_A100.tdp_watts == 400.0
        assert GPU_A100.infiniband_gbps == 200.0

    def test_h100_values(self):
        assert GPU_H100.fp16_tflops == 66.9
        assert GPU_H100.hbm_capacity_gb == 80.0
        assert GPU_H100.hbm_bandwidth_gbps == 3352.0
        assert GPU_H100.tdp_watts == 700.0
        assert GPU_H100.infiniband_gbps == 400.0

    def test_compute_ratio_is_343(self):
        assert GPU_H100.fp16_tflops / GPU_A100.fp16_tflops == pytest.approx(3.43, abs=0.01)

    def test_bandwidth_ratio_is_164(self):
        assert GPU_H100.hbm_bandwidth_gbps / GPU_A100.hbm_bandwidth_gbps == pytest.approx(1.64, abs=0.01)

    def test_power_ratio_is_175(self):
        assert GPU_H100.tdp_watts / GPU_A100.tdp_watts == pytest.approx(1.75, abs=0.01)

    def test_capacity_unchanged_between_generations(self):
        assert GPU_H100.hbm_capacity_gb == GPU_A100.hbm_capacity_gb

    def test_memory_to_compute_ratio_favours_a100(self):
        # Insight VII builds on the A100 having more bandwidth per FLOP.
        assert GPU_A100.memory_to_compute_ratio > GPU_H100.memory_to_compute_ratio


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_gpu("a100") is GPU_A100
        assert get_gpu("H100") is GPU_H100

    def test_unknown_gpu_raises_keyerror(self):
        with pytest.raises(KeyError, match="Unknown GPU"):
            get_gpu("V100")

    def test_registry_returns_copy(self):
        registry = registered_gpus()
        registry["FAKE"] = GPU_A100
        assert "FAKE" not in registered_gpus()


class TestPowerCapping:
    def test_cap_halves_power_budget(self):
        capped = power_capped(GPU_H100, 0.5)
        assert capped.power_cap_watts == pytest.approx(350.0)
        assert capped.is_power_capped
        assert capped.power_cap_fraction == pytest.approx(0.5)

    def test_cap_preserves_other_capabilities(self):
        capped = power_capped(GPU_H100, 0.5)
        assert capped.fp16_tflops == GPU_H100.fp16_tflops
        assert capped.hbm_bandwidth_gbps == GPU_H100.hbm_bandwidth_gbps
        assert capped.cost_per_hour == GPU_H100.cost_per_hour

    def test_cap_of_one_keeps_name_and_is_uncapped(self):
        same = power_capped(GPU_A100, 1.0)
        assert same.name == "A100"
        assert not same.is_power_capped

    def test_capped_name_encodes_fraction(self):
        assert power_capped(GPU_H100, 0.5).name == "H100-cap50"

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(ValueError, match="cap_fraction"):
            power_capped(GPU_H100, fraction)

    def test_uncapped_gpu_reports_full_fraction(self):
        assert GPU_A100.power_cap_fraction == 1.0
        assert not GPU_A100.is_power_capped


def test_custom_gpu_spec_roundtrip():
    custom = GpuSpec(
        name="MI250",
        fp16_tflops=45.0,
        hbm_capacity_gb=128.0,
        hbm_bandwidth_gbps=3276.0,
        tdp_watts=560.0,
        power_cap_watts=560.0,
        nvlink_gbps=50.0,
        infiniband_gbps=200.0,
        cost_per_hour=20.0,
    )
    assert custom.memory_to_compute_ratio == pytest.approx(3276.0 / 45.0)
    assert not custom.is_power_capped
