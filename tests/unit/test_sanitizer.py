"""Unit tests for the RunSanitizer and its engine wiring.

Each invariant gets an injected violation that must raise
:class:`SanitizerError` (with the offending tag in the message) plus a
clean path that must stay silent.  Bit-parity of sanitized vs unsanitized
runs is property-tested in ``tests/property/test_sanitizer_parity.py``.
"""

from __future__ import annotations

import heapq

import pytest

from repro.analysis.sanitizer import RunSanitizer, SanitizerError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event


# ---------------------------------------------------------------------------
# Stream discipline
# ---------------------------------------------------------------------------


class TestStreams:
    def test_register_is_idempotent(self):
        san = RunSanitizer()
        first = san.register_stream("retry", run_phase=True)
        again = san.register_stream("retry", run_phase=True)
        assert first is again

    def test_phase_flip_reregistration_raises(self):
        san = RunSanitizer()
        san.register_stream("fault", run_phase=False)
        with pytest.raises(SanitizerError, match="different phase"):
            san.register_stream("fault", run_phase=True)

    def test_unregistered_draw_raises(self):
        san = RunSanitizer()
        with pytest.raises(SanitizerError, match="unregistered"):
            san.note_draw("mystery")

    def test_setup_stream_drawn_before_loop_ok(self):
        san = RunSanitizer()
        san.register_stream("trace", run_phase=False)
        san.note_draw("trace")
        san.note_draw("trace")
        assert san.streams["trace"].draws == 2

    def test_setup_stream_drawn_inside_event_raises(self):
        san = RunSanitizer()
        san.register_stream("fault", run_phase=False)
        san.before_fire(1.0, "arrival")
        with pytest.raises(SanitizerError, match="'fault'.*'arrival'"):
            san.note_draw("fault")

    def test_run_stream_drawn_outside_event_raises(self):
        san = RunSanitizer()
        san.register_stream("retry", run_phase=True)
        with pytest.raises(SanitizerError, match="outside"):
            san.note_draw("retry")

    def test_run_stream_drawn_inside_event_ok(self):
        san = RunSanitizer()
        san.register_stream("retry", run_phase=True)
        san.before_fire(1.0, "retry-timer")
        san.note_draw("retry")
        san.after_fire()
        assert san.streams["retry"].draws == 1


# ---------------------------------------------------------------------------
# Schedule / monotonicity / closure primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_check_schedule_past_raises_with_tag(self):
        san = RunSanitizer()
        with pytest.raises(SanitizerError, match="'rogue'.*scheduled into the past"):
            san.check_schedule(now=10.0, time=9.0, tag="rogue")

    def test_check_schedule_future_ok(self):
        RunSanitizer().check_schedule(now=10.0, time=10.0, tag="ok")

    def test_monotonicity_violation_raises(self):
        san = RunSanitizer()
        san.before_fire(5.0, "late")
        san.after_fire()
        with pytest.raises(SanitizerError, match="monotonicity.*'early'"):
            san.before_fire(4.0, "early")

    def test_equal_times_are_monotone(self):
        san = RunSanitizer()
        san.before_fire(5.0, "a")
        san.after_fire()
        san.before_fire(5.0, "b")
        san.after_fire()
        assert san.events_checked == 2

    def test_closure_mismatch_raises(self):
        san = RunSanitizer()
        with pytest.raises(SanitizerError, match="census leak"):
            san.verify_closure(scheduled=5, processed=2, cancelled=1, pending=1)

    def test_closure_match_counts(self):
        san = RunSanitizer()
        san.verify_closure(scheduled=5, processed=2, cancelled=1, pending=2)
        assert san.closures_verified == 1

    def test_snapshot_shape(self):
        san = RunSanitizer()
        san.register_stream("trace", run_phase=False)
        san.note_draw("trace")
        snap = san.snapshot()
        assert snap == {
            "events_checked": 0,
            "closures_verified": 0,
            "streams": {"trace": 1},
        }


# ---------------------------------------------------------------------------
# Engine wiring
# ---------------------------------------------------------------------------


class TestEngineArming:
    def test_unarmed_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        engine = SimulationEngine()
        assert engine.sanitizer is None and not engine.sanitize

    def test_env_flag_arms(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        engine = SimulationEngine()
        assert engine.sanitizer is not None

    def test_env_flag_other_values_do_not_arm(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert SimulationEngine().sanitizer is None

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert SimulationEngine(sanitize=False).sanitizer is None

    def test_setter_arms_and_disarms(self):
        engine = SimulationEngine(sanitize=False)
        engine.sanitize = True
        assert engine.sanitizer is not None
        engine.sanitize = False
        assert engine.sanitizer is None


class TestEngineIntegration:
    def test_past_schedule_upgrades_to_sanitizer_error(self):
        engine = SimulationEngine(sanitize=True)
        engine.schedule_at(5.0, lambda: None, tag="advance")
        engine.run()
        with pytest.raises(SanitizerError, match="'rogue'"):
            engine.schedule_at(1.0, lambda: None, tag="rogue")

    def test_past_schedule_unsanitized_stays_value_error(self):
        engine = SimulationEngine(sanitize=False)
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_heap_injection_breaks_monotonicity(self):
        # Bypass schedule_at the way a buggy scheduler (or a future sharded
        # engine merging heaps wrongly) would: push a stale-timestamped
        # entry straight into the heap after the clock has moved past it.
        engine = SimulationEngine(sanitize=True)
        engine.schedule_at(5.0, lambda: None, tag="legit")
        assert engine.step()
        rogue = Event(time=1.0, priority=0, sequence=999, action=lambda: None, tag="stale")
        heapq.heappush(engine._queue, (1.0, 0, 999, rogue))
        with pytest.raises(SanitizerError, match="monotonicity.*'stale'"):
            engine.step()

    def test_setup_stream_draw_inside_callback_raises(self):
        engine = SimulationEngine(sanitize=True)
        engine.sanitizer.register_stream("fault", run_phase=False)
        engine.schedule_at(
            1.0, lambda: engine.sanitizer.note_draw("fault"), tag="mid-run-fault-draw"
        )
        with pytest.raises(SanitizerError, match="'fault'"):
            engine.run()

    def test_lost_event_fails_census(self):
        engine = SimulationEngine(sanitize=True)
        engine.schedule_at(1.0, lambda: None, tag="doomed")
        engine._queue.clear()  # lose the event without firing or tombstoning
        with pytest.raises(SanitizerError, match="census leak"):
            engine.run()

    def test_clean_run_passes_and_counts(self):
        engine = SimulationEngine(sanitize=True)
        fired: list[str] = []
        engine.schedule_at(1.0, lambda: fired.append("a"), tag="a")
        engine.schedule_at(2.0, lambda: fired.append("b"), tag="b")
        doomed = engine.schedule_at(3.0, lambda: fired.append("c"), tag="c")
        engine.cancel(doomed)
        engine.run()
        assert fired == ["a", "b"]
        snap = engine.sanitizer.snapshot()
        assert snap["events_checked"] == 2
        assert snap["closures_verified"] == 1

    def test_each_run_window_verifies_closure(self):
        engine = SimulationEngine(sanitize=True)
        engine.schedule_at(1.0, lambda: None)
        engine.run(until=0.5)
        engine.run()
        assert engine.sanitizer.closures_verified == 2

    def test_recurring_task_stays_clean(self):
        engine = SimulationEngine(sanitize=True)
        task = engine.schedule_recurring(1.0, lambda: None, tag="tick")
        engine.run(until=5.5)
        task.cancel()
        engine.run()
        assert task.fire_count == 5
        assert engine.sanitizer.closures_verified == 2
