"""Unit tests for the KV-cache transfer model (§IV-C, Figs. 11/14)."""

from __future__ import annotations

import pytest

from repro.core.kv_transfer import KVTransferModel, TransferMode
from repro.hardware.interconnect import INFINIBAND_200, INFINIBAND_400
from repro.models.llm import BLOOM_176B, LLAMA2_70B


@pytest.fixture
def h100_transfer() -> KVTransferModel:
    return KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400)


@pytest.fixture
def a100_transfer() -> KVTransferModel:
    return KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_200)


class TestSizes:
    def test_kv_bytes_matches_model(self, h100_transfer):
        assert h100_transfer.kv_bytes(1000) == pytest.approx(LLAMA2_70B.kv_cache_bytes(1000))

    def test_per_layer_bytes(self, h100_transfer):
        assert h100_transfer.per_layer_bytes(1000) == pytest.approx(
            LLAMA2_70B.kv_cache_bytes(1000) / LLAMA2_70B.num_layers
        )

    def test_negative_tokens_rejected(self, h100_transfer):
        with pytest.raises(ValueError):
            h100_transfer.kv_bytes(-1)


class TestModeSelection:
    def test_small_prompts_use_serialized(self, h100_transfer):
        assert h100_transfer.choose_mode(100) is TransferMode.SERIALIZED

    def test_large_prompts_use_per_layer(self, h100_transfer):
        assert h100_transfer.choose_mode(2048) is TransferMode.PER_LAYER

    def test_threshold_is_configurable(self):
        transfer = KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400, serialized_threshold_tokens=4096)
        assert transfer.choose_mode(2048) is TransferMode.SERIALIZED


class TestLatency:
    def test_serialized_latency_linear_in_prompt_size(self, a100_transfer):
        t1 = a100_transfer.serialized_latency(512)
        t2 = a100_transfer.serialized_latency(1024)
        t4 = a100_transfer.serialized_latency(2048)
        assert t2 > t1
        assert (t4 - a100_transfer.link.latency_s) == pytest.approx(
            2 * (t2 - a100_transfer.link.latency_s), rel=0.01
        )

    def test_a100_serialized_at_2048_about_30ms(self, a100_transfer):
        """Fig. 14: ~30-40 ms serialized transfer at 2048 tokens on 200 Gbps."""
        assert 0.02 <= a100_transfer.serialized_latency(2048) <= 0.05

    def test_h100_transfers_twice_as_fast_as_a100(self, a100_transfer, h100_transfer):
        ratio = a100_transfer.serialized_latency(2048) / h100_transfer.serialized_latency(2048)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_per_layer_hides_most_of_the_transfer(self, a100_transfer):
        prompt_latency = 0.2
        serialized = a100_transfer.serialized_latency(2048)
        per_layer = a100_transfer.per_layer_latency(2048, prompt_latency)
        assert per_layer < serialized / 2

    def test_per_layer_residue_about_8ms_on_a100_and_5ms_on_h100(self, a100_transfer, h100_transfer):
        """Fig. 14: the per-layer scheme leaves a small constant residue."""
        assert 0.004 <= a100_transfer.per_layer_latency(2048, 0.2) <= 0.012
        assert 0.002 <= h100_transfer.per_layer_latency(2048, 0.12) <= 0.008

    def test_per_layer_cannot_hide_more_than_prompt_window(self, h100_transfer):
        """With no overlap window the whole transfer becomes visible."""
        no_window = h100_transfer.per_layer_latency(2048, 0.0)
        assert no_window >= h100_transfer.serialized_latency(2048) - h100_transfer.link.latency_s

    def test_visible_latency_uses_chosen_mode(self, h100_transfer):
        small = h100_transfer.visible_latency(128, 0.06)
        assert small == pytest.approx(h100_transfer.serialized_latency(128))
        large = h100_transfer.visible_latency(2048, 0.12)
        assert large == pytest.approx(h100_transfer.per_layer_latency(2048, 0.12))

    def test_bloom_transfer_much_larger_than_llama(self):
        llama = KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400)
        bloom = KVTransferModel(model=BLOOM_176B, link=INFINIBAND_400)
        assert bloom.serialized_latency(1024) > 5 * llama.serialized_latency(1024)

    def test_negative_prompt_latency_rejected(self, h100_transfer):
        with pytest.raises(ValueError):
            h100_transfer.per_layer_latency(1024, -0.1)


class TestInterference:
    def test_per_layer_mode_slows_prompt_slightly(self, h100_transfer):
        factor = h100_transfer.prompt_interference_factor(TransferMode.PER_LAYER)
        assert 1.0 < factor < 1.10

    def test_serialized_mode_does_not_slow_prompt(self, h100_transfer):
        assert h100_transfer.prompt_interference_factor(TransferMode.SERIALIZED) == 1.0


class TestValidation:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400, serialized_threshold_tokens=-1)

    def test_negative_interference_rejected(self):
        with pytest.raises(ValueError):
            KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400, per_layer_interference=-0.1)
