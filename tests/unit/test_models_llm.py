"""Unit tests for LLM model specifications (Table III)."""

from __future__ import annotations

import pytest

from repro.models.llm import BLOOM_176B, LLAMA2_70B, ModelSpec, get_model, registered_models


class TestTable3Values:
    def test_llama_architecture(self):
        assert LLAMA2_70B.num_layers == 80
        assert LLAMA2_70B.hidden_size == 8192
        assert LLAMA2_70B.num_parameters == pytest.approx(70e9)
        assert LLAMA2_70B.num_kv_heads == 8

    def test_bloom_architecture(self):
        assert BLOOM_176B.num_layers == 70
        assert BLOOM_176B.hidden_size == 14336
        assert BLOOM_176B.num_heads == 112
        assert BLOOM_176B.num_kv_heads == 112

    def test_weight_bytes_fp16(self):
        assert LLAMA2_70B.weight_bytes == pytest.approx(140e9)
        assert BLOOM_176B.weight_bytes == pytest.approx(352e9)

    def test_bloom_kv_cache_is_about_4mb_per_token(self):
        # 2 (K,V) * 70 layers * 14336 hidden * 2 bytes.
        assert BLOOM_176B.kv_bytes_per_token == pytest.approx(2 * 70 * 14336 * 2)

    def test_llama_kv_cache_is_gqa_reduced(self):
        # GQA: 8 of 64 heads store KV, so 1/8 the bytes of full attention.
        full = 2 * 80 * 8192 * 2
        assert LLAMA2_70B.kv_bytes_per_token == pytest.approx(full / 8)

    def test_bloom_kv_much_larger_than_llama(self):
        assert BLOOM_176B.kv_bytes_per_token / LLAMA2_70B.kv_bytes_per_token > 10


class TestModelSpecValidation:
    def test_rejects_indivisible_hidden_size(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelSpec(name="x", num_parameters=1e9, num_layers=10, hidden_size=100, num_heads=3, num_kv_heads=3)

    def test_rejects_kv_heads_above_heads(self):
        with pytest.raises(ValueError, match="num_kv_heads"):
            ModelSpec(name="x", num_parameters=1e9, num_layers=10, hidden_size=128, num_heads=4, num_kv_heads=8)

    @pytest.mark.parametrize("field,value", [
        ("num_parameters", 0),
        ("num_layers", 0),
        ("hidden_size", -1),
        ("num_heads", 0),
    ])
    def test_rejects_non_positive_dimensions(self, field, value):
        kwargs = dict(name="x", num_parameters=1e9, num_layers=10, hidden_size=128, num_heads=4, num_kv_heads=4)
        kwargs[field] = value
        with pytest.raises(ValueError):
            ModelSpec(**kwargs)

    def test_kv_cache_bytes_rejects_negative(self):
        with pytest.raises(ValueError, match="num_tokens"):
            LLAMA2_70B.kv_cache_bytes(-1)


class TestDerivedQuantities:
    def test_head_dim(self):
        assert LLAMA2_70B.head_dim == 128
        assert BLOOM_176B.head_dim == 128

    def test_kv_cache_scales_linearly(self):
        assert LLAMA2_70B.kv_cache_bytes(100) == pytest.approx(100 * LLAMA2_70B.kv_bytes_per_token)
        assert LLAMA2_70B.kv_cache_bytes(0) == 0

    def test_flops_per_token_is_twice_params(self):
        assert LLAMA2_70B.flops_per_token() == pytest.approx(2 * 70e9)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_model("llama2-70b") is LLAMA2_70B
        assert get_model("BLOOM-176B") is BLOOM_176B

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="Unknown model"):
            get_model("GPT-5")

    def test_registry_copy(self):
        models = registered_models()
        models["X"] = LLAMA2_70B
        assert "X" not in registered_models()
