"""Unit tests for per-tenant SLO grouping and the fleet roll-up report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.machine import DGX_A100
from repro.metrics.slo import (
    DEFAULT_SLO,
    SloPolicy,
    empty_slo_report,
    evaluate_slo_by_tenant,
)
from repro.models.llm import LLAMA2_70B
from repro.models.performance import AnalyticalPerformanceModel


@pytest.fixture
def reference():
    return AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)


def _complete_uncontended(request, reference, slowdown=1.0):
    """Drive a request through its lifecycle at ``slowdown`` x the reference."""
    ttft = reference.ttft(request.prompt_tokens) * slowdown
    tbt = reference.tbt(1, request.prompt_tokens) * slowdown
    request.start_prompt(request.arrival_time, "m")
    request.finish_prompt(request.arrival_time + ttft)
    for i in range(1, request.output_tokens):
        request.generate_token(request.arrival_time + ttft + i * tbt)
    return request


class TestEvaluateSloByTenant:
    def test_groups_by_tenant(self, make_request, reference):
        requests = [
            _complete_uncontended(
                make_request(request_id=i, tenant="gold" if i % 2 else "bronze"), reference
            )
            for i in range(8)
        ]
        report = evaluate_slo_by_tenant(requests, reference)
        assert sorted(report.tenants) == ["bronze", "gold"]
        assert report.satisfied
        assert report.fleet.satisfied
        assert report.unsatisfied_tenants() == []
        for samples in report.samples_by_tenant().values():
            assert samples["ttft"] == 4 and samples["e2e"] == 4

    def test_one_slow_tenant_fails_alone(self, make_request, reference):
        fast = [
            _complete_uncontended(make_request(request_id=i, tenant="fast"), reference)
            for i in range(4)
        ]
        slow = [
            _complete_uncontended(
                make_request(request_id=10 + i, tenant="slow"), reference, slowdown=50.0
            )
            for i in range(4)
        ]
        report = evaluate_slo_by_tenant(fast + slow, reference)
        assert not report.satisfied
        assert report.unsatisfied_tenants() == ["slow"]
        assert report.tenants["fast"].satisfied

    def test_per_tenant_policies_override_default(self, make_request, reference):
        requests = [
            _complete_uncontended(
                make_request(request_id=i, tenant="lenient"), reference, slowdown=8.0
            )
            for i in range(4)
        ]
        strict = evaluate_slo_by_tenant(requests, reference)
        assert not strict.satisfied
        lenient_policy = SloPolicy(
            ttft={50: 100.0}, tbt={50: 100.0}, e2e={50: 100.0}
        )
        lenient = evaluate_slo_by_tenant(requests, reference, policies={"lenient": lenient_policy})
        assert lenient.tenants["lenient"].satisfied

    def test_empty_tenant_series_is_nan_and_never_satisfied(self, make_request, reference):
        completed = [
            _complete_uncontended(make_request(request_id=0, tenant="served"), reference)
        ]
        # The starved tenant submitted but completed nothing.
        starved = make_request(request_id=1, tenant="starved")
        report = evaluate_slo_by_tenant(completed + [starved], reference)
        assert not report.satisfied
        assert report.unsatisfied_tenants() == ["starved"]
        starved_report = report.tenants["starved"]
        assert all(np.isnan(v) for v in starved_report.slowdowns.values())
        assert starved_report.samples == {"ttft": 0, "tbt": 0, "e2e": 0}
        assert starved_report.missing_series() == ["e2e", "tbt", "ttft"]

    def test_no_requests_at_all_not_satisfied(self, reference):
        report = evaluate_slo_by_tenant([], reference)
        assert not report.satisfied
        assert report.tenants == {}
        assert not report.fleet.satisfied

    def test_as_dict_is_json_ready(self, make_request, reference):
        import json

        requests = [
            _complete_uncontended(make_request(request_id=i, tenant="t"), reference)
            for i in range(3)
        ]
        payload = evaluate_slo_by_tenant(requests, reference).as_dict()
        json.dumps(payload)  # must not raise
        assert payload["satisfied"] is True
        assert payload["tenants"]["t"]["samples"]["ttft"] == 3


class TestEmptySloReport:
    def test_all_nan_and_unsatisfied(self):
        report = empty_slo_report(DEFAULT_SLO)
        assert not report.satisfied
        assert all(np.isnan(v) for v in report.slowdowns.values())
        assert report.missing_series() == ["e2e", "tbt", "ttft"]
        assert np.isnan(report.worst_margin())
        # Every limit is reported as a violation (unevaluable != passing).
        assert set(report.violations()) == set(report.limits)
