"""Unit tests for reliability-aware routing and per-tenant admission control."""

from __future__ import annotations

import pytest

from repro.core.designs import splitwise_hh
from repro.fleet import (
    AdmissionConfig,
    ClusterHealth,
    FleetSimulation,
    ReliabilityConfig,
)
from repro.workload.generator import generate_trace
from repro.workload.scenarios import mix_traces


def _config(**overrides):
    defaults = dict(
        window=8,
        ban_threshold=0.5,
        min_observations=4,
        cooldown_s=10.0,
        probation_requests=4,
        probation_threshold=0.5,
    )
    defaults.update(overrides)
    return ReliabilityConfig(**defaults)


class TestReliabilityConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"ban_threshold": 0.0},
            {"ban_threshold": 1.5},
            {"min_observations": 0},
            {"min_observations": 100},  # > window
            {"cooldown_s": 0.0},
            {"probation_requests": 0},
            {"ttft_slowdown_limit": 1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            _config(**kwargs)


class TestClusterHealthStateMachine:
    def test_starts_healthy(self):
        health = ClusterHealth(_config())
        assert health.state == "healthy"
        assert not health.is_banned(0.0)

    def test_no_ban_before_min_observations(self):
        health = ClusterHealth(_config(min_observations=4))
        for _ in range(3):
            health.record(error=True, now=1.0)
        assert health.state == "healthy"

    def test_error_fraction_bans(self):
        health = ClusterHealth(_config())
        for _ in range(4):
            health.record(error=True, now=1.0)
        assert health.state == "banned"
        assert health.bans == 1
        assert health.is_banned(2.0)

    def test_healthy_outcomes_keep_cluster_in_rotation(self):
        health = ClusterHealth(_config())
        for index in range(50):
            health.record(error=index % 4 == 0, now=float(index))  # 25% < 50%
        assert health.state == "healthy"
        assert health.bans == 0

    def test_window_eviction_forgets_old_errors(self):
        health = ClusterHealth(_config(window=4, min_observations=4, ban_threshold=0.75))
        # Two early errors, then a clean streak long enough to evict them.
        health.record(True, 0.0)
        health.record(True, 0.0)
        for _ in range(6):
            health.record(False, 1.0)
        assert health.errors == 0
        assert health.state == "healthy"

    def test_cooldown_expires_into_probation(self):
        health = ClusterHealth(_config(cooldown_s=10.0))
        for _ in range(4):
            health.record(True, now=5.0)
        assert health.is_banned(14.9)
        assert not health.is_banned(15.0)  # 5.0 + 10.0
        assert health.state == "probation"

    def test_clean_probation_re_admits(self):
        health = ClusterHealth(_config(cooldown_s=10.0, probation_requests=4))
        for _ in range(4):
            health.record(True, now=0.0)
        for _ in range(4):
            health.record(False, now=20.0)
        assert health.state == "healthy"
        assert health.bans == 1

    def test_failed_probation_re_bans(self):
        health = ClusterHealth(_config(cooldown_s=10.0, probation_requests=4))
        for _ in range(4):
            health.record(True, now=0.0)
        for _ in range(4):
            health.record(True, now=20.0)
        assert health.state == "banned"
        assert health.bans == 2
        assert health.banned_until_s == pytest.approx(30.0)

    def test_straggler_completions_during_ban_carry_no_signal(self):
        health = ClusterHealth(_config(cooldown_s=10.0, probation_requests=4))
        for _ in range(4):
            health.record(True, now=0.0)
        # Outcomes landing while the ban is still live must not count
        # toward (or against) the upcoming probation.
        health.record(True, now=5.0)
        health.record(True, now=9.0)
        assert health.state == "banned"
        for _ in range(4):
            health.record(False, now=20.0)
        assert health.state == "healthy"


class TestProbationEdges:
    def test_probation_with_zero_outcomes_never_decides(self):
        health = ClusterHealth(_config(cooldown_s=10.0, probation_requests=4))
        for _ in range(4):
            health.record(True, now=0.0)
        # Arbitrarily far past the cooldown, with no outcomes observed, the
        # cluster is routable but stays on probation — re-admission requires
        # evidence, not the passage of time.
        for now in (10.0, 1e3, 1e6):
            assert not health.is_banned(now)
            assert health.state == "probation"
        assert health.bans == 1

    def test_reban_decided_exactly_at_probation_quota(self):
        health = ClusterHealth(
            _config(cooldown_s=10.0, probation_requests=4, probation_threshold=0.5)
        )
        for _ in range(4):
            health.record(True, now=0.0)
        assert not health.is_banned(10.0)
        # Three straight probation errors already exceed the threshold, but
        # the verdict waits for the full probation quota.
        for t in (11.0, 12.0, 13.0):
            health.record(True, now=t)
            assert health.state == "probation"
        health.record(True, now=14.0)
        assert health.state == "banned"
        assert health.bans == 2
        # The fresh cooldown runs from the deciding outcome.
        assert health.banned_until_s == pytest.approx(24.0)
        assert health.is_banned(23.9)
        assert not health.is_banned(24.0)

    def test_mixed_probation_below_threshold_readmits(self):
        health = ClusterHealth(
            _config(cooldown_s=10.0, probation_requests=4, probation_threshold=0.5)
        )
        for _ in range(4):
            health.record(True, now=0.0)
        assert not health.is_banned(10.0)
        # 1 error in the 4 probation outcomes: 25% < 50% -> healthy again.
        health.record(True, now=11.0)
        for t in (12.0, 13.0, 14.0):
            health.record(False, now=t)
        assert health.state == "healthy"
        assert health.bans == 1


class TestBanExclusionInteraction:
    """Bans (reliability) x retry exclusion (lifecycle) on ``route()``."""

    def _fleet_with_ban(self, banned="cluster-0"):
        fleet = FleetSimulation(splitwise_hh(1, 1), num_clusters=2, reliability=_config())
        health = fleet.router._health[banned]
        for _ in range(4):
            health.record(True, now=0.0)
        assert health.is_banned(fleet.engine.now)
        return fleet

    def test_exclusion_of_healthy_cluster_falls_back_to_banned(self, make_request):
        # cluster-0 banned, cluster-1 excluded by a retry: both filters are
        # soft, so the banned cluster still serves rather than dropping.
        fleet = self._fleet_with_ban("cluster-0")
        choice = fleet.router.route(make_request(), exclude="cluster-1")
        assert choice.name == "cluster-0"

    def test_exclusion_agrees_with_ban(self, make_request):
        fleet = self._fleet_with_ban("cluster-0")
        choice = fleet.router.route(make_request(), exclude="cluster-0")
        assert choice.name == "cluster-1"

    def test_ban_alone_steers_to_healthy_cluster(self, make_request):
        fleet = self._fleet_with_ban("cluster-0")
        for request_id in range(4):
            choice = fleet.router.route(make_request(request_id=request_id))
            assert choice.name == "cluster-1"

    def test_excluding_every_cluster_still_routes(self, make_request):
        fleet = self._fleet_with_ban("cluster-0")
        choice = fleet.router.route(
            make_request(), exclude=("cluster-0", "cluster-1")
        )
        # Soft exclusion that would empty the candidate set is ignored; the
        # ban filter then steers to the healthy cluster.
        assert choice.name == "cluster-1"


class TestAdmissionConfig:
    def test_thresholds_scale_with_priority(self):
        admission = AdmissionConfig(
            max_outstanding=100,
            tenant_priorities={"gold": 2, "silver": 1},
            shed_headroom=0.5,
        )
        assert admission.shed_threshold("bronze") == pytest.approx(100.0)
        assert admission.shed_threshold("silver") == pytest.approx(150.0)
        assert admission.shed_threshold("gold") == pytest.approx(200.0)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_outstanding=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_outstanding=10, shed_headroom=-0.1)
        with pytest.raises(ValueError):
            AdmissionConfig(max_outstanding=10, tenant_priorities={"t": -1})


class TestAdmissionInFleet:
    def _overloaded_fleet_result(self, admission):
        trace = mix_traces(
            generate_trace("coding", rate_rps=14.0, duration_s=30.0, seed=3).with_tenant("low"),
            generate_trace("conversation", rate_rps=4.0, duration_s=30.0, seed=4).with_tenant(
                "high"
            ),
        )
        fleet = FleetSimulation(
            splitwise_hh(1, 1), num_clusters=2, admission=admission
        )
        return fleet.run(trace)

    def test_lowest_priority_tenant_sheds_first(self):
        result = self._overloaded_fleet_result(
            AdmissionConfig(
                max_outstanding=12, tenant_priorities={"high": 2}, shed_headroom=1.0
            )
        )
        shed = result.shed_by_tenant
        assert shed.get("low", 0) > 0, "overload never tripped admission control"
        # The high-priority tenant has 3x the headroom; at this load it
        # must shed strictly less (here: nothing).
        assert shed.get("high", 0) < shed["low"]
        # Census conservation: every request either completed or was shed.
        assert len(result.completed_requests) + result.requests_shed == len(result.requests)
        # Shed requests never started.
        for request in result.shed_requests:
            assert request.shed and request.prompt_start_time is None

    def test_goodput_reported_per_tenant(self):
        result = self._overloaded_fleet_result(
            AdmissionConfig(
                max_outstanding=12, tenant_priorities={"high": 2}, shed_headroom=1.0
            )
        )
        report = result.tenant_slo_report()
        assert report.goodput["low"] < 1.0
        assert report.goodput["high"] >= report.goodput["low"]
        assert 0.0 < report.fleet_goodput < 1.0
        payload = report.as_dict()
        assert payload["tenants"]["low"]["goodput"] == pytest.approx(report.goodput["low"])
        assert payload["fleet"]["goodput"] == pytest.approx(report.fleet_goodput)

    def test_no_admission_control_sheds_nothing(self):
        result = self._overloaded_fleet_result(None)
        assert result.requests_shed == 0
        assert result.completion_rate == 1.0
