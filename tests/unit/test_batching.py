"""Unit tests for the batching policies (Fig. 2)."""

from __future__ import annotations

from collections import deque

import pytest

from repro.batching.policies import (
    BatchConstraints,
    BatchPlan,
    ContinuousBatching,
    MixedContinuousBatching,
    RequestLevelBatching,
    make_policy,
)


def _request(make_request, request_id, prompt=100, output=4, arrival=0.0):
    return make_request(request_id=request_id, arrival=arrival, prompt=prompt, output=output)


def _decoding(make_request, request_id, prompt=100, output=4, arrival=0.0):
    """A request already past its prompt phase (one token generated)."""
    request = _request(make_request, request_id, prompt, output, arrival)
    request.start_prompt(arrival, "m")
    request.finish_prompt(arrival + 0.1)
    return request


class TestBatchConstraints:
    def test_defaults_match_paper(self):
        constraints = BatchConstraints()
        assert constraints.max_prompt_tokens == 2048
        assert constraints.max_batch_size == 64

    @pytest.mark.parametrize("kwargs", [
        {"max_prompt_tokens": 0},
        {"max_batch_size": 0},
        {"max_kv_tokens": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchConstraints(**kwargs)

    def test_zero_kv_tokens_means_unlimited(self):
        constraints = BatchConstraints(max_kv_tokens=0)
        assert constraints.kv_capacity > 10**15


class TestBatchPlan:
    def test_aggregates(self, make_request):
        prompts = [_request(make_request, 0, prompt=300), _request(make_request, 1, prompt=200)]
        tokens = [_decoding(make_request, 2, prompt=100, output=5)]
        plan = BatchPlan(prompt_requests=prompts, token_requests=tokens)
        assert plan.prompt_tokens == 500
        assert plan.active_tokens == 501
        assert plan.context_tokens == 101
        spec = plan.to_batch_spec()
        assert spec.prompt_tokens == 500
        assert spec.token_requests == 1

    def test_empty(self):
        assert BatchPlan().is_empty


class TestMixedContinuousBatching:
    def test_combines_prompts_and_tokens(self, make_request):
        policy = MixedContinuousBatching()
        pending = deque([_request(make_request, 0, prompt=500)])
        decoding = [_decoding(make_request, 1), _decoding(make_request, 2)]
        plan = policy.plan_iteration(pending, decoding, BatchConstraints())
        assert len(plan.prompt_requests) == 1
        assert len(plan.token_requests) == 2
        assert not pending  # the admitted prompt was popped

    def test_prompt_token_budget_respected(self, make_request):
        policy = MixedContinuousBatching()
        pending = deque([
            _request(make_request, 0, prompt=1500),
            _request(make_request, 1, prompt=1000),
            _request(make_request, 2, prompt=100),
        ])
        plan = policy.plan_iteration(pending, [], BatchConstraints(max_prompt_tokens=2048))
        # The second prompt would exceed 2048 batched tokens, so only one runs.
        assert [r.request_id for r in plan.prompt_requests] == [0]
        assert len(pending) == 2

    def test_single_oversized_prompt_still_admitted(self, make_request):
        policy = MixedContinuousBatching()
        pending = deque([_request(make_request, 0, prompt=8000)])
        plan = policy.plan_iteration(pending, [], BatchConstraints(max_prompt_tokens=2048))
        assert len(plan.prompt_requests) == 1

    def test_batch_size_limit_counts_prompts_and_tokens(self, make_request):
        policy = MixedContinuousBatching()
        pending = deque([_request(make_request, i, prompt=10) for i in range(3)])
        decoding = [_decoding(make_request, 10 + i) for i in range(5)]
        plan = policy.plan_iteration(pending, decoding, BatchConstraints(max_batch_size=4))
        assert len(plan.prompt_requests) + len(plan.token_requests) <= 4
        assert len(plan.prompt_requests) == 3  # prompts admitted first

    def test_kv_budget_limits_token_selection(self, make_request):
        policy = MixedContinuousBatching()
        decoding = [_decoding(make_request, i, prompt=1000) for i in range(4)]
        plan = policy.plan_iteration(deque(), decoding, BatchConstraints(max_kv_tokens=2500))
        assert len(plan.token_requests) == 2

    def test_priority_boost_reorders_tokens(self, make_request):
        policy = MixedContinuousBatching()
        first = _decoding(make_request, 0, arrival=0.0)
        second = _decoding(make_request, 1, arrival=1.0)
        second.priority_boost = 5.0
        plan = policy.plan_iteration(deque(), [first, second], BatchConstraints(max_batch_size=1))
        assert plan.token_requests == [second]


class TestContinuousBatching:
    def test_prompts_preempt_tokens(self, make_request):
        policy = ContinuousBatching()
        pending = deque([_request(make_request, 0)])
        decoding = [_decoding(make_request, 1)]
        plan = policy.plan_iteration(pending, decoding, BatchConstraints())
        assert plan.prompt_requests and not plan.token_requests

    def test_tokens_run_when_no_prompts(self, make_request):
        policy = ContinuousBatching()
        decoding = [_decoding(make_request, 1), _decoding(make_request, 2)]
        plan = policy.plan_iteration(deque(), decoding, BatchConstraints())
        assert not plan.prompt_requests
        assert len(plan.token_requests) == 2


class TestRequestLevelBatching:
    def test_new_batch_admitted_only_when_previous_drains(self, make_request):
        policy = RequestLevelBatching()
        first = _request(make_request, 0, prompt=100, output=2)
        second = _request(make_request, 1, prompt=100, output=2)
        pending = deque([first, second])

        plan1 = policy.plan_iteration(pending, [], BatchConstraints())
        assert plan1.prompt_requests == [first, second]

        # Simulate both finishing their prompt phase and still decoding.
        for request in (first, second):
            request.start_prompt(0.0, "m")
            request.finish_prompt(0.1)
        late = _request(make_request, 2, arrival=0.2)
        pending.append(late)

        plan2 = policy.plan_iteration(pending, [first, second], BatchConstraints())
        assert not plan2.prompt_requests  # the late request must wait
        assert set(plan2.token_requests) == {first, second}

        # Batch completes; the next iteration admits the waiting request.
        for request in (first, second):
            request.generate_token(0.2)
        plan3 = policy.plan_iteration(pending, [], BatchConstraints())
        assert plan3.prompt_requests == [late]

    def test_token_pool_members_outside_batch_ignored(self, make_request):
        policy = RequestLevelBatching()
        member = _request(make_request, 0, output=3)
        pending = deque([member])
        policy.plan_iteration(pending, [], BatchConstraints())
        member.start_prompt(0.0, "m")
        member.finish_prompt(0.1)
        foreign = _decoding(make_request, 99)
        plan = policy.plan_iteration(pending, [member, foreign], BatchConstraints())
        assert foreign not in plan.token_requests


class TestPolicyFactory:
    @pytest.mark.parametrize("name,cls", [
        ("mixed", MixedContinuousBatching),
        ("mixed-continuous", MixedContinuousBatching),
        ("continuous", ContinuousBatching),
        ("request-level", RequestLevelBatching),
    ])
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="Unknown batching policy"):
            make_policy("clockwork")
