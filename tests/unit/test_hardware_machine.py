"""Unit tests for DGX machine specifications."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.gpu import GPU_A100, GPU_H100
from repro.hardware.machine import (
    DGX_A100,
    DGX_H100,
    DGX_H100_CAPPED,
    MachineSpec,
    get_machine,
    registered_machines,
    with_power_cap,
)


class TestMachineSpecValidation:
    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError, match="num_gpus"):
            MachineSpec(name="bad", gpu=GPU_A100, num_gpus=0)

    def test_rejects_tensor_parallelism_above_gpu_count(self):
        with pytest.raises(ValueError, match="tensor_parallelism"):
            MachineSpec(name="bad", gpu=GPU_A100, num_gpus=4, tensor_parallelism=8)

    def test_cost_defaults_to_gpu_cost(self):
        assert DGX_A100.cost_per_hour == GPU_A100.cost_per_hour
        assert DGX_H100.cost_per_hour == GPU_H100.cost_per_hour

    def test_interconnect_defaults_to_gpu_infiniband(self):
        assert DGX_A100.interconnect_gbps == 200.0
        assert DGX_H100.interconnect_gbps == 400.0


class TestAggregates:
    def test_dgx_has_eight_gpus(self):
        assert DGX_A100.num_gpus == 8
        assert DGX_H100.num_gpus == 8

    def test_total_flops(self):
        assert DGX_A100.total_fp16_tflops == pytest.approx(8 * 19.5)
        assert DGX_H100.total_fp16_tflops == pytest.approx(8 * 66.9)

    def test_total_capacity_is_640gb(self):
        assert DGX_A100.total_hbm_capacity_gb == pytest.approx(640.0)
        assert DGX_H100.total_hbm_capacity_gb == pytest.approx(640.0)

    def test_total_bandwidth(self):
        assert DGX_H100.total_hbm_bandwidth_gbps == pytest.approx(8 * 3352.0)

    def test_gpu_tdp_totals(self):
        assert DGX_A100.gpu_tdp_watts == pytest.approx(3200.0)
        assert DGX_H100.gpu_tdp_watts == pytest.approx(5600.0)


class TestPowerProvisioning:
    def test_h100_machine_power_ratio_about_175(self):
        ratio = DGX_H100.provisioned_power_watts / DGX_A100.provisioned_power_watts
        assert ratio == pytest.approx(1.75, abs=0.01)

    def test_capped_h100_power_ratio_about_123(self):
        # Table V: the capped DGX-H100 provisions ~1.23x the power of a DGX-A100.
        ratio = DGX_H100_CAPPED.provisioned_power_watts / DGX_A100.provisioned_power_watts
        assert 1.1 <= ratio <= 1.35

    def test_capped_machine_is_cheaper_in_power_not_cost(self):
        assert DGX_H100_CAPPED.provisioned_power_watts < DGX_H100.provisioned_power_watts
        assert DGX_H100_CAPPED.cost_per_hour == DGX_H100.cost_per_hour

    def test_capped_machine_reports_capped(self):
        assert DGX_H100_CAPPED.is_power_capped
        assert not DGX_H100.is_power_capped


class TestRegistryAndDerivation:
    def test_lookup_case_insensitive(self):
        assert get_machine("dgx-a100") is DGX_A100
        assert get_machine("DGX-H100-CAP50") is DGX_H100_CAPPED

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError, match="Unknown machine"):
            get_machine("DGX-V100")

    def test_registry_is_copy(self):
        machines = registered_machines()
        machines.clear()
        assert registered_machines()

    def test_with_power_cap_scales_gpu_budget(self):
        capped = with_power_cap(DGX_H100, 0.7)
        assert capped.gpu.power_cap_watts == pytest.approx(0.7 * 700.0)
        assert "cap70" in capped.name

    def test_with_power_cap_full_keeps_name(self):
        assert with_power_cap(DGX_A100, 1.0).name == DGX_A100.name

    def test_cost_ratio_h100_over_a100_matches_table_v(self):
        ratio = DGX_H100.cost_per_hour / DGX_A100.cost_per_hour
        assert ratio == pytest.approx(2.16, abs=0.01)

    def test_machine_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DGX_A100.num_gpus = 4  # type: ignore[misc]
