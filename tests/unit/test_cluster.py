"""Unit tests for the end-to-end cluster simulation wrapper."""

from __future__ import annotations

import pytest

from repro.core.cluster import ClusterSimulation, simulate_design, simulate_designs
from repro.core.designs import baseline_h100, splitwise_hh
from repro.core.machine import MachineRole
from repro.models.llm import LLAMA2_70B
from repro.workload.trace import Trace


class TestClusterConstruction:
    def test_split_design_builds_named_pools(self, small_splitwise_design):
        simulation = ClusterSimulation(small_splitwise_design)
        names = sorted(m.name for m in simulation.machines)
        assert names == ["prompt-0", "prompt-1", "token-0"]
        roles = {m.name: m.home_role for m in simulation.machines}
        assert roles["prompt-0"] is MachineRole.PROMPT
        assert roles["token-0"] is MachineRole.TOKEN

    def test_baseline_design_builds_mixed_machines(self, small_baseline_design):
        simulation = ClusterSimulation(small_baseline_design)
        assert all(m.home_role is MachineRole.MIXED for m in simulation.machines)

    def test_prompt_machines_carry_transfer_model(self, small_splitwise_design):
        simulation = ClusterSimulation(small_splitwise_design)
        prompt_machines = [m for m in simulation.machines if m.home_role is MachineRole.PROMPT]
        token_machines = [m for m in simulation.machines if m.home_role is MachineRole.TOKEN]
        assert all(m.kv_transfer is not None for m in prompt_machines)
        assert all(m.kv_transfer is None for m in token_machines)

    def test_scheduler_thresholds_forwarded(self, small_splitwise_design):
        simulation = ClusterSimulation(
            small_splitwise_design, prompt_queue_threshold=999, decode_queue_threshold=888
        )
        assert simulation.scheduler.prompt_queue_threshold == 999
        assert simulation.scheduler.decode_queue_threshold == 888


class TestSimulationRun:
    def test_all_requests_complete_when_drained(self, small_splitwise_design, tiny_trace):
        result = simulate_design(small_splitwise_design, tiny_trace)
        assert result.completion_rate == 1.0
        assert len(result.completed_requests) == len(tiny_trace)
        assert result.duration_s >= tiny_trace.duration_s

    def test_without_drain_stops_at_trace_end(self, small_splitwise_design, small_trace):
        simulation = ClusterSimulation(small_splitwise_design)
        result = simulation.run(small_trace, drain=False)
        assert result.duration_s == pytest.approx(small_trace.duration_s)

    def test_horizon_limits_simulation(self, small_splitwise_design, small_trace):
        simulation = ClusterSimulation(small_splitwise_design)
        result = simulation.run(small_trace, horizon_s=5.0)
        assert result.duration_s >= 5.0
        assert result.completion_rate < 1.0

    def test_metrics_and_energy_populated(self, small_splitwise_design, tiny_trace):
        result = simulate_design(small_splitwise_design, tiny_trace)
        assert result.total_energy_wh() > 0
        assert 0 < result.mean_utilization() <= 1.0
        metrics = result.request_metrics()
        assert metrics.completed == len(tiny_trace)
        assert metrics.ttft.p50 > 0
        assert metrics.e2e.p50 > metrics.ttft.p50

    def test_slo_report_for_lightly_loaded_cluster(self, small_splitwise_design, tiny_trace):
        result = simulate_design(small_splitwise_design, tiny_trace)
        report = result.slo_report()
        assert report.satisfied

    def test_occupancy_by_home_role(self, small_splitwise_design, tiny_trace):
        result = simulate_design(small_splitwise_design, tiny_trace)
        prompt_occupancy = result.occupancy_by_home_role(MachineRole.PROMPT)
        token_occupancy = result.occupancy_by_home_role(MachineRole.TOKEN)
        assert prompt_occupancy.total_time > 0
        assert token_occupancy.total_time > 0

    def test_simulate_designs_returns_label_keyed_results(self, tiny_trace):
        results = simulate_designs([splitwise_hh(1, 1), baseline_h100(1)], tiny_trace)
        assert set(results) == {"Splitwise-HH (1P, 1T)", "Baseline-H100 (1P/T)"}

    def test_empty_trace_produces_no_metrics(self, small_splitwise_design):
        result = simulate_design(small_splitwise_design, Trace(requests=(), name="empty"))
        assert result.requests == []
        with pytest.raises(ValueError):
            result.request_metrics()

    def test_determinism_same_trace_same_results(self, small_splitwise_design, tiny_trace):
        first = simulate_design(small_splitwise_design, tiny_trace)
        second = simulate_design(small_splitwise_design, tiny_trace)
        first_e2e = [r.e2e_latency for r in first.completed_requests]
        second_e2e = [r.e2e_latency for r in second.completed_requests]
        assert first_e2e == second_e2e

    def test_bloom_model_supported(self, small_splitwise_design, tiny_trace):
        from repro.models.llm import BLOOM_176B

        result = simulate_design(small_splitwise_design, tiny_trace, model=BLOOM_176B)
        assert result.completion_rate == 1.0
        llama_result = simulate_design(small_splitwise_design, tiny_trace, model=LLAMA2_70B)
        assert (
            result.request_metrics().e2e.p50 > llama_result.request_metrics().e2e.p50
        )
