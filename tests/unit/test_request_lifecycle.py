"""Unit tests for the request-lifecycle reliability layer.

Covers the four configs (retry / hedge / deadline / degraded), the
request-level state transitions (``expire``, ``adopt_result``), and fleet
runs exercising each mechanism deterministically: budgeted cross-cluster
retries under an explicit machine failure, deadline expiry, degraded
admission, and the exactly-once attempt semantics in SLO accounting.
"""

from __future__ import annotations

import pytest

from repro.core.designs import splitwise_hh
from repro.fleet import (
    AdmissionConfig,
    DeadlineConfig,
    DegradedConfig,
    FleetSimulation,
    HedgeConfig,
    RetryPolicy,
)
from repro.metrics.collectors import request_outcomes
from repro.simulation.request import RequestPhase
from repro.workload.generator import generate_trace
from repro.workload.scenarios import mix_traces
from repro.workload.trace import RequestDescriptor, Trace


def _small_fleet(num_clusters=2, **kwargs):
    return FleetSimulation(splitwise_hh(1, 1), num_clusters=num_clusters, **kwargs)


def _quick_trace(rate=2.0, duration=15.0, seed=0):
    return generate_trace("conversation", rate_rps=rate, duration_s=duration, seed=seed)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"retries_by_tenant": {"t": -1}},
            {"backoff_base_s": 0.0},
            {"backoff_multiplier": 0.5},
            {"backoff_max_s": 0.1, "backoff_base_s": 0.5},
            {"jitter_fraction": 1.0},
            {"jitter_fraction": -0.1},
        ],
    )
    def test_invalid_retry_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_multiplier": 0.0},
            {"min_delay_s": 0.0},
            {"max_delay_s": 0.1, "min_delay_s": 0.5},
        ],
    )
    def test_invalid_hedge_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HedgeConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ttft_s": 0.0},
            {"e2e_s": -1.0},
            {"ttft_by_tenant": {"t": 0.0}},
            {"e2e_by_tenant": {"t": -5.0}},
        ],
    )
    def test_invalid_deadline_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeadlineConfig(**kwargs)

    def test_invalid_degraded_config_rejected(self):
        with pytest.raises(ValueError):
            DegradedConfig(max_output_tokens=0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_multiplier=2.0, backoff_max_s=3.0)
        assert policy.backoff_s(1) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(1.0)
        assert policy.backoff_s(3) == pytest.approx(2.0)
        assert policy.backoff_s(4) == pytest.approx(3.0)  # capped
        assert policy.backoff_s(10) == pytest.approx(3.0)

    def test_retry_budget_per_tenant(self):
        policy = RetryPolicy(max_retries=2, retries_by_tenant={"gold": 5})
        assert policy.budget("gold") == 5
        assert policy.budget("anyone-else") == 2

    def test_hedge_delay_clamped(self):
        hedge = HedgeConfig(p99_multiplier=2.0, min_delay_s=1.0, max_delay_s=4.0)
        assert hedge.delay_s(0.0) == pytest.approx(1.0)  # no samples -> floor
        assert hedge.delay_s(1.0) == pytest.approx(2.0)
        assert hedge.delay_s(100.0) == pytest.approx(4.0)  # ceiling

    def test_deadline_resolution_per_tenant(self):
        deadlines = DeadlineConfig(ttft_s=10.0, e2e_s=60.0, ttft_by_tenant={"gold": 2.0})
        assert deadlines.ttft_for("gold") == pytest.approx(2.0)
        assert deadlines.ttft_for("bronze") == pytest.approx(10.0)
        assert deadlines.e2e_for("gold") == pytest.approx(60.0)


class TestRequestTransitions:
    def test_expire_is_terminal_and_flagged(self, make_request):
        request = make_request()
        request.expire(5.0)
        assert request.phase is RequestPhase.EXPIRED
        assert request.expired and not request.is_complete

    def test_completed_request_cannot_expire(self, make_request):
        request = make_request(output=2)
        request.start_prompt(0.0, "m")
        request.finish_prompt(1.0)
        request.generate_token(2.0)
        assert request.is_complete
        with pytest.raises(RuntimeError, match="already completed"):
            request.expire(3.0)

    def test_adopt_result_takes_winner_series_and_drops_loser_partial(self, make_request):
        primary = make_request(request_id=7, output=3)
        # The loser attempt produced one stale token before being cancelled.
        primary.start_prompt(0.0, "loser-m")
        primary.finish_prompt(1.0)

        winner = make_request(request_id=7 + (1 << 40), output=3)
        winner.start_prompt(0.5, "winner-m")
        winner.finish_prompt(2.0)
        winner.generate_token(2.5)
        winner.generate_token(3.0)
        assert winner.is_complete

        primary.adopt_result(winner)
        assert primary.phase is RequestPhase.COMPLETED
        assert primary.prompt_machine == "winner-m"
        assert primary.first_token_time == pytest.approx(2.0)
        assert primary.completion_time == pytest.approx(3.0)
        # The loser's partial series is gone: the adopted series is exactly
        # the winner's, and latencies measure from the original arrival.
        assert list(primary.token_times) == [2.0, 2.5, 3.0]
        assert primary.generated_tokens == 3
        assert primary.e2e_latency == pytest.approx(3.0 - primary.arrival_time)

    def test_trace_round_trips_deadlines(self, tmp_path):
        trace = Trace(
            requests=(
                RequestDescriptor(0, 0.0, 100, 10, ttft_deadline_s=1.5, e2e_deadline_s=30.0),
                RequestDescriptor(1, 1.0, 100, 10),
            ),
            name="deadline-trace",
        )
        for fmt in ("csv", "json"):
            path = tmp_path / f"t.{fmt}"
            getattr(trace, f"to_{fmt}")(path)
            loaded = getattr(Trace, f"from_{fmt}")(path)
            assert loaded.requests[0].ttft_deadline_s == pytest.approx(1.5)
            assert loaded.requests[0].e2e_deadline_s == pytest.approx(30.0)
            assert loaded.requests[1].ttft_deadline_s is None
            assert loaded.requests[1].e2e_deadline_s is None


class TestRetriesInFleet:
    FAILURE = ((5.0, "cluster-0/prompt-0"),)

    def test_failed_attempts_retry_on_another_cluster(self):
        fleet = _small_fleet(retry=RetryPolicy(max_retries=3, backoff_base_s=0.2))
        result = fleet.run(_quick_trace(), failures=self.FAILURE)
        lifecycle = result.lifecycle
        assert lifecycle.retries_fired > 0, "the machine failure displaced nothing"
        assert result.completion_rate == 1.0
        # Every displaced request restarted and still appears exactly once.
        ids = [r.request_id for r in result.requests]
        assert len(ids) == len(set(ids))
        routed_ids = sorted(r.request_id for c in result.clusters for r in c.requests)
        assert routed_ids == sorted(ids)

    def test_zero_budget_expires_displaced_requests(self):
        fleet = _small_fleet(retry=RetryPolicy(max_retries=0))
        result = fleet.run(_quick_trace(), failures=self.FAILURE)
        lifecycle = result.lifecycle
        assert lifecycle.retries_exhausted > 0
        assert lifecycle.retries_exhausted == result.requests_expired
        outcomes = request_outcomes(result.requests)
        assert outcomes["expired"] > 0 and outcomes["in_flight"] == 0
        assert outcomes["completed"] + outcomes["expired"] == outcomes["total"]
        for request in result.expired_requests:
            assert request.phase is RequestPhase.EXPIRED and not request.is_complete

    def test_no_stale_token_segments_after_restart(self):
        fleet = _small_fleet(retry=RetryPolicy(max_retries=3, backoff_base_s=0.2))
        result = fleet.run(_quick_trace(), failures=self.FAILURE)
        restarted = [r for r in result.requests if r.restarts]
        assert restarted, "no request restarted; the scenario lost its point"
        for request in restarted:
            times = list(request.token_times)
            # Exactly the final attempt's tokens: one timestamp per output
            # token, strictly ordered, all after the final prompt start.
            assert len(times) == request.output_tokens
            assert times == sorted(times)
            assert times[0] >= request.prompt_start_time

    def test_exactly_once_in_slo_accounting(self):
        fleet = _small_fleet(retry=RetryPolicy(max_retries=3, backoff_base_s=0.2))
        result = fleet.run(_quick_trace(), failures=self.FAILURE)
        report = result.tenant_slo_report()
        # One e2e sample per submitted request — retried requests are not
        # double-counted and their latency runs from the original arrival.
        assert report.fleet.samples["e2e"] == len(result.requests)
        assert report.fleet_goodput == pytest.approx(1.0)

    def test_retry_seed_changes_backoffs_not_workload(self):
        results = []
        for retry_seed in (0, 1):
            fleet = _small_fleet(
                retry=RetryPolicy(max_retries=3, backoff_base_s=0.2, seed=retry_seed)
            )
            results.append(fleet.run(_quick_trace(), failures=self.FAILURE))
        first, second = results
        # Same trace, same fault: identical census and identical arrivals...
        assert [r.request_id for r in first.requests] == [r.request_id for r in second.requests]
        assert first.completion_rate == second.completion_rate == 1.0
        # ...but the jittered backoffs differ, so some retried completion
        # lands at a different instant.
        restarted_pairs = [
            (a.completion_time, b.completion_time)
            for a, b in zip(first.requests, second.requests)
            if a.restarts
        ]
        assert restarted_pairs and any(a != b for a, b in restarted_pairs)


class TestDeadlinesInFleet:
    def test_impossible_e2e_deadline_expires_everything(self):
        fleet = _small_fleet(deadlines=DeadlineConfig(e2e_s=0.001))
        result = fleet.run(_quick_trace())
        outcomes = request_outcomes(result.requests)
        assert outcomes["completed"] == 0
        assert outcomes["expired"] == outcomes["total"]
        report = result.tenant_slo_report()
        assert report.fleet_goodput == 0.0
        assert report.as_dict()["fleet"]["expired"] == outcomes["total"]

    def test_loose_deadline_changes_nothing(self):
        trace = _quick_trace()
        plain = _small_fleet().run(trace)
        deadlined = _small_fleet(deadlines=DeadlineConfig(ttft_s=1e4, e2e_s=1e5)).run(
            _quick_trace()
        )
        assert [r.completion_time for r in plain.requests] == [
            r.completion_time for r in deadlined.requests
        ]
        assert deadlined.requests_expired == 0

    def test_descriptor_deadline_overrides_tenant_default(self):
        # Fleet default is impossible, but the descriptor grants this one
        # request a generous deadline — only the other request expires.
        trace = Trace(
            requests=(
                RequestDescriptor(0, 0.0, 64, 4, e2e_deadline_s=1e4),
                RequestDescriptor(1, 0.1, 64, 4),
            ),
            name="override",
        )
        fleet = _small_fleet(deadlines=DeadlineConfig(e2e_s=0.001))
        result = fleet.run(trace)
        by_id = {r.request_id: r for r in result.requests}
        assert by_id[0].is_complete
        assert by_id[1].expired


class TestDegradedService:
    def _overload(self, degraded):
        trace = mix_traces(
            generate_trace("coding", rate_rps=14.0, duration_s=30.0, seed=3).with_tenant("low"),
            generate_trace("conversation", rate_rps=4.0, duration_s=30.0, seed=4).with_tenant(
                "high"
            ),
        )
        fleet = _small_fleet(
            admission=AdmissionConfig(
                max_outstanding=12, tenant_priorities={"high": 2}, shed_headroom=1.0
            ),
            degraded=degraded,
        )
        return fleet.run(trace)

    def test_degrade_on_shed_raises_goodput(self):
        dropped = self._overload(DegradedConfig(on_shed=False))
        served = self._overload(DegradedConfig(max_output_tokens=16, on_shed=True))
        assert served.lifecycle.degraded_admissions > 0
        assert len(served.degraded_requests) > 0
        for request in served.degraded_requests:
            assert request.output_tokens <= 16
            assert len(request.token_times) == request.output_tokens
        report_served = served.tenant_slo_report()
        report_dropped = dropped.tenant_slo_report()
        assert report_served.fleet_goodput > report_dropped.fleet_goodput
        assert report_served.fleet_degraded_goodput > 0.0
        payload = report_served.as_dict()
        assert payload["fleet"]["degraded_goodput"] == pytest.approx(
            report_served.fleet_degraded_goodput
        )

    def test_census_closed_with_degradation(self):
        result = self._overload(DegradedConfig(max_output_tokens=16, on_shed=True))
        outcomes = request_outcomes(result.requests)
        assert outcomes["in_flight"] == 0
        assert (
            outcomes["completed"] + outcomes["expired"] + outcomes["shed"] == outcomes["total"]
        )
        assert (
            len(result.completed_requests) + result.requests_shed + result.requests_expired
            == len(result.requests)
        )


class TestHedgingInFleet:
    def test_hedge_timers_leave_uncontended_run_untouched(self):
        # A healthy fleet starts every request well before any plausible
        # hedge delay, so hedging must be a pure no-op: same completions,
        # nothing launched, and the no-op timers must not stretch the run.
        trace = _quick_trace()
        plain = _small_fleet().run(trace)
        hedged = _small_fleet(hedge=HedgeConfig(min_delay_s=30.0)).run(_quick_trace())
        assert hedged.lifecycle.hedges_launched == 0
        assert [r.completion_time for r in plain.requests] == [
            r.completion_time for r in hedged.requests
        ]
        assert hedged.duration_s == pytest.approx(plain.duration_s)

    def test_hedge_fires_and_stays_census_closed_under_slow_cluster(self):
        # An aggressive hedge delay on a loaded fleet forces launches; every
        # logical request must still appear exactly once, on exactly one
        # cluster, with duplicates resolved first-wins.
        trace = _quick_trace(rate=6.0, duration=20.0)
        fleet = _small_fleet(hedge=HedgeConfig(min_delay_s=0.05, p99_multiplier=0.1))
        result = fleet.run(trace)
        assert result.lifecycle.hedges_launched > 0
        assert result.completion_rate == 1.0
        routed_ids = sorted(r.request_id for c in result.clusters for r in c.requests)
        assert routed_ids == sorted(r.request_id for r in result.requests)
        report = result.tenant_slo_report()
        assert report.fleet.samples["e2e"] == len(result.requests)
        if result.lifecycle.hedges_won:
            assert result.lifecycle.hedge_wasted_tokens >= 0
