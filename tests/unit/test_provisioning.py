"""Unit tests for the provisioning framework (§IV-D, Fig. 12)."""

from __future__ import annotations

import pytest

from repro.core.designs import baseline_h100, splitwise_hh
from repro.core.provisioning import (
    OptimizationGoal,
    Provisioner,
    ProvisioningConstraints,
    estimate_pool_sizes,
    find_max_throughput,
)


@pytest.fixture(scope="module")
def provisioner() -> Provisioner:
    """A fast provisioner: short traces, coding workload."""
    return Provisioner(workload="coding", trace_duration_s=20.0, seed=3)


class TestConstraints:
    def test_budget_checks(self):
        constraints = ProvisioningConstraints(max_cost_per_hour=100.0, max_power_kw=50.0)
        cheap = splitwise_hh(1, 1)
        assert not constraints.within_budget(cheap) or cheap.cost_per_hour <= 100.0
        unconstrained = ProvisioningConstraints()
        assert unconstrained.within_budget(splitwise_hh(100, 100))


class TestEvaluate:
    def test_feasible_at_low_load(self, provisioner):
        candidate = provisioner.evaluate(splitwise_hh(2, 1), rate_rps=1.0)
        assert candidate.feasible
        assert candidate.completion_rate >= 0.98
        assert candidate.slo_report.satisfied
        assert candidate.cost_per_hour == splitwise_hh(2, 1).cost_per_hour

    def test_infeasible_at_overload(self, provisioner):
        candidate = provisioner.evaluate(splitwise_hh(1, 1), rate_rps=40.0)
        assert not candidate.feasible

    def test_trace_cache_reused(self, provisioner):
        first = provisioner.trace_at(2.0)
        second = provisioner.trace_at(2.0)
        assert first is second


class TestMaxThroughput:
    def test_monotone_frontier(self, provisioner):
        rate, evaluations = provisioner.max_throughput(splitwise_hh(2, 1), rates=(1.0, 3.0, 40.0))
        assert rate >= 1.0
        assert any(e.feasible for e in evaluations)

    def test_returns_zero_when_nothing_feasible(self, provisioner):
        rate, _ = provisioner.max_throughput(splitwise_hh(1, 1), rates=(50.0,))
        assert rate == 0.0

    def test_convenience_wrapper(self):
        rate = find_max_throughput(
            baseline_h100(2), rates=(1.0, 2.0), workload="coding", trace_duration_s=15.0, seed=3
        )
        assert rate in (0.0, 1.0, 2.0)


class TestSizeForThroughput:
    def test_cost_optimal_configuration_found(self, provisioner):
        result = provisioner.size_for_throughput(
            "Splitwise-HH", target_rps=2.0, prompt_counts=(1, 2), token_counts=(1,), goal=OptimizationGoal.COST
        )
        assert result.candidates
        assert result.best is not None
        feasible_costs = [c.cost_per_hour for c in result.feasible_candidates]
        assert result.best.cost_per_hour == min(feasible_costs)

    def test_power_goal_selects_lowest_power(self, provisioner):
        result = provisioner.size_for_throughput(
            "Splitwise-HHcap",
            target_rps=2.0,
            prompt_counts=(1, 2),
            token_counts=(1,),
            goal=OptimizationGoal.POWER,
        )
        if result.best is not None:
            feasible_power = [c.provisioned_power_kw for c in result.feasible_candidates]
            assert result.best.provisioned_power_kw == min(feasible_power)

    def test_baseline_family_ignores_token_counts(self, provisioner):
        result = provisioner.size_for_throughput(
            "Baseline-H100", target_rps=2.0, prompt_counts=(1, 2), token_counts=(0,), goal=OptimizationGoal.COST
        )
        assert all(not c.design.split for c in result.candidates)

    def test_infeasible_search_returns_no_best(self, provisioner):
        result = provisioner.size_for_throughput(
            "Splitwise-HH", target_rps=80.0, prompt_counts=(1,), token_counts=(1,)
        )
        assert result.best is None
        assert not result.feasible_candidates


class TestBudgetSearch:
    def test_budget_excludes_expensive_designs(self, provisioner):
        result = provisioner.max_throughput_under_budget(
            "Splitwise-HH",
            rates=(1.0, 2.0),
            prompt_counts=(1, 4),
            token_counts=(1,),
            max_cost_per_hour=splitwise_hh(2, 1).cost_per_hour,
        )
        assert all(c.design.cost_per_hour <= splitwise_hh(2, 1).cost_per_hour for c in result.candidates)

    def test_best_candidate_maximizes_rate(self, provisioner):
        result = provisioner.max_throughput_under_budget(
            "Splitwise-HH", rates=(1.0, 2.0), prompt_counts=(2,), token_counts=(1,)
        )
        if result.best is not None:
            assert result.best.rate_rps == max(c.rate_rps for c in result.feasible_candidates)


class TestPoolSizeEstimation:
    def test_coding_is_prompt_heavy(self):
        prompt, token = estimate_pool_sizes("Splitwise-HH", rate_rps=70, workload="coding")
        assert prompt > token

    def test_conversation_needs_more_token_machines_than_coding(self):
        _, coding_tokens = estimate_pool_sizes("Splitwise-HH", rate_rps=70, workload="coding")
        _, conversation_tokens = estimate_pool_sizes("Splitwise-HH", rate_rps=70, workload="conversation")
        assert conversation_tokens > coding_tokens

    def test_baseline_returns_single_pool(self):
        total, token = estimate_pool_sizes("Baseline-A100", rate_rps=30, workload="coding")
        assert token == 0
        assert total >= 1

    def test_a100_needs_more_machines_than_h100(self):
        a100_prompt, _ = estimate_pool_sizes("Splitwise-AA", rate_rps=50, workload="coding")
        h100_prompt, _ = estimate_pool_sizes("Splitwise-HH", rate_rps=50, workload="coding")
        assert a100_prompt > h100_prompt

    def test_sizes_scale_with_rate(self):
        small_p, small_t = estimate_pool_sizes("Splitwise-HH", rate_rps=10, workload="conversation")
        big_p, big_t = estimate_pool_sizes("Splitwise-HH", rate_rps=100, workload="conversation")
        assert big_p >= small_p
        assert big_t > small_t

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_pool_sizes("Splitwise-HH", rate_rps=0)
        with pytest.raises(ValueError):
            estimate_pool_sizes("Splitwise-HH", rate_rps=10, utilization_target=0)
