"""Unit tests for the fleet layer: router policies, provisioner, accounting."""

from __future__ import annotations

import pytest

from repro.core.designs import splitwise_hh
from repro.fleet import (
    ClusterState,
    FleetProvisioner,
    FleetProvisionerConfig,
    FleetRouter,
    FleetSimulation,
    ROUTER_POLICIES,
)
from repro.workload.generator import generate_trace
from repro.workload.scenarios import get_scenario, mix_traces
from repro.workload.trace import RequestDescriptor, Trace


def _small_fleet(num_clusters=2, **kwargs):
    return FleetSimulation(splitwise_hh(1, 1), num_clusters=num_clusters, **kwargs)


def _quick_trace(rate=4.0, duration=20.0, seed=0):
    return generate_trace("conversation", rate_rps=rate, duration_s=duration, seed=seed)


class TestFleetRouter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            FleetRouter("shortest-job-first")

    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_every_policy_serves_the_whole_trace(self, policy):
        fleet = _small_fleet(router=policy)
        result = fleet.run(_quick_trace())
        assert result.completion_rate == 1.0
        routed = result.requests_by_cluster()
        assert sum(routed.values()) == len(result.requests)
        # Both clusters must actually participate under every policy.
        assert all(count > 0 for count in routed.values())

    def test_weighted_rr_splits_evenly_on_equal_weights(self):
        fleet = _small_fleet(router="weighted-rr")
        result = fleet.run(_quick_trace())
        routed = result.requests_by_cluster()
        assert abs(routed["cluster-0"] - routed["cluster-1"]) <= 1

    def test_tenant_pin_confines_a_tenant(self):
        trace = mix_traces(
            generate_trace("conversation", rate_rps=2.0, duration_s=15.0, seed=1).with_tenant("a"),
            generate_trace("coding", rate_rps=2.0, duration_s=15.0, seed=2).with_tenant("b"),
        )
        router = FleetRouter("least-outstanding", tenant_pins={"b": "cluster-1"})
        fleet = _small_fleet(router=router)
        result = fleet.run(trace)
        assert result.completion_rate == 1.0
        pinned = [r for r in result.clusters[1].requests if r.tenant == "b"]
        stray = [r for r in result.clusters[0].requests if r.tenant == "b"]
        assert pinned and not stray

    def test_pin_to_unknown_cluster_rejected(self):
        router = FleetRouter(tenant_pins={"a": "cluster-9"})
        with pytest.raises(ValueError, match="unknown cluster"):
            _small_fleet(router=router)

    def test_slo_feedback_shifts_traffic_away_from_degraded_cluster(self, make_request):
        # Seed the rolling windows directly: cluster-0's tail is 10x worse
        # than cluster-1's at equal outstanding load, so the next routing
        # decision must avoid it; once enough healthy completions flush the
        # window, the lexicographic tie-break takes over and cluster-0 wins
        # again (the window is sized so recovery is observable).
        fleet = _small_fleet(router=FleetRouter("slo-feedback", slo_window=10))
        router = fleet.router

        def completed(request_id, ttft, tbt, tokens=4):
            request = make_request(request_id=request_id, output=tokens)
            request.start_prompt(0.0, "m")
            request.finish_prompt(ttft)
            for i in range(1, tokens):
                request.generate_token(ttft + i * tbt)
            return request

        for i in range(10):
            router.note_completed("cluster-0", completed(i, ttft=2.0, tbt=0.5))
            router.note_completed("cluster-1", completed(100 + i, ttft=0.2, tbt=0.05))
        # note_completed decremented outstanding below submissions; rebalance
        # the counters so both clusters sit at equal outstanding load.
        for traffic in router.traffic.values():
            traffic.submitted = traffic.completed
        assert router.route(make_request(request_id=200)).name == "cluster-1"
        for i in range(10):
            router.note_completed("cluster-0", completed(300 + i, ttft=0.2, tbt=0.05))
        for traffic in router.traffic.values():
            traffic.submitted = traffic.completed
        assert router.route(make_request(request_id=400)).name == "cluster-0"


class TestFleetSimulation:
    def test_requires_at_least_one_cluster(self):
        with pytest.raises(ValueError, match="num_clusters"):
            _small_fleet(num_clusters=0)

    def test_burst_clusters_require_provisioner(self):
        with pytest.raises(ValueError, match="provisioner"):
            _small_fleet(burst_clusters=1)

    def test_machine_names_are_cluster_prefixed(self):
        fleet = _small_fleet()
        names = [m.name for m in fleet.machines]
        assert "cluster-0/prompt-0" in names and "cluster-1/token-0" in names
        assert len(set(names)) == len(names)

    def test_census_conserved_across_clusters(self):
        trace = _quick_trace()
        fleet = _small_fleet()
        result = fleet.run(trace)
        per_cluster = [r.request_id for c in result.clusters for r in c.requests]
        assert sorted(per_cluster) == sorted(r.request_id for r in result.requests)
        assert len(set(per_cluster)) == len(per_cluster)

    def test_failure_injection_targets_the_named_cluster(self):
        trace = _quick_trace(duration=30.0)
        fleet = _small_fleet()
        result = fleet.run(trace, failures=((5.0, "cluster-0/prompt-0"),))
        assert result.completion_rate == 1.0
        failed = result.cluster_results["cluster-0"].scheduler.failed_machines
        assert [m.name for m in failed] == ["cluster-0/prompt-0"]
        assert not result.cluster_results["cluster-1"].scheduler.failed_machines

    def test_unprefixed_failure_name_rejected(self):
        fleet = _small_fleet()
        with pytest.raises(ValueError, match="prefix"):
            fleet.run(_quick_trace(), failures=((5.0, "prompt-0"),))

    def test_static_fleet_machine_hours_match_whole_window(self):
        fleet = _small_fleet()
        result = fleet.run(_quick_trace())
        expected = result.total_machines * result.duration_s / 3600.0
        assert result.machine_hours() == pytest.approx(expected)
        assert result.machine_hours_saved() == pytest.approx(0.0)

    def test_per_cluster_results_carry_only_their_requests(self):
        fleet = _small_fleet()
        result = fleet.run(_quick_trace())
        for cluster in result.clusters:
            cluster_result = result.cluster_results[cluster.name]
            assert cluster_result.requests == cluster.requests
            assert cluster_result.trace_name == result.trace_name


class TestFleetProvisioner:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            FleetProvisionerConfig(interval_s=0)
        with pytest.raises(ValueError):
            FleetProvisionerConfig(hysteresis_ticks=0)
        with pytest.raises(ValueError):
            FleetProvisionerConfig(min_active_clusters=0)
        with pytest.raises(ValueError):
            FleetProvisionerConfig(warm_billing_fraction=1.5)

    def test_double_attach_rejected(self):
        provisioner = FleetProvisioner()
        fleet = _small_fleet(provisioner=provisioner)
        fleet.run(_quick_trace(duration=5.0))
        with pytest.raises(RuntimeError, match="attached"):
            provisioner.attach(fleet)

    def test_burst_activates_standby_under_pressure(self):
        preset = get_scenario("diurnal")
        trace = preset.build_trace(seed=0, scale=2.0)
        fleet = FleetSimulation(
            splitwise_hh(3, 2),
            num_clusters=2,
            burst_clusters=1,
            provisioner=FleetProvisionerConfig(),
        )
        result = fleet.run(trace)
        assert result.completion_rate == 1.0
        actions = [e.action for e in result.provisioner.timeline]
        assert "burst-warm" in actions and "activate" in actions
        # The standby served real traffic once active.
        assert len(result.clusters[2].requests) > 0

    def test_drain_then_retire_never_strands_requests(self):
        preset = get_scenario("diurnal")
        trace = preset.build_trace(seed=0, scale=2.0)
        fleet = FleetSimulation(
            splitwise_hh(3, 2),
            num_clusters=2,
            burst_clusters=1,
            provisioner=FleetProvisionerConfig(),
        )
        result = fleet.run(trace)
        timeline = result.provisioner.timeline
        drains = [e for e in timeline if e.action == "drain"]
        retires = [e for e in timeline if e.action == "retire"]
        assert drains, "scenario never drained a cluster"
        # Retire only ever happens after the drain of the same cluster, with
        # zero outstanding requests (census: every request still completed).
        for retire in retires:
            drain_times = [e.time_s for e in drains if e.cluster == retire.cluster]
            assert drain_times and min(drain_times) <= retire.time_s
        assert result.completion_rate == 1.0

    def test_burst_fleet_saves_machine_hours_vs_static(self):
        preset = get_scenario("diurnal")
        trace = preset.build_trace(seed=0, scale=2.0)
        static = FleetSimulation(splitwise_hh(3, 2), num_clusters=3)
        static_result = static.run(trace)
        burst = FleetSimulation(
            splitwise_hh(3, 2), num_clusters=2, burst_clusters=1,
            provisioner=FleetProvisionerConfig(),
        )
        burst_result = burst.run(trace)
        assert burst_result.machine_hours() < static_result.machine_hours()
        assert burst_result.cost() < static_result.cost()

    def test_provisioner_never_drains_a_pinned_cluster(self):
        # Tenant "b" is pinned to cluster-1, which sits idle until b's
        # traffic starts late in the run: the provisioner must not drain it
        # in the meantime (a pinned tenant has nowhere else to go).
        from repro.workload.scenarios import splice_traces

        early = generate_trace("conversation", rate_rps=3.0, duration_s=60.0, seed=1).with_tenant("a")
        late = generate_trace("coding", rate_rps=2.0, duration_s=20.0, seed=2).with_tenant("b")
        trace = splice_traces(early, late, at_s=40.0)
        router = FleetRouter("least-outstanding", tenant_pins={"a": "cluster-0", "b": "cluster-1"})
        fleet = _small_fleet(
            router=router,
            provisioner=FleetProvisionerConfig(low_outstanding_per_cluster=50.0, cooldown_s=1.0),
        )
        result = fleet.run(trace)
        assert result.completion_rate == 1.0
        drained = {e.cluster for e in result.provisioner.timeline if e.action == "drain"}
        assert "cluster-1" not in drained and "cluster-0" not in drained

    def test_empty_trace_with_stacked_controllers_terminates(self):
        from repro.core.autoscaler import AutoscalerConfig

        fleet = FleetSimulation(
            splitwise_hh(1, 1),
            num_clusters=2,
            provisioner=FleetProvisionerConfig(),
            autoscaler=AutoscalerConfig(),
        )
        result = fleet.run(Trace(requests=(), name="empty"))
        assert result.requests == []
        assert result.completion_rate == 0.0

    def test_standby_autoscaler_parking_does_not_discount_billing(self):
        # A warm standby receives no traffic; its own pool autoscaler parks
        # idle machines, but those machines were never fully billed — the
        # fleet total must not subtract them (double discount).
        from repro.core.autoscaler import AutoscalerConfig

        config = FleetProvisionerConfig(warm_billing_fraction=0.0)
        fleet = FleetSimulation(
            splitwise_hh(2, 2),
            num_clusters=1,
            burst_clusters=1,
            provisioner=config,
            autoscaler=AutoscalerConfig(interval_s=2.0, hysteresis_ticks=1, cooldown_s=2.0),
        )
        result = fleet.run(_quick_trace(rate=1.0, duration=30.0))
        assert result.clusters[1].state is ClusterState.WARM
        standby_saved = result.cluster_results["cluster-1"].autoscaler.machine_hours_saved()
        billed = result.provisioner.billed_machine_hours()
        # cluster-0 is ACTIVE (fully billed) for the whole window, so all of
        # its parking overlaps billed time and discounts in full.
        active_saved = result.cluster_results["cluster-0"].autoscaler.machine_hours_saved()
        # The scenario must actually exercise the bug: the standby's own
        # autoscaler parked machines the provisioner never billed.
        assert standby_saved > 0
        # Only the active cluster's parking may discount the bill.
        assert result.machine_hours() == pytest.approx(billed - active_saved)
        assert result.machine_hours() > billed - active_saved - standby_saved

    def test_retired_cluster_is_re_rentable_as_cold_capacity(self):
        # Drain-then-retire must not permanently shrink the fleet: once
        # every standby is used up, a retired cluster is cold capacity and
        # can be burst again at cold-start price.
        fleet = FleetSimulation(
            splitwise_hh(1, 1), num_clusters=2, provisioner=FleetProvisionerConfig()
        )
        provisioner = fleet.provisioner
        provisioner.attach(fleet)
        retired = fleet.clusters[1]
        provisioner._transition(retired, ClusterState.DRAINING)
        provisioner.retire_drained()
        assert retired.state is ClusterState.RETIRED and not retired.routable
        assert provisioner._scale_up(reason="test pressure")
        assert retired.state is ClusterState.STARTING
        assert provisioner.timeline[-1].action == "burst-cold"

    def test_park_savings_only_discount_fully_billed_windows(self):
        from repro.fleet.fleet import _overlap_seconds

        # [10, 30) parked, billed windows [0, 15) and [25, 40): only 10s of
        # the park interval overlaps billed time.
        assert _overlap_seconds(10.0, 30.0, [(0.0, 15.0), (25.0, 40.0)]) == pytest.approx(10.0)
        assert _overlap_seconds(10.0, 30.0, []) == 0.0
        assert _overlap_seconds(10.0, 30.0, [(30.0, 50.0)]) == 0.0

    def test_billing_fractions_applied_per_state(self):
        config = FleetProvisionerConfig(warm_billing_fraction=0.0)
        fleet = FleetSimulation(
            splitwise_hh(1, 1), num_clusters=1, burst_clusters=1, provisioner=config,
        )
        # Light load: the standby stays warm the whole run and must be free.
        result = fleet.run(_quick_trace(rate=1.0, duration=10.0))
        assert result.clusters[1].state is ClusterState.WARM
        expected_active = result.clusters[0].num_machines * result.duration_s / 3600.0
        assert result.machine_hours() == pytest.approx(expected_active)


class TestTenantThreading:
    def test_mixed_tenant_preset_tags_both_tenants(self):
        trace = get_scenario("mixed-tenant").build_trace(seed=0, scale=0.5)
        assert trace.tenants() == ("coding", "conversation")

    def test_composition_preserves_tenant_tags(self):
        first = Trace(
            requests=(
                RequestDescriptor(0, 0.0, 10, 5, tenant="a"),
                RequestDescriptor(1, 1.0, 10, 5, tenant="a"),
            ),
            name="a",
        )
        second = Trace(
            requests=(RequestDescriptor(0, 0.5, 20, 8, tenant="b"),), name="b"
        )
        from repro.workload.scenarios import concat_traces, splice_traces

        for composed in (
            mix_traces(first, second),
            concat_traces(first, second),
            splice_traces(first, second, at_s=0.25),
        ):
            assert sorted({r.tenant for r in composed}) == ["a", "b"]
            # ids renumbered, tenants intact
            assert [r.request_id for r in composed] == list(range(len(composed)))

    def test_trace_csv_json_round_trip_keeps_tenants(self, tmp_path):
        trace = _quick_trace(duration=5.0).with_tenant("gold")
        csv_back = Trace.from_csv(trace.to_csv(tmp_path / "t.csv"))
        json_back = Trace.from_json(trace.to_json(tmp_path / "t.json"))
        assert csv_back.tenants() == ("gold",)
        assert json_back.tenants() == ("gold",)

    def test_legacy_csv_without_tenant_column_defaults(self, tmp_path):
        path = tmp_path / "legacy.csv"
        path.write_text(
            "request_id,arrival_time_s,prompt_tokens,output_tokens\n0,0.0,10,5\n"
        )
        trace = Trace.from_csv(path)
        assert trace.tenants() == ("default",)

    def test_scaling_and_truncation_keep_tenants(self):
        trace = _quick_trace(duration=10.0).with_tenant("gold")
        assert trace.scaled_to_rate(8.0).tenants() == ("gold",)
        assert trace.truncated(5.0).tenants() == ("gold",)
