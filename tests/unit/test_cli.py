"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.workload.trace import Trace


class TestTraceCommand:
    def test_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(["trace", "--workload", "coding", "--rate", "3", "--duration", "20", "-o", str(output)])
        assert code == 0
        assert output.exists()
        trace = Trace.from_csv(output)
        assert len(trace) > 20
        assert "wrote" in capsys.readouterr().out


class TestSimulateCommand:
    def test_generated_trace_summary(self, capsys):
        code = main([
            "simulate", "--design", "Splitwise-HH", "--prompt", "1", "--token", "1",
            "--workload", "coding", "--rate", "2", "--duration", "15",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ttft_p50_ms" in out
        assert "Splitwise-HH (1P, 1T)" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "simulate", "--design", "Baseline-H100", "--prompt", "1", "--token", "0",
            "--workload", "coding", "--rate", "1", "--duration", "15", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 2)
        assert payload["design"].startswith("Baseline-H100")
        assert payload["completion_rate"] == 1.0
        assert payload["ttft_p50_ms"] > 0

    def test_replays_csv_trace(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        main(["trace", "--workload", "coding", "--rate", "2", "--duration", "15", "-o", str(output)])
        capsys.readouterr()
        code = main(["simulate", "--design", "Splitwise-HA", "--prompt", "1", "--token", "1",
                     "--trace", str(output)])
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "trace" in out

    def test_rate_and_duration_reshape_replayed_trace(self, tmp_path, capsys):
        """Explicit --rate / --duration must apply to a replayed trace, not be
        silently ignored."""
        output = tmp_path / "trace.csv"
        main(["trace", "--workload", "coding", "--rate", "2", "--duration", "30", "-o", str(output)])
        capsys.readouterr()
        full = len(Trace.from_csv(output))
        code = main(["simulate", "--design", "Splitwise-HH", "--prompt", "1", "--token", "1",
                     "--trace", str(output), "--rate", "4", "--duration", "5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 2)
        assert payload["requests"] < full
        # ~4 RPS over the 5s truncation window.
        assert 5 <= payload["requests"] <= 40
        assert any("rescaled" in note for note in payload["notes"])
        assert any("truncated" in note for note in payload["notes"])

    def test_replayed_trace_untouched_without_flags(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        main(["trace", "--workload", "coding", "--rate", "2", "--duration", "15", "-o", str(output)])
        capsys.readouterr()
        full = len(Trace.from_csv(output))
        code = main(["simulate", "--design", "Splitwise-HH", "--prompt", "1", "--token", "1",
                     "--trace", str(output), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 2)
        assert payload["requests"] == full
        assert "notes" not in payload

    def test_overloaded_cluster_returns_slo_exit_code(self, capsys):
        code = main([
            "simulate", "--design", "Baseline-H100", "--prompt", "1", "--token", "0",
            "--workload", "conversation", "--rate", "20", "--duration", "15",
        ])
        assert code == 2
        capsys.readouterr()


class TestScenarioCommand:
    def test_diurnal_preset_prints_slo_and_machine_hours(self, capsys):
        code = main(["scenario", "--preset", "diurnal", "--scale", "0.5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "static" in out
        assert "autoscaled" in out
        assert "machine-hours saved" in out

    def test_json_output_is_non_vacuous_and_deterministic(self, capsys):
        payloads = []
        for _ in range(2):
            code = main(["scenario", "--preset", "diurnal", "--scale", "0.5", "--json"])
            payloads.append(json.loads(capsys.readouterr().out))
            assert code in (0, 2)
        first, second = payloads
        # Same seed => bit-identical results across two runs.
        assert first == second
        for label in ("static", "autoscaled"):
            assert first[label]["slo_samples"]["tbt"] > 0
            assert first[label]["slo_samples"]["ttft"] > 0
        assert "machine_hours_saved" in first
        assert isinstance(first["timeline"], list)

    def test_no_autoscaler_skips_comparison(self, capsys):
        code = main(["scenario", "--preset", "failure-under-load", "--scale", "0.5",
                     "--no-autoscaler", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 2)
        assert "autoscaled" not in payload
        assert "machine_hours_saved" not in payload

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "--preset", "lunar-eclipse"])


class TestFleetCommand:
    def test_mixed_tenant_reports_per_tenant_slo_and_hours(self, capsys):
        code = main(["fleet", "--preset", "mixed-tenant", "--clusters", "2", "--scale", "0.5"])
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "per-tenant SLO" in out
        assert "coding=" in out and "conversation=" in out
        assert "machine-hours saved vs static" in out

    def test_json_output_is_non_vacuous_and_deterministic(self, capsys):
        payloads = []
        for _ in range(2):
            code = main(["fleet", "--preset", "mixed-tenant", "--clusters", "2",
                         "--scale", "0.5", "--json"])
            payloads.append(json.loads(capsys.readouterr().out))
            assert code in (0, 2)
        first, second = payloads
        assert first == second  # same seed => bit-identical
        assert sorted(first["tenants"]) == ["coding", "conversation"]
        for label in ("static", "burst"):
            tenants = first[label]["tenant_slo"]["tenants"]
            assert sorted(tenants) == ["coding", "conversation"]
            for entry in tenants.values():
                assert entry["samples"]["ttft"] > 0
                assert entry["samples"]["tbt"] > 0
        assert "machine_hours_saved" in first
        assert isinstance(first["timeline"], list)

    def test_no_burst_skips_comparison(self, capsys):
        code = main(["fleet", "--preset", "diurnal", "--clusters", "2", "--scale", "0.5",
                     "--no-burst", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 2)
        assert "burst" not in payload
        assert "machine_hours_saved" not in payload

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--policy", "fastest-first"])


class TestProvisionCommand:
    def test_reports_optimum_for_feasible_load(self, capsys):
        code = main([
            "provision", "--design", "Splitwise-HH", "--workload", "coding",
            "--rate", "4", "--duration", "20", "--spread", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal (cost):" in out
        assert "analytical estimate" in out


class TestDesignsCommand:
    def test_lists_all_families(self, capsys):
        code = main(["designs", "--prompt", "2", "--token", "2"])
        out = capsys.readouterr().out
        assert code == 0
        for family in ("Baseline-A100", "Splitwise-HHcap", "Splitwise-HA"):
            assert family in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--design", "Splitwise-XY"])
