"""Unit tests for time-varying arrival processes, composition, and presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generator import generate_trace
from repro.workload.scenarios import (
    SCENARIO_PRESETS,
    MarkovModulatedArrival,
    PiecewiseRateArrival,
    SinusoidalDiurnalArrival,
    concat_traces,
    get_scenario,
    mix_traces,
    splice_traces,
)


class TestPiecewiseRateArrival:
    def test_arrivals_sorted_and_within_duration(self):
        arrival = PiecewiseRateArrival(schedule=((10.0, 5.0), (10.0, 1.0)))
        times = arrival.arrival_times(np.random.default_rng(3), 20.0)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0.0 and times.max() < 20.0

    def test_rate_concentrates_in_high_segments(self):
        arrival = PiecewiseRateArrival(schedule=((10.0, 20.0), (10.0, 0.5)))
        times = arrival.arrival_times(np.random.default_rng(5), 20.0)
        high = int((times < 10.0).sum())
        low = int((times >= 10.0).sum())
        assert high > 10 * max(1, low)

    def test_zero_rate_segment_is_silent(self):
        arrival = PiecewiseRateArrival(schedule=((5.0, 0.0), (5.0, 4.0)))
        times = arrival.arrival_times(np.random.default_rng(0), 10.0)
        assert (times >= 5.0).all()

    def test_schedule_cycles_past_its_length(self):
        arrival = PiecewiseRateArrival(schedule=((5.0, 8.0), (5.0, 0.0)))
        times = arrival.arrival_times(np.random.default_rng(1), 20.0)
        # Second cycle's active segment is [10, 15).
        assert ((times >= 10.0) & (times < 15.0)).any()
        assert not (((times >= 5.0) & (times < 10.0)) | (times >= 15.0)).any()

    def test_average_rate_and_expected_requests(self):
        arrival = PiecewiseRateArrival(schedule=((10.0, 6.0), (30.0, 2.0)))
        assert arrival.rate_rps == pytest.approx(3.0)
        assert arrival.expected_requests(40.0) == pytest.approx(120.0)
        assert arrival.expected_requests(50.0) == pytest.approx(180.0)  # wraps into segment 1

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseRateArrival(schedule=())
        with pytest.raises(ValueError):
            PiecewiseRateArrival(schedule=((0.0, 1.0),))
        with pytest.raises(ValueError):
            PiecewiseRateArrival(schedule=((1.0, -1.0),))


class TestSinusoidalDiurnalArrival:
    def test_mean_rate_is_base(self):
        arrival = SinusoidalDiurnalArrival(base_rps=4.0, amplitude_rps=3.0, period_s=50.0)
        assert arrival.rate_rps == 4.0
        assert arrival.expected_requests(100.0) == pytest.approx(400.0)  # full periods

    def test_peak_half_busier_than_trough_half(self):
        # phase=-pi/2 puts the trough first and the peak in the middle.
        arrival = SinusoidalDiurnalArrival(
            base_rps=5.0, amplitude_rps=4.5, period_s=100.0, phase=-np.pi / 2
        )
        times = arrival.arrival_times(np.random.default_rng(7), 100.0)
        # The peak quarter-periods are [25, 75); the trough wraps the edges.
        mid = int(((times >= 25.0) & (times < 75.0)).sum())
        assert mid > (len(times) - mid) * 2

    def test_amplitude_bounds_enforced(self):
        with pytest.raises(ValueError):
            SinusoidalDiurnalArrival(base_rps=2.0, amplitude_rps=3.0, period_s=10.0)
        with pytest.raises(ValueError):
            SinusoidalDiurnalArrival(base_rps=0.0, amplitude_rps=0.0, period_s=10.0)


class TestMarkovModulatedArrival:
    def test_stationary_rate_mixes_dwell_times(self):
        arrival = MarkovModulatedArrival(
            base_rps=1.0, burst_rps=10.0, mean_base_dwell_s=30.0, mean_burst_dwell_s=10.0
        )
        assert arrival.rate_rps == pytest.approx((1.0 * 30 + 10.0 * 10) / 40)

    def test_bursts_concentrate_arrivals(self):
        arrival = MarkovModulatedArrival(
            base_rps=0.2, burst_rps=40.0, mean_base_dwell_s=20.0, mean_burst_dwell_s=4.0
        )
        times = arrival.arrival_times(np.random.default_rng(11), 200.0)
        # Under a strongly bimodal rate, inter-arrival gaps are bimodal too:
        # the storm gaps are far below the quiet-state mean gap.
        gaps = np.diff(times)
        assert len(times) > 50
        assert np.median(gaps) < 0.25  # most arrivals are storm arrivals


class TestTraceComposition:
    def _trace(self, rate, seed, duration=10.0, workload="conversation"):
        return generate_trace(workload, rate_rps=rate, duration_s=duration, seed=seed)

    def test_concat_shifts_and_renumbers(self):
        first, second = self._trace(2.0, 0), self._trace(2.0, 1)
        combined = concat_traces(first, second, gap_s=5.0)
        assert len(combined) == len(first) + len(second)
        assert [r.request_id for r in combined] == list(range(len(combined)))
        later = combined.requests[len(first) :]
        assert all(r.arrival_time_s >= first.duration_s + 5.0 for r in later)

    def test_mix_superposes_and_sorts(self):
        first, second = self._trace(2.0, 0), self._trace(3.0, 1)
        mixed = mix_traces(first, second)
        assert len(mixed) == len(first) + len(second)
        arrivals = [r.arrival_time_s for r in mixed]
        assert arrivals == sorted(arrivals)
        assert len({r.request_id for r in mixed}) == len(mixed)

    def test_splice_offsets_the_insert(self):
        base, insert = self._trace(1.0, 0), self._trace(5.0, 1, duration=3.0)
        spliced = splice_traces(base, insert, at_s=4.0)
        assert len(spliced) == len(base) + len(insert)
        window = [r for r in spliced if 4.0 <= r.arrival_time_s < 7.0]
        assert len(window) >= len(insert)


class TestScenarioPresets:
    def test_all_presets_build_deterministic_traces(self):
        for name in SCENARIO_PRESETS:
            preset = get_scenario(name)
            first = preset.build_trace(seed=42, scale=0.5)
            second = preset.build_trace(seed=42, scale=0.5)
            assert len(first) > 0
            assert [(r.arrival_time_s, r.prompt_tokens, r.output_tokens) for r in first] == [
                (r.arrival_time_s, r.prompt_tokens, r.output_tokens) for r in second
            ]
            assert first.metadata["scenario"] == name

    def test_different_seeds_differ(self):
        preset = get_scenario("diurnal")
        assert [r.arrival_time_s for r in preset.build_trace(seed=0)] != [
            r.arrival_time_s for r in preset.build_trace(seed=1)
        ]

    def test_machine_counts_scale(self):
        preset = get_scenario("diurnal")
        assert preset.machine_counts(1.0) == (3, 2)
        prompt_half, token_half = preset.machine_counts(0.5)
        assert 1 <= prompt_half <= 2 and token_half >= 1

    def test_failure_preset_injects_failures(self):
        preset = get_scenario("failure-under-load")
        failures = preset.failures()
        assert failures
        for time_s, name in failures:
            assert 0 < time_s < preset.duration_s
            assert name.startswith(("prompt-", "token-"))

    def test_mixed_tenant_mixes_two_workloads(self):
        trace = get_scenario("mixed-tenant").build_trace(seed=3)
        assert trace.metadata["composed"] == "mix"

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            get_scenario("full-moon")
