"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DGX_A100,
    DGX_H100,
    LLAMA2_70B,
    AnalyticalPerformanceModel,
    Request,
    RequestDescriptor,
    Trace,
    baseline_h100,
    generate_trace,
    splitwise_hh,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def llama_h100_perf() -> AnalyticalPerformanceModel:
    """Calibrated performance model for Llama2-70B on DGX-H100."""
    return AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)


@pytest.fixture
def llama_a100_perf() -> AnalyticalPerformanceModel:
    """Calibrated performance model for Llama2-70B on DGX-A100."""
    return AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)


@pytest.fixture
def small_trace() -> Trace:
    """A small deterministic conversation trace (~60 requests, 20 seconds)."""
    return generate_trace("conversation", rate_rps=3.0, duration_s=20.0, seed=7)


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-built 4-request trace for scheduler-level assertions."""
    return Trace.from_records(
        [
            (0.0, 512, 8),
            (0.1, 1024, 4),
            (0.5, 256, 16),
            (1.0, 2048, 2),
        ],
        name="tiny",
    )


@pytest.fixture
def make_request():
    """Factory for standalone Request objects."""

    def _make(
        request_id: int = 0,
        arrival: float = 0.0,
        prompt: int = 128,
        output: int = 4,
        tenant: str = "default",
    ) -> Request:
        return Request(
            descriptor=RequestDescriptor(
                request_id=request_id,
                arrival_time_s=arrival,
                prompt_tokens=prompt,
                output_tokens=output,
                tenant=tenant,
            )
        )

    return _make


@pytest.fixture
def small_splitwise_design():
    """A 3-machine Splitwise-HH cluster for fast integration tests."""
    return splitwise_hh(num_prompt=2, num_token=1)


@pytest.fixture
def small_baseline_design():
    """A 2-machine Baseline-H100 cluster for fast integration tests."""
    return baseline_h100(2)
