"""Integration tests for the experiment runners (paper figures/tables).

Each test runs a reduced-scale version of an experiment and asserts the
qualitative result the paper reports.  The benchmark harness runs the same
functions at their default (larger) scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig3_token_distributions,
    fig4_batch_utilization,
    fig5_latency,
    fig6_throughput,
    fig7_memory,
    fig8_power,
    fig9_power_cap,
    fig12_design_space,
    fig14_transfer_latency,
    fig15_transfer_overhead,
    fig17_batch_occupancy,
    table1_hardware_comparison,
    table4_gpu_comparison,
)
from repro.experiments.cluster_eval import (
    PAPER_ISO_POWER_CONFIGS,
    batch_job_throughput_per_cost,
    fig16_latency_vs_load,
    scaled_design_suite,
)


class TestCharacterizationExperiments:
    def test_table1_ratios(self):
        table = table1_hardware_comparison()
        assert table["TFLOPs"]["ratio"] == pytest.approx(3.43, abs=0.01)
        assert table["HBM bandwidth (GBps)"]["ratio"] == pytest.approx(1.64, abs=0.01)
        assert table["Power (W)"]["ratio"] == pytest.approx(1.75, abs=0.01)

    def test_fig3_medians_match_paper(self):
        dists = fig3_token_distributions(sample_size=20000)
        assert dists["coding"]["prompt_p50"] == pytest.approx(1500, rel=0.08)
        assert 10 <= dists["coding"]["output_p50"] <= 17
        assert dists["conversation"]["prompt_p50"] == pytest.approx(1020, rel=0.10)
        assert dists["conversation"]["output_p50"] > dists["coding"]["output_p50"]

    def test_fig4_mixed_batching_underutilizes(self):
        """Insight II: most time is spent with few active tokens."""
        results = fig4_batch_utilization(duration_s=60.0)
        assert results["conversation"]["fraction_at_or_below_20_tokens"] > 0.4
        assert results["coding"]["fraction_at_1_token"] > 0.15

    def test_fig5_shapes(self):
        results = fig5_latency(num_requests=100)
        llama_ttft = results["ttft"]["Llama2-70B"]
        assert llama_ttft[8192] > llama_ttft[1024] > llama_ttft[128]
        llama_tbt = results["tbt"]["Llama2-70B"]
        assert llama_tbt[64] < 3 * llama_tbt[1]
        assert results["e2e"]["conversation-Llama2-70B"]["p99"] > results["e2e"]["conversation-Llama2-70B"]["p50"]

    def test_fig5_e2e_dominated_by_token_phase_for_conversation(self):
        """Insight III."""
        results = fig5_latency(num_requests=200)
        e2e_p50 = results["e2e"]["conversation-Llama2-70B"]["p50"]
        ttft_at_median_prompt = results["ttft"]["Llama2-70B"][1024] / 1e3
        assert e2e_p50 > 3 * ttft_at_median_prompt

    def test_fig6_throughput_shapes(self):
        results = fig6_throughput()
        prompt = results["prompt"]["Llama2-70B"]
        token = results["token"]["Llama2-70B"]
        assert max(prompt, key=prompt.get) in (2048, 4096)
        assert token[64] > token[1]

    def test_fig7_memory_grows_with_tokens_and_hits_capacity(self):
        results = fig7_memory()
        memory = results["memory_gb"]
        values = [memory[k] for k in sorted(memory)]
        assert values == sorted(values)
        assert results["max_kv_tokens"][0] < 120000  # BLOOM KV capacity is limited

    def test_fig8_power_shapes(self):
        results = fig8_power()
        prompt = results["prompt"]
        token = results["token"]
        assert prompt[8192] > prompt[512]
        assert max(token.values()) - min(token.values()) < 0.1
        assert prompt[8192] > max(token.values())

    def test_fig9_power_cap_asymmetry(self):
        results = fig9_power_cap()
        ttft = results["ttft_ms"]
        tbt = results["tbt_ms"]
        assert ttft[200] > 2.5 * ttft[700]
        assert tbt[350] == pytest.approx(tbt[700], rel=0.05)

    def test_table4_ratios_match_paper(self):
        table = table4_gpu_comparison(num_requests=200)
        for workload in ("coding", "conversation"):
            ratios = table[workload]["ratio_h100_over_a100"]
            assert 0.45 <= ratios["ttft_ms"] <= 0.60
            assert 0.6 <= ratios["tbt_ms"] <= 0.8
            assert 0.5 <= ratios["e2e_ms"] <= 0.8
            assert ratios["cost_usd"] > 1.0  # H100 costs more per request
            assert ratios["energy_wh"] >= 0.9


class TestTransferExperiments:
    def test_fig14_shapes(self):
        results = fig14_transfer_latency()
        assert results["A100-Serialized"][2048] > results["A100-Serialized"][512]
        assert results["A100-Serialized"][2048] > results["H100-Serialized"][2048]
        assert results["H100-Per-Layer"][2048] < results["H100-Serialized"][2048]
        assert results["A100-Per-Layer"][2048] < 12.0  # ms, small constant residue

    def test_fig15_overheads_match_paper_scale(self):
        results = fig15_transfer_overhead()
        assert results["e2e_overhead_per_layer"][2048] < 0.05
        assert results["e2e_overhead_serialized"][2048] < 0.10
        assert results["second_token_overhead_per_layer"][2048] < results["second_token_overhead_serialized"][2048]


class TestClusterExperiments:
    def test_scaled_suite_preserves_paper_proportions(self):
        suite = scaled_design_suite("conversation", scale=0.2)
        assert set(suite) == set(PAPER_ISO_POWER_CONFIGS["conversation"])
        assert suite["Splitwise-HH"].num_prompt == 5
        assert suite["Splitwise-HH"].num_token == 3
        assert not suite["Baseline-H100"].split

    def test_scaled_suite_is_roughly_iso_power(self):
        suite = scaled_design_suite("conversation", scale=0.2)
        powers = [design.provisioned_power_kw for design in suite.values()]
        assert max(powers) / min(powers) < 1.35

    def test_fig16_splitwise_improves_ttft_under_load(self):
        suite = scaled_design_suite("conversation", scale=0.15, families=("Baseline-H100", "Splitwise-HH"))
        results = fig16_latency_vs_load(suite, rates=(10.0,), duration_s=30.0)
        baseline = results["Baseline-H100"][10.0]
        splitwise = results["Splitwise-HH"][10.0]
        assert splitwise["ttft_p90"] < baseline["ttft_p90"]
        assert splitwise["completion_rate"] == 1.0

    def test_fig17_token_pool_batches_better_than_baseline(self):
        results = fig17_batch_occupancy(scale=0.15, low_rate=10.0, high_rate=16.0, duration_s=30.0)
        low = results["low"]
        assert low["splitwise_token_frac_le_15"] <= low["baseline_h100_frac_le_15"]

    def test_batch_job_throughput_per_cost_favours_a100(self):
        """§VI-E: A100-based clusters win on RPS/$ for batch jobs."""
        results = batch_job_throughput_per_cost(scale=0.12, stress_rate=25.0, duration_s=30.0)
        assert results["Baseline-A100"]["rps_per_dollar_hour"] >= results["Baseline-H100"]["rps_per_dollar_hour"]

    def test_fig12_design_space_finds_cost_optimum(self):
        results = fig12_design_space(
            target_rps=6.0,
            prompt_counts=(2, 3),
            token_counts=(1,),
            trace_duration_s=25.0,
        )
        assert results["grid"]
        if results["optimal"] is not None:
            optimal = results["grid"][results["optimal"]]
            assert optimal["feasible"]
            feasible_costs = [v["cost_per_hour"] for v in results["grid"].values() if v["feasible"]]
            assert optimal["cost_per_hour"] == min(feasible_costs)


class TestFleetSweep:
    def test_sweep_compares_static_and_burst_per_policy(self):
        from repro.experiments.fleet_sweep import fleet_sweep

        results = fleet_sweep(
            presets=("mixed-tenant",),
            policies=("least-outstanding",),
            clusters=2,
            burst_clusters=1,
            scale=0.5,
        )
        entry = results["mixed-tenant"]["least-outstanding"]
        for label in ("static", "burst"):
            run = entry[label]
            assert run["completion_rate"] == 1.0
            tenants = run["tenant_slo"]["tenants"]
            assert sorted(tenants) == ["coding", "conversation"]
            for tenant_entry in tenants.values():
                assert tenant_entry["samples"]["ttft"] > 0
        assert entry["machine_hours_saved"] == pytest.approx(
            entry["static"]["machine_hours"] - entry["burst"]["machine_hours"], abs=1e-3
        )
        # The burst fleet's own provision-for-peak bound (same clusters, its
        # own window) must exceed what bursting actually consumed.
        assert entry["burst"]["static_machine_hours"] >= entry["burst"]["machine_hours"]
