"""Integration tests asserting the paper's qualitative findings.

These are the "does the reproduction reproduce" tests: they encode the
directional claims of the evaluation (Splitwise improves TTFT and sustains
more load than mixed-batching baselines, HHcap saves power, HA saves cost,
transfer overheads stay small) at a reduced cluster scale.
"""

from __future__ import annotations

import pytest

from repro import (
    DGX_A100,
    LLAMA2_70B,
    AnalyticalPerformanceModel,
    baseline_h100,
    generate_trace,
    simulate_design,
    splitwise_ha,
    splitwise_hh,
    splitwise_hhcap,
)
from repro.core.provisioning import Provisioner


@pytest.fixture(scope="module")
def loaded_trace():
    """A conversation trace heavy enough to make batching decisions matter."""
    return generate_trace("conversation", rate_rps=8.0, duration_s=45.0, seed=9)


@pytest.fixture(scope="module")
def baseline_result(loaded_trace):
    return simulate_design(baseline_h100(4), loaded_trace)


@pytest.fixture(scope="module")
def splitwise_result(loaded_trace):
    # Same machine count and type as the baseline, split 2 prompt + 2 token.
    return simulate_design(splitwise_hh(2, 2), loaded_trace)


class TestPhaseSplittingBenefits:
    def test_splitwise_improves_p90_ttft(self, baseline_result, splitwise_result):
        """Dedicated prompt machines remove prompt/token interference on TTFT."""
        assert splitwise_result.request_metrics().ttft.p90 < baseline_result.request_metrics().ttft.p90

    def test_splitwise_improves_tail_tbt(self, baseline_result, splitwise_result):
        """Token machines never run huge mixed prompts, so tail TBT shrinks."""
        assert splitwise_result.request_metrics().tbt.p90 <= baseline_result.request_metrics().tbt.p90 * 1.05

    def test_both_complete_all_requests(self, baseline_result, splitwise_result):
        assert baseline_result.completion_rate == 1.0
        assert splitwise_result.completion_rate == 1.0

    def test_splitwise_token_machines_batch_more(self, splitwise_result, baseline_result):
        """Fig. 17: Splitwise token machines spend less time at tiny batches."""
        from repro.core.machine import MachineRole

        token_occupancy = splitwise_result.occupancy_by_home_role(MachineRole.TOKEN)
        baseline_occupancy = baseline_result.occupancy_by_home_role(MachineRole.MIXED)
        assert token_occupancy.fraction_at_or_below(4) <= baseline_occupancy.fraction_at_or_below(4)


class TestSustainableThroughput:
    @pytest.fixture(scope="class")
    def provisioner(self):
        return Provisioner(workload="conversation", trace_duration_s=30.0, seed=17)

    def test_splitwise_hh_sustains_at_least_baseline_load(self, provisioner):
        """Iso-count comparison: 4 split machines sustain at least the load 4
        mixed machines sustain under the same SLO."""
        rates = (4.0, 8.0, 12.0, 16.0, 20.0)
        baseline_rate, _ = provisioner.max_throughput(baseline_h100(4), rates)
        splitwise_rate, _ = provisioner.max_throughput(splitwise_hh(2, 2), rates)
        assert splitwise_rate >= baseline_rate

    def test_hhcap_matches_hh_throughput_with_less_power(self, provisioner):
        """Fig. 19a: capping token machines saves power at equal throughput."""
        rates = (4.0, 8.0)
        hh = splitwise_hh(2, 2)
        hhcap = splitwise_hhcap(2, 2)
        hh_rate, _ = provisioner.max_throughput(hh, rates)
        hhcap_rate, _ = provisioner.max_throughput(hhcap, rates)
        assert hhcap_rate >= hh_rate
        assert hhcap.provisioned_power_kw < hh.provisioned_power_kw

    def test_ha_cheaper_than_hh_at_same_machine_count(self):
        """Fig. 18: substituting A100 token machines cuts cost."""
        assert splitwise_ha(2, 2).cost_per_hour < splitwise_hh(2, 2).cost_per_hour


class TestTransferOverheadSmall:
    def test_e2e_overhead_of_splitting_is_small_at_low_load(self):
        """Fig. 15: the KV-cache transfer adds ~1% E2E at low load."""
        trace = generate_trace("coding", rate_rps=1.0, duration_s=40.0, seed=3)
        single = simulate_design(baseline_h100(1), trace)
        split = simulate_design(splitwise_hh(1, 1), trace)
        single_e2e = single.request_metrics().e2e.p50
        split_e2e = split.request_metrics().e2e.p50
        assert split_e2e <= single_e2e * 1.10

    def test_slo_still_met_with_transfers(self):
        trace = generate_trace("coding", rate_rps=2.0, duration_s=30.0, seed=3)
        result = simulate_design(splitwise_hh(1, 1), trace)
        reference = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
        assert result.slo_report(reference_model=reference).satisfied
