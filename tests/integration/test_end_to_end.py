"""Integration tests: full traces through full clusters.

These exercise the whole stack — trace generation, routing, batching,
KV-cache transfer, and metrics — and assert cluster-level invariants that no
single module can guarantee on its own.
"""

from __future__ import annotations

import pytest

from repro import (
    LLAMA2_70B,
    MachineRole,
    RequestPhase,
    baseline_a100,
    baseline_h100,
    generate_trace,
    simulate_design,
    splitwise_aa,
    splitwise_ha,
    splitwise_hh,
    splitwise_hhcap,
)


@pytest.fixture(scope="module")
def conversation_trace():
    return generate_trace("conversation", rate_rps=4.0, duration_s=30.0, seed=42)


@pytest.fixture(scope="module")
def coding_trace():
    return generate_trace("coding", rate_rps=4.0, duration_s=30.0, seed=42)


ALL_DESIGNS = [
    baseline_a100(3),
    baseline_h100(2),
    splitwise_aa(2, 2),
    splitwise_hh(2, 1),
    splitwise_ha(2, 2),
    splitwise_hhcap(2, 1),
]


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: d.label)
class TestEveryDesignRunsEveryTrace:
    def test_conversation_trace_completes(self, design, conversation_trace):
        result = simulate_design(design, conversation_trace)
        assert result.completion_rate == 1.0
        metrics = result.request_metrics()
        assert metrics.ttft.p50 > 0
        assert metrics.e2e.p99 < 120  # nothing pathological

    def test_coding_trace_completes(self, design, coding_trace):
        result = simulate_design(design, coding_trace)
        assert result.completion_rate == 1.0


class TestRequestLevelInvariants:
    def test_token_counts_and_timestamps_consistent(self, conversation_trace):
        result = simulate_design(splitwise_hh(2, 1), conversation_trace)
        for request in result.completed_requests:
            assert request.generated_tokens == request.output_tokens
            assert len(request.token_times) == request.output_tokens
            assert request.phase is RequestPhase.COMPLETED
            # Timestamps must be causally ordered.
            assert request.prompt_start_time >= request.arrival_time
            assert request.first_token_time >= request.prompt_start_time
            assert request.completion_time >= request.first_token_time
            assert list(request.token_times) == sorted(request.token_times)

    def test_ttft_at_least_uncontended_prompt_latency(self, conversation_trace):
        from repro import AnalyticalPerformanceModel, DGX_H100

        perf = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
        result = simulate_design(splitwise_hh(2, 1), conversation_trace)
        for request in result.completed_requests:
            assert request.ttft >= perf.prompt_latency(request.prompt_tokens) * 0.999

    def test_split_requests_record_machines_of_each_pool(self, conversation_trace):
        result = simulate_design(splitwise_hh(2, 1), conversation_trace)
        multi_token = [r for r in result.completed_requests if r.output_tokens > 1]
        assert multi_token
        for request in multi_token:
            assert request.prompt_machine.startswith(("prompt", "token"))
            # At least some requests must have transferred between machines.
        transferred = [r for r in multi_token if r.kv_transfer_end is not None]
        assert transferred

    def test_baseline_requests_never_transfer(self, conversation_trace):
        result = simulate_design(baseline_h100(2), conversation_trace)
        assert all(r.kv_transfer_start is None for r in result.completed_requests)


class TestConservation:
    def test_every_submitted_request_is_accounted_for(self, conversation_trace):
        result = simulate_design(splitwise_ha(2, 2), conversation_trace)
        assert len(result.requests) == len(conversation_trace)
        assert len(result.completed_requests) + len(list(result.scheduler.outstanding_requests())) == len(
            conversation_trace
        )

    def test_tokens_generated_matches_trace_totals(self, coding_trace):
        result = simulate_design(splitwise_hh(2, 1), coding_trace)
        generated = sum(r.generated_tokens for r in result.completed_requests)
        expected = sum(r.output_tokens for r in coding_trace)
        assert generated == expected

    def test_machine_busy_time_never_exceeds_duration(self, conversation_trace):
        result = simulate_design(splitwise_aa(2, 2), conversation_trace)
        for machine in result.scheduler.machines:
            stats = result.metrics.machine_stats(machine.name)
            assert stats.busy_time_s <= result.duration_s + 1e-6

    def test_energy_bounded_by_power_envelope(self, conversation_trace):
        result = simulate_design(splitwise_hh(2, 1), conversation_trace)
        max_possible_wh = (
            result.design.num_machines
            * max(result.design.prompt_machine.gpu_tdp_watts, result.design.token_machine.gpu_tdp_watts)
            * result.duration_s
            / 3600.0
        )
        assert 0 < result.total_energy_wh() <= max_possible_wh


class TestPoolDynamics:
    def test_pools_restore_after_drain(self, conversation_trace):
        result = simulate_design(splitwise_hh(2, 1), conversation_trace)
        sizes = result.scheduler.pool_sizes()
        assert sizes["mixed"] == 0
        assert sizes["prompt"] == 2
        assert sizes["token"] == 1

    def test_overload_exercises_mixed_pool(self):
        burst = generate_trace("coding", rate_rps=20.0, duration_s=10.0, seed=5)
        result = simulate_design(splitwise_hh(1, 1), burst)
        assert result.scheduler.pool_switches > 0
        assert result.completion_rate == 1.0
