"""Property-based tests for the performance, power, memory and transfer models."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kv_transfer import KVTransferModel, TransferMode
from repro.hardware.interconnect import INFINIBAND_200, INFINIBAND_400
from repro.hardware.machine import DGX_A100, DGX_H100
from repro.models.llm import BLOOM_176B, LLAMA2_70B
from repro.models.memory import MemoryModel
from repro.models.performance import AnalyticalPerformanceModel, ProfiledPerformanceModel
from repro.models.power import PowerModel

_PERF_H100 = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100)
_PERF_A100 = AnalyticalPerformanceModel(LLAMA2_70B, DGX_A100)
_PROFILED = ProfiledPerformanceModel.from_model(_PERF_H100)
_POWER = PowerModel(LLAMA2_70B, DGX_H100)
_MEMORY = MemoryModel(BLOOM_176B, DGX_H100)
_TRANSFER = KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_400)

prompt_tokens = st.integers(min_value=1, max_value=16384)
batch_sizes = st.integers(min_value=1, max_value=128)
context_tokens = st.integers(min_value=0, max_value=500_000)


class TestPerformanceModelProperties:
    @given(prompt_tokens)
    def test_prompt_latency_positive_and_finite(self, tokens):
        latency = _PERF_H100.prompt_latency(tokens)
        assert 0 < latency < 60

    @given(prompt_tokens, prompt_tokens)
    def test_prompt_latency_monotone_in_tokens(self, a, b):
        small, large = sorted((a, b))
        assert _PERF_H100.prompt_latency(small) <= _PERF_H100.prompt_latency(large) + 1e-12

    @given(batch_sizes, batch_sizes)
    def test_token_latency_monotone_in_batch(self, a, b):
        small, large = sorted((a, b))
        assert _PERF_H100.token_latency(small, small * 512) <= _PERF_H100.token_latency(large, large * 512) + 1e-12

    @given(batch_sizes, context_tokens, context_tokens)
    def test_token_latency_monotone_in_context(self, batch, ctx_a, ctx_b):
        small, large = sorted((ctx_a, ctx_b))
        assert _PERF_H100.token_latency(batch, small) <= _PERF_H100.token_latency(batch, large) + 1e-12

    @given(prompt_tokens)
    def test_h100_always_faster_than_a100_for_prompts(self, tokens):
        assert _PERF_H100.prompt_latency(tokens) < _PERF_A100.prompt_latency(tokens)

    @given(batch_sizes)
    def test_batching_never_hurts_token_throughput(self, batch):
        single = _PERF_H100.token_throughput(1, 1024)
        batched = _PERF_H100.token_throughput(batch, batch * 1024)
        assert batched >= single * 0.99

    @given(prompt_tokens, st.integers(min_value=1, max_value=64))
    def test_e2e_at_least_ttft(self, tokens, outputs):
        assert _PERF_H100.e2e_latency(tokens, outputs) >= _PERF_H100.ttft(tokens)

    @given(st.integers(min_value=64, max_value=8192))
    @settings(max_examples=30)
    def test_profiled_model_tracks_analytical_model(self, tokens):
        # Within the profiling grid; extrapolation beyond it is linear by design.
        analytical = _PERF_H100.prompt_latency(tokens)
        profiled = _PROFILED.prompt_latency(tokens)
        assert abs(profiled - analytical) / analytical < 0.25


class TestPowerModelProperties:
    @given(st.integers(min_value=0, max_value=50_000))
    def test_prompt_power_fraction_bounded(self, tokens):
        fraction = _POWER.prompt_power_fraction(tokens)
        assert 0 < fraction <= 1.0

    @given(st.integers(min_value=0, max_value=256))
    def test_token_power_fraction_bounded(self, batch):
        fraction = _POWER.token_power_fraction(batch)
        assert 0 < fraction <= 1.0

    @given(st.integers(min_value=1, max_value=16384), st.floats(min_value=0.1, max_value=1.0))
    def test_cap_slowdowns_at_least_one(self, tokens, cap):
        assert _POWER.prompt_cap_slowdown(tokens, cap) >= 1.0
        assert _POWER.token_cap_slowdown(max(1, tokens // 256), cap) >= 1.0

    @given(st.integers(min_value=1, max_value=8192), st.floats(min_value=0.01, max_value=10.0))
    def test_energy_non_negative_and_linear(self, tokens, duration):
        energy = _POWER.prompt_energy_wh(tokens, duration)
        assert energy >= 0
        assert _POWER.prompt_energy_wh(tokens, 2 * duration) > energy


class TestMemoryModelProperties:
    @given(st.integers(min_value=0, max_value=200_000))
    def test_usage_monotone(self, tokens):
        assert _MEMORY.usage(tokens + 1).total_bytes >= _MEMORY.usage(tokens).total_bytes

    @given(st.integers(min_value=0, max_value=200_000))
    def test_fits_iff_within_budget(self, tokens):
        assert _MEMORY.fits(tokens) == (BLOOM_176B.kv_cache_bytes(tokens) <= _MEMORY.kv_budget_bytes)

    @given(st.integers(min_value=0, max_value=200_000))
    def test_remaining_plus_used_not_above_capacity(self, tokens):
        remaining = _MEMORY.remaining_tokens(tokens)
        assert remaining >= 0
        if _MEMORY.fits(tokens):
            assert tokens + remaining <= _MEMORY.max_kv_tokens + 1


class TestTransferModelProperties:
    @given(st.integers(min_value=1024, max_value=8192))
    def test_per_layer_hides_latency_for_large_prompts(self, tokens):
        prompt_latency = _PERF_H100.prompt_latency(tokens)
        serialized = _TRANSFER.serialized_latency(tokens)
        per_layer = _TRANSFER.per_layer_latency(tokens, prompt_latency)
        assert per_layer <= serialized + 1e-9

    @given(st.integers(min_value=1, max_value=8192))
    def test_chosen_mode_never_far_worse_than_alternative(self, tokens):
        """Splitwise picks serialized below the threshold exactly because the
        per-layer scheme's constant residue dominates for small prompts."""
        prompt_latency = _PERF_H100.prompt_latency(tokens)
        chosen = _TRANSFER.visible_latency(tokens, prompt_latency)
        alternative = min(
            _TRANSFER.serialized_latency(tokens),
            _TRANSFER.per_layer_latency(tokens, prompt_latency),
        )
        assert chosen <= alternative * 1.5 + 0.002

    @given(st.integers(min_value=1, max_value=8192), st.integers(min_value=1, max_value=8192))
    def test_serialized_monotone_in_tokens(self, a, b):
        small, large = sorted((a, b))
        assert _TRANSFER.serialized_latency(small) <= _TRANSFER.serialized_latency(large)

    @given(st.integers(min_value=1, max_value=8192))
    def test_slower_link_never_faster(self, tokens):
        slow = KVTransferModel(model=LLAMA2_70B, link=INFINIBAND_200)
        assert slow.serialized_latency(tokens) >= _TRANSFER.serialized_latency(tokens)

    @given(st.integers(min_value=1, max_value=8192))
    def test_visible_latency_positive(self, tokens):
        assert _TRANSFER.visible_latency(tokens, _PERF_H100.prompt_latency(tokens)) > 0
