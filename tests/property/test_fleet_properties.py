"""Property tests for the fleet layer.

The fleet router distributes one request stream over several clusters; these
tests pin the invariants that make that safe:

* **Census conservation** — no request is lost or duplicated across
  clusters, under every routing policy, with bursting, per-cluster
  autoscaling, and machine failures in play.
* **Seed determinism** — identical seeds produce bit-identical timelines
  (request timestamps, provisioning actions, routing counts).
* **Fast-forward parity** — decode fast-forwarding on/off produces exactly
  the same fleet results; router and provisioner decisions read only
  signals that coalescing keeps exact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autoscaler import AutoscalerConfig
from repro.core.designs import splitwise_hh
from repro.fleet import FleetProvisionerConfig, FleetSimulation, ROUTER_POLICIES
from repro.workload.scenarios import get_scenario


def _mixed_tenant_trace(seed, scale=1.0):
    return get_scenario("mixed-tenant").build_trace(seed=seed, scale=scale)


def _run_fleet(trace, policy="slo-feedback", fast_forward=None, burst=True, autoscaler=None):
    kwargs = {}
    if burst:
        kwargs["burst_clusters"] = 1
        kwargs["provisioner"] = FleetProvisionerConfig()
    fleet = FleetSimulation(
        splitwise_hh(2, 1),
        num_clusters=2,
        router=policy,
        fast_forward=fast_forward,
        autoscaler=autoscaler,
        **kwargs,
    )
    return fleet.run(trace)


def _fingerprint(result):
    """Everything observable about a fleet run, for bit-identity checks."""
    per_request = [
        (
            r.request_id,
            r.tenant,
            r.prompt_machine,
            r.token_machine,
            r.prompt_start_time,
            r.first_token_time,
            r.completion_time,
            tuple(r.token_times),
            r.restarts,
        )
        for r in result.requests
    ]
    timeline = (
        [(e.time_s, e.cluster, e.action) for e in result.provisioner.timeline]
        if result.provisioner is not None
        else []
    )
    return (per_request, result.duration_s, result.requests_by_cluster(), timeline)


class TestFleetCensus:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_no_request_lost_or_duplicated(self, seed):
        trace = _mixed_tenant_trace(seed, scale=0.5)
        result = _run_fleet(trace)
        assert result.completion_rate == 1.0
        routed_ids = [r.request_id for c in result.clusters for r in c.requests]
        assert sorted(routed_ids) == [r.request_id for r in result.requests]
        completed = [r.request_id for c in result.clusters for r in c.requests if r.is_complete]
        assert len(completed) == len(set(completed)) == len(trace)

    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_census_conserved_under_every_policy_with_failures(self, policy):
        trace = _mixed_tenant_trace(7, scale=0.5)
        fleet = FleetSimulation(splitwise_hh(2, 1), num_clusters=2, router=policy)
        result = fleet.run(trace, failures=((20.0, "cluster-0/prompt-0"),))
        assert result.completion_rate == 1.0
        routed_ids = [r.request_id for c in result.clusters for r in c.requests]
        assert sorted(routed_ids) == [r.request_id for r in result.requests]

    def test_census_conserved_with_autoscaler_and_provisioner(self):
        trace = _mixed_tenant_trace(3, scale=0.5)
        result = _run_fleet(
            trace, autoscaler=AutoscalerConfig(min_prompt_machines=1, min_token_machines=1)
        )
        assert result.completion_rate == 1.0
        routed_ids = [r.request_id for c in result.clusters for r in c.requests]
        assert sorted(routed_ids) == [r.request_id for r in result.requests]


class TestFleetDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=3, deadline=None)
    def test_identical_seeds_identical_timelines(self, seed):
        trace = _mixed_tenant_trace(seed, scale=0.5)
        first = _run_fleet(trace)
        second = _run_fleet(trace)
        assert _fingerprint(first) == _fingerprint(second)

    def test_different_seeds_differ(self):
        first = _run_fleet(_mixed_tenant_trace(0, scale=0.5))
        second = _run_fleet(_mixed_tenant_trace(1, scale=0.5))
        assert _fingerprint(first) != _fingerprint(second)


class TestFleetFastForwardParity:
    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_bit_parity_across_policies(self, policy):
        trace = _mixed_tenant_trace(5, scale=0.5)
        on = _run_fleet(trace, policy=policy, fast_forward=True)
        off = _run_fleet(trace, policy=policy, fast_forward=False)
        assert _fingerprint(on) == _fingerprint(off)

    def test_bit_parity_with_autoscaler_and_provisioner(self):
        trace = _mixed_tenant_trace(9, scale=0.5)
        autoscaler = AutoscalerConfig()
        on = _run_fleet(trace, fast_forward=True, autoscaler=autoscaler)
        off = _run_fleet(trace, fast_forward=False, autoscaler=autoscaler)
        assert _fingerprint(on) == _fingerprint(off)
