"""Sanitized runs are bit-identical to unsanitized runs.

The :class:`~repro.analysis.sanitizer.RunSanitizer` only observes — it draws
no randomness, schedules nothing, and never perturbs event order.  These
tests pin that contract on the heaviest workload in the repo (the
failure-storm chaos preset: machine failures, retries with jittered backoff,
hedging, admission control) by running the same fleet twice, once armed and
once not, and comparing every observable output.
"""

from __future__ import annotations

import json
import os
from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fleet_sweep import fleet_run_summary, prepare_fleet_run
from repro.workload.scenarios import get_scenario


def _storm_run(seed: int, sanitize: bool):
    """One failure-storm fleet run; returns (result, fleet)."""
    env = {"REPRO_SANITIZE": "1"} if sanitize else {}
    with mock.patch.dict(os.environ, env, clear=False):
        if not sanitize:
            os.environ.pop("REPRO_SANITIZE", None)
        fleet, trace, failures = prepare_fleet_run(
            get_scenario("failure-storm"),
            clusters=2,
            burst_clusters=1,
            seed=seed,
            scale=0.2,
            chaos="failure-storm",
        )
        result = fleet.run(trace, failures=failures)
    return result, fleet


def _fingerprint(result) -> str:
    """Canonical serialization of everything a run reports."""
    per_request = [
        (
            r.request_id,
            r.tenant,
            r.prompt_machine,
            r.token_machine,
            r.prompt_start_time,
            r.first_token_time,
            r.completion_time,
            tuple(r.token_times),
            r.restarts,
        )
        for r in result.requests
    ]
    summary = fleet_run_summary(result)
    return json.dumps(
        {"requests": per_request, "summary": summary, "duration": result.duration_s},
        sort_keys=True,
        default=str,
    )


class TestSanitizerParity:
    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=2, deadline=None)
    def test_failure_storm_bit_identical(self, seed):
        plain_result, _ = _storm_run(seed, sanitize=False)
        sanitized_result, fleet = _storm_run(seed, sanitize=True)
        assert _fingerprint(plain_result) == _fingerprint(sanitized_result)
        # The sanitized leg really was sanitized, not silently unarmed.
        assert fleet.engine.sanitizer is not None

    def test_sanitizer_observed_the_run(self):
        _, fleet = _storm_run(0, sanitize=True)
        snap = fleet.engine.sanitizer.snapshot()
        assert snap["events_checked"] > 0
        assert snap["closures_verified"] >= 1
        # All four named RNG seams registered with their owning phase.
        assert set(snap["streams"]) >= {"trace", "fault", "retry", "routing"}
        # The storm exercises jittered retry backoff, so the run-phase
        # retry stream must have been drawn from inside event callbacks.
        assert snap["streams"]["retry"] > 0

    def test_unsanitized_run_pays_nothing(self):
        _, fleet = _storm_run(0, sanitize=False)
        assert fleet.engine.sanitizer is None
