"""Sharded fleet execution is bit-identical to the serial engine.

The shard scheduler (:mod:`repro.simulation.sharding`) partitions a
decomposable fleet into per-cluster-group engine shards that advance
independently between bounded-lag barriers; everything observable about the
run must nevertheless match the serial engine byte for byte.  These tests
pin that contract:

* **Worker-count invariance** — serial, ``parallel=1`` (in-process shard
  execution, exercising the barrier logic without OS workers), and
  ``parallel=2/4`` (real ``multiprocessing`` workers) produce identical
  fingerprints: per-request timelines, tenant SLO reports, per-cluster
  routing counts, and the run duration.
* **Epoch-length invariance** — the barrier spacing is a pure performance
  knob: any ``epoch_s`` (including one epoch for the whole trace) yields
  the same bytes.
* **Shard-boundary edge cases** — failure injections landing on different
  shards in the same epoch, and an outage pair straddling an epoch
  barrier, neither reorder nor lose anything; the census closes exactly.
* **Coupled-configuration fallback** — fleets whose layers genuinely read
  fleet-wide state (chaos + retries/hedges, the cloud-burst provisioner,
  the observability plane) refuse to shard: ``parallel=N`` falls back to
  the serial engine with the blocking couplings recorded as provenance,
  and the run stays byte-identical to one that never asked for workers.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import splitwise_hh
from repro.experiments.fleet_sweep import fleet_run_summary, prepare_fleet_run
from repro.fleet import FleetSimulation
from repro.workload.scenarios import get_scenario

CLUSTERS = 4


def _mixed_trace(seed, scale=0.5):
    return get_scenario("mixed-tenant").build_trace(seed=seed, scale=scale)


def _fleet(parallel=None, epoch_s=None, clusters=CLUSTERS):
    """A decomposable fleet: static weighted-rr, no coupled layers."""
    return FleetSimulation(
        splitwise_hh(2, 1),
        num_clusters=clusters,
        router="weighted-rr",
        parallel=parallel,
        epoch_s=epoch_s,
    )


def _fingerprint(result):
    """Canonical serialization of everything a fleet run reports."""
    per_request = [
        (
            r.request_id,
            r.tenant,
            r.prompt_machine,
            r.token_machine,
            r.prompt_start_time,
            r.first_token_time,
            r.completion_time,
            tuple(r.token_times),
            r.restarts,
        )
        for r in result.requests
    ]
    # fleet_run_summary embeds the tenant SLO report, per-cluster routing
    # counts, machine-hours, and (when present) provisioner/fault/lifecycle
    # snapshots — the same surface the CLI serializes.
    summary = fleet_run_summary(result)
    return json.dumps(
        {"requests": per_request, "summary": summary, "duration": result.duration_s},
        sort_keys=True,
        default=str,
    )


def _assert_census_closed(result, trace):
    """completed + shed + expired == submitted, with no duplicates.

    Shed/expired requests never reach (or are withdrawn from) a cluster, so
    the routed population must equal exactly the served one.
    """
    assert (
        len(result.completed_requests) + result.requests_shed + result.requests_expired
        == len(trace)
    )
    served = [r for r in result.requests if not r.shed and not r.expired]
    routed_ids = sorted(r.request_id for c in result.clusters for r in c.requests)
    assert routed_ids == sorted(r.request_id for r in served)


class TestWorkerCountInvariance:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=3, deadline=None)
    def test_bit_parity_across_worker_counts(self, seed):
        trace = _mixed_trace(seed)
        serial = _fleet().run(trace)
        reference = _fingerprint(serial)
        _assert_census_closed(serial, trace)
        for workers in (1, 2, 4):
            fleet = _fleet(parallel=workers)
            result = fleet.run(trace)
            assert _fingerprint(result) == reference, f"parallel={workers} diverged"
            info = fleet.parallel_info
            assert info is not None and info["mode"] == "parallel"
            assert info["shards"] == min(workers, CLUSTERS)
            # N=1 runs the shard/barrier machinery in-process — no workers.
            assert info["workers"] == (0 if workers == 1 else min(workers, CLUSTERS))
            assert info["epochs"] > 0
            _assert_census_closed(result, trace)

    @given(epoch_s=st.sampled_from([0.5, 3.0, 17.0, 1e9]))
    @settings(max_examples=4, deadline=None)
    def test_epoch_length_is_a_pure_perf_knob(self, epoch_s):
        trace = _mixed_trace(7)
        reference = _fingerprint(_fleet().run(trace))
        fleet = _fleet(parallel=2, epoch_s=epoch_s)
        result = fleet.run(trace)
        assert _fingerprint(result) == reference
        # A whole-trace epoch degenerates to one barrier; it must still match.
        if epoch_s == 1e9:
            assert fleet.parallel_info["epochs"] <= 2

    def test_parallel_info_is_deterministic_provenance(self):
        """The recorded provenance carries no wall times and no host state."""
        trace = _mixed_trace(3)
        first = _fleet(parallel=2)
        first.run(trace)
        second = _fleet(parallel=2)
        second.run(trace)
        assert first.parallel_info == second.parallel_info


class TestShardBoundaryEdgeCases:
    # Round-robin assignment over 4 clusters and 2 shards puts cluster-0/2
    # on shard 0 and cluster-1/3 on shard 1 — the pairs below always span
    # two engines.

    @pytest.mark.parametrize("seed", [1, 13])
    def test_failures_on_different_shards_same_epoch(self, seed):
        # Fixed seeds chosen so the injections actually catch requests in
        # flight (restarts > 0) — the parity claim must not be vacuous.
        trace = _mixed_trace(seed, scale=1.0)
        failures = tuple(
            (time_s, f"cluster-{c}/prompt-0")
            for time_s in (5.0, 12.0, 20.0, 40.0)
            for c in (0, 1)
        )
        serial = _fleet().run(trace, failures=failures)
        result = _fleet(parallel=2, epoch_s=50.0).run(trace, failures=failures)
        assert _fingerprint(result) == _fingerprint(serial)
        _assert_census_closed(result, trace)
        assert any(r.restarts > 0 for r in result.requests)

    def test_outage_pair_spanning_epoch_boundary(self):
        """Failures at 4.9s and 5.1s straddle the 5s barrier on two shards."""
        trace = _mixed_trace(11)
        failures = (
            (4.9, "cluster-0/prompt-0"),
            (5.1, "cluster-1/prompt-0"),
        )
        serial = _fleet().run(trace, failures=failures)
        result = _fleet(parallel=2, epoch_s=5.0).run(trace, failures=failures)
        assert _fingerprint(result) == _fingerprint(serial)
        _assert_census_closed(result, trace)

    def test_failure_exactly_at_barrier_time(self):
        """An injection at exactly an epoch barrier fires once, on its shard."""
        trace = _mixed_trace(13)
        failures = ((10.0, "cluster-3/token-0"),)
        serial = _fleet().run(trace, failures=failures)
        result = _fleet(parallel=4, epoch_s=5.0).run(trace, failures=failures)
        assert _fingerprint(result) == _fingerprint(serial)
        _assert_census_closed(result, trace)


class TestCoupledConfigurationFallback:
    def _storm_pair(self, parallel, **overrides):
        """The same failure-storm fleet run twice: serial vs parallel-requested."""
        results = []
        fleets = []
        for requested in (None, parallel):
            fleet, trace, failures = prepare_fleet_run(
                get_scenario("failure-storm"),
                clusters=2,
                burst_clusters=1,
                seed=5,
                scale=0.2,
                chaos="failure-storm",
                parallel=requested,
                **overrides,
            )
            results.append(fleet.run(trace, failures=failures))
            fleets.append(fleet)
        return fleets, results, trace

    def test_chaos_with_retries_and_hedges_falls_back_bit_identical(self):
        """Cross-shard retry/hedge coupling: the lifecycle layer re-routes
        attempts across clusters, so the run must refuse to shard — and the
        fallback must be byte-identical to a run that never asked."""
        (plain, requested), (serial, parallel), trace = self._storm_pair(
            parallel=4, retry_override=2, hedge_override=True
        )
        assert _fingerprint(parallel) == _fingerprint(serial)
        _assert_census_closed(parallel, trace)
        assert plain.parallel_info is None
        info = requested.parallel_info
        assert info == {
            "requested": 4,
            "mode": "serial",
            "workers": 0,
            "shards": 1,
            "reasons": info["reasons"],
        }
        reasons = " ".join(info["reasons"])
        assert "lifecycle" in reasons
        assert "fault plane" in reasons

    def test_cloud_burst_provisioner_falls_back_bit_identical(self):
        """A cloud-burst activating a standby mid-run reacts to fleet-wide
        pressure — undecomposable; the provisioner timeline must match the
        serial run exactly (it is part of the fingerprint's summary)."""
        results = []
        fleets = []
        for requested in (None, 4):
            fleet, trace, failures = prepare_fleet_run(
                get_scenario("mixed-tenant"),
                clusters=2,
                burst_clusters=1,
                seed=9,
                scale=0.5,
                chaos="none",
                burst=True,
                parallel=requested,
            )
            results.append(fleet.run(trace, failures=failures))
            fleets.append(fleet)
        serial, parallel = results
        assert _fingerprint(parallel) == _fingerprint(serial)
        _assert_census_closed(parallel, trace)
        assert parallel.provisioner is not None
        reasons = " ".join(fleets[1].parallel_info["reasons"])
        assert "provisioner" in reasons

    def test_observed_run_falls_back_with_identical_span_census(self):
        from repro.obs import ObservabilityConfig

        trace = _mixed_trace(4)
        observed = _fleet()
        plain_plane = observed.observe(ObservabilityConfig(interval_s=0.5))
        plain_result = observed.run(trace)

        requested = _fleet(parallel=2)
        parallel_plane = requested.observe(ObservabilityConfig(interval_s=0.5))
        parallel_result = requested.run(trace)

        assert _fingerprint(parallel_result) == _fingerprint(plain_result)
        reasons = " ".join(requested.parallel_info["reasons"])
        assert "observability" in reasons
        assert parallel_plane.census() == plain_plane.census()
        assert sum(parallel_plane.census().values()) == len(parallel_result.requests)

    def test_single_cluster_fleet_falls_back(self):
        trace = _mixed_trace(2, scale=0.3)
        fleet = _fleet(parallel=2, clusters=1)
        fleet.run(trace)
        reasons = " ".join(fleet.parallel_info["reasons"])
        assert "fewer than two clusters" in reasons

    def test_feedback_router_policy_falls_back(self):
        trace = _mixed_trace(2, scale=0.3)
        fleet = FleetSimulation(
            splitwise_hh(2, 1), num_clusters=2, router="slo-feedback", parallel=2
        )
        serial = FleetSimulation(splitwise_hh(2, 1), num_clusters=2, router="slo-feedback")
        assert _fingerprint(fleet.run(trace)) == _fingerprint(serial.run(trace))
        reasons = " ".join(fleet.parallel_info["reasons"])
        assert "slo-feedback" in reasons
