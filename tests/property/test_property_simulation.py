"""Property-based tests for the engine, workload, batching and full simulations."""

from __future__ import annotations

from collections import deque

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching.policies import BatchConstraints, MixedContinuousBatching
from repro.core.cluster import simulate_design
from repro.core.designs import baseline_h100, splitwise_hh
from repro.metrics.collectors import BatchOccupancyTracker
from repro.metrics.summary import LatencySummary
from repro.simulation.engine import SimulationEngine
from repro.simulation.request import Request
from repro.workload.distributions import CODING_WORKLOAD, LogNormalTokenDistribution
from repro.workload.generator import generate_trace
from repro.workload.trace import RequestDescriptor, Trace


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=50))
    def test_events_always_fire_in_non_decreasing_time_order(self, times):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda t=t: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    )
    def test_run_until_never_executes_later_events(self, times, horizon):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.run(until=horizon)
        assert all(t <= horizon for t in fired)
        assert engine.now >= horizon or not [t for t in times if t > horizon]


class TestDistributionProperties:
    @given(
        st.floats(min_value=1.0, max_value=5000.0),
        st.floats(min_value=0.05, max_value=2.0),
        st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=50)
    def test_lognormal_samples_always_within_clip(self, median, sigma, seed):
        dist = LogNormalTokenDistribution(median_tokens=median, sigma=sigma, min_tokens=4, max_tokens=4096)
        samples = dist.sample(np.random.default_rng(seed), 200)
        assert samples.min() >= 4
        assert samples.max() <= 4096
        assert samples.dtype.kind == "i"

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=20)
    def test_workload_samples_are_positive_integers(self, seed):
        rng = np.random.default_rng(seed)
        prompts = CODING_WORKLOAD.prompt_tokens.sample(rng, 100)
        outputs = CODING_WORKLOAD.output_tokens.sample(rng, 100)
        assert (prompts >= 1).all()
        assert (outputs >= 1).all()


class TestTraceProperties:
    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=5.0, max_value=60.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25)
    def test_generated_traces_are_sorted_and_within_duration(self, rate, duration, seed):
        trace = generate_trace("coding", rate_rps=rate, duration_s=duration, seed=seed)
        arrivals = [r.arrival_time_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < duration for a in arrivals)
        assert all(r.prompt_tokens >= 1 and r.output_tokens >= 1 for r in trace)

    @given(st.floats(min_value=0.5, max_value=30.0), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20)
    def test_rescaling_preserves_request_count_and_order(self, target_rate, seed):
        trace = generate_trace("conversation", rate_rps=4.0, duration_s=30.0, seed=seed)
        rescaled = trace.scaled_to_rate(target_rate)
        assert len(rescaled) == len(trace)
        assert [r.prompt_tokens for r in rescaled] == [r.prompt_tokens for r in trace]
        assert abs(rescaled.request_rate_rps - target_rate) / target_rate < 1e-6


class TestBatchingProperties:
    @st.composite
    def _request_pool(draw):
        count = draw(st.integers(min_value=0, max_value=12))
        requests = []
        for i in range(count):
            prompt = draw(st.integers(min_value=1, max_value=4096))
            output = draw(st.integers(min_value=1, max_value=64))
            requests.append(
                Request(
                    descriptor=RequestDescriptor(
                        request_id=i, arrival_time_s=float(i), prompt_tokens=prompt, output_tokens=output
                    )
                )
            )
        return requests

    @given(_request_pool(), _request_pool(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=60)
    def test_mixed_plan_respects_constraints(self, prompts, decoding, max_batch):
        for request in decoding:
            request.start_prompt(0.0, "m")
            request.finish_prompt(0.1)
        decoding = [r for r in decoding if not r.is_complete]
        constraints = BatchConstraints(max_prompt_tokens=2048, max_batch_size=max_batch, max_kv_tokens=200_000)
        pending = deque(prompts)
        plan = MixedContinuousBatching().plan_iteration(pending, decoding, constraints)
        # Batch size limit holds.
        assert len(plan.prompt_requests) + len(plan.token_requests) <= max_batch
        # Prompt token budget holds unless a single oversized prompt was admitted.
        if len(plan.prompt_requests) > 1:
            assert plan.prompt_tokens <= constraints.max_prompt_tokens
        # KV budget holds for selected decode requests.
        assert plan.context_tokens <= constraints.max_kv_tokens
        # No request appears twice, and popped prompts are exactly the admitted ones.
        ids = [id(r) for r in plan.prompt_requests + plan.token_requests]
        assert len(ids) == len(set(ids))
        assert len(pending) + len(plan.prompt_requests) == len(prompts)


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=1e-6, max_value=1e3, allow_nan=False), min_size=1, max_size=200))
    def test_latency_summary_orderings(self, values):
        summary = LatencySummary.from_values(values)
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.max
        tolerance = 1e-9 * max(values)  # mean can differ from min/max by float rounding
        assert min(values) - tolerance <= summary.mean <= summary.max + tolerance

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=5000),
                              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)), max_size=50))
    def test_occupancy_cdf_monotone_and_ends_at_one(self, samples):
        tracker = BatchOccupancyTracker()
        for tokens, duration in samples:
            tracker.record(tokens, duration)
        cdf = tracker.cdf()
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions)
        if tracker.total_time > 0:
            assert abs(fractions[-1] - 1.0) < 1e-9


class TestSimulationProperties:
    @st.composite
    def _tiny_trace(draw):
        count = draw(st.integers(min_value=1, max_value=10))
        records = []
        t = 0.0
        for _ in range(count):
            t += draw(st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
            prompt = draw(st.integers(min_value=1, max_value=4096))
            output = draw(st.integers(min_value=1, max_value=40))
            records.append((t, prompt, output))
        return Trace.from_records(records, name="hypothesis")

    @given(_tiny_trace())
    @settings(max_examples=25, deadline=None)
    def test_split_cluster_always_completes_and_orders_timestamps(self, trace):
        result = simulate_design(splitwise_hh(1, 1), trace)
        assert result.completion_rate == 1.0
        for request in result.completed_requests:
            assert request.generated_tokens == request.output_tokens
            assert request.completion_time >= request.arrival_time
            assert list(request.token_times) == sorted(request.token_times)

    @given(_tiny_trace())
    @settings(max_examples=15, deadline=None)
    def test_baseline_cluster_always_completes(self, trace):
        result = simulate_design(baseline_h100(1), trace)
        assert result.completion_rate == 1.0
        generated = sum(r.generated_tokens for r in result.completed_requests)
        assert generated == sum(r.output_tokens for r in trace)
