"""Observed runs are bit-identical to unobserved runs.

The observability plane only watches: the span recorder annotates cold
paths, the metrics ticker is a bottom-priority recurring event that reads
gauges (including the lazily-committed fast-forward counters, whose
commit-on-observe path is already pinned bit-neutral), and neither draws
randomness nor schedules anything that outlives the census.  These tests
pin that contract on the failure-storm preset — the heaviest interleaving
in the repo (machine churn, outages, retries, hedging, admission control)
— by running the same fleet twice, once observed and once not, and
comparing every simulation output.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fleet_sweep import fleet_run_summary, prepare_fleet_run
from repro.workload.scenarios import get_scenario


def _storm_run(seed: int, observe: bool):
    """One failure-storm fleet run; returns (result, fleet, plane)."""
    fleet, trace, failures = prepare_fleet_run(
        get_scenario("failure-storm"),
        clusters=2,
        burst_clusters=1,
        seed=seed,
        scale=0.2,
        chaos="failure-storm",
    )
    plane = None
    if observe:
        from repro.obs import ObservabilityConfig

        plane = fleet.observe(ObservabilityConfig(interval_s=0.5))
    result = fleet.run(trace, failures=failures)
    return result, fleet, plane


def _fingerprint(result) -> str:
    """Canonical serialization of everything a run reports."""
    per_request = [
        (
            r.request_id,
            r.tenant,
            r.prompt_machine,
            r.token_machine,
            r.prompt_start_time,
            r.first_token_time,
            r.completion_time,
            tuple(r.token_times),
            r.restarts,
        )
        for r in result.requests
    ]
    summary = fleet_run_summary(result)
    return json.dumps(
        {"requests": per_request, "summary": summary, "duration": result.duration_s},
        sort_keys=True,
        default=str,
    )


class TestObservabilityParity:
    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=2, deadline=None)
    def test_failure_storm_bit_identical(self, seed):
        plain_result, _, _ = _storm_run(seed, observe=False)
        observed_result, _, plane = _storm_run(seed, observe=True)
        assert _fingerprint(plain_result) == _fingerprint(observed_result)
        # The observed leg really recorded (not silently unarmed), and the
        # trace closes the census of the run it watched.
        assert plane.span_count > 0
        assert plane.registry.num_samples > 0
        assert sum(plane.census().values()) == len(observed_result.requests)

    def test_unobserved_run_pays_nothing(self):
        _, fleet, plane = _storm_run(0, observe=False)
        assert plane is None
        assert fleet.obs is None
