"""Property tests for scenario generation and autoscaler invariants.

Scenario generation must be bit-deterministic under a seed and its rate
schedules must integrate to the expected request count; the autoscaler must
never lose or double-own a request across a re-purpose, must conserve the
machine census, and must leave decode fast-forwarding bit-exact (an
autoscaled run with coalescing on produces the same results as with it off).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.core.cluster import ClusterSimulation
from repro.core.designs import splitwise_hh
from repro.workload.distributions import get_workload
from repro.workload.generator import TraceGenerator
from repro.workload.scenarios import (
    SCENARIO_PRESETS,
    MarkovModulatedArrival,
    PiecewiseRateArrival,
    SinusoidalDiurnalArrival,
    get_scenario,
)


class TestScenarioDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_piecewise_bit_deterministic(self, seed):
        arrival = PiecewiseRateArrival(schedule=((8.0, 6.0), (8.0, 1.0), (8.0, 3.0)))
        first = arrival.arrival_times(np.random.default_rng(seed), 24.0)
        second = arrival.arrival_times(np.random.default_rng(seed), 24.0)
        assert first.tolist() == second.tolist()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_sinusoidal_and_mmpp_bit_deterministic(self, seed):
        diurnal = SinusoidalDiurnalArrival(base_rps=4.0, amplitude_rps=3.0, period_s=30.0)
        mmpp = MarkovModulatedArrival(
            base_rps=1.0, burst_rps=12.0, mean_base_dwell_s=10.0, mean_burst_dwell_s=3.0
        )
        for arrival in (diurnal, mmpp):
            first = arrival.arrival_times(np.random.default_rng(seed), 30.0)
            second = arrival.arrival_times(np.random.default_rng(seed), 30.0)
            assert first.tolist() == second.tolist()

    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=5, deadline=None)
    def test_preset_traces_bit_deterministic(self, seed):
        for name in SCENARIO_PRESETS:
            preset = get_scenario(name)
            first = preset.build_trace(seed=seed, scale=0.4)
            second = preset.build_trace(seed=seed, scale=0.4)
            assert [
                (r.request_id, r.arrival_time_s, r.prompt_tokens, r.output_tokens) for r in first
            ] == [(r.request_id, r.arrival_time_s, r.prompt_tokens, r.output_tokens) for r in second]


class TestRateIntegration:
    @given(
        rates=st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=0.05, max_value=20.0)),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_piecewise_counts_integrate_the_schedule(self, rates, seed):
        """Realized counts stay within Poisson noise of the schedule integral."""
        schedule = tuple((10.0, rate) for rate in rates)
        arrival = PiecewiseRateArrival(schedule=schedule)
        duration = 10.0 * len(rates)
        expected = arrival.expected_requests(duration)
        count = len(arrival.arrival_times(np.random.default_rng(seed), duration))
        # 6-sigma Poisson bound: essentially never trips for a correct
        # generator, always trips for a rate off by a constant factor.
        tolerance = 6.0 * np.sqrt(expected) + 6.0
        assert abs(count - expected) <= tolerance

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_sinusoidal_counts_integrate_the_rate(self, seed):
        arrival = SinusoidalDiurnalArrival(base_rps=6.0, amplitude_rps=5.0, period_s=40.0)
        duration = 120.0
        expected = arrival.expected_requests(duration)
        count = len(arrival.arrival_times(np.random.default_rng(seed), duration))
        assert abs(count - expected) <= 6.0 * np.sqrt(expected) + 6.0


def _scenario_trace(seed: int):
    """A busy/quiet/busy square wave that triggers both scale directions."""
    arrival = PiecewiseRateArrival(schedule=((20.0, 6.0), (30.0, 0.3), (20.0, 5.0)))
    generator = TraceGenerator(workload=get_workload("conversation"), arrival=arrival, seed=seed)
    return generator.generate(70.0)


class TestAutoscalerInvariants:
    @given(seed=st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=6, deadline=None)
    def test_no_request_lost_or_double_completed(self, seed):
        trace = _scenario_trace(seed)
        config = AutoscalerConfig(interval_s=3.0, hysteresis_ticks=1, cooldown_s=5.0)
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=config)
        result = simulation.run(trace)
        assert result.completion_rate == 1.0
        completed_ids = [r.request_id for r in simulation.scheduler.completed_requests]
        assert len(completed_ids) == len(set(completed_ids)) == len(trace)
        for request in result.requests:
            assert request.generated_tokens == request.output_tokens

    @given(seed=st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=4, deadline=None)
    def test_machine_census_conserved_with_failures(self, seed):
        trace = _scenario_trace(seed)
        config = AutoscalerConfig(interval_s=3.0, hysteresis_ticks=1, cooldown_s=5.0)
        simulation = ClusterSimulation(splitwise_hh(3, 2), autoscaler=config)
        result = simulation.run(trace, failures=[(25.0, "prompt-2")])
        sizes = simulation.scheduler.pool_sizes()
        assert sum(sizes.values()) + len(simulation.scheduler.failed_machines) == 5
        assert result.completion_rate == 1.0

    def test_autoscaled_runs_are_seed_reproducible(self):
        outputs = []
        for _ in range(2):
            simulation = ClusterSimulation(
                splitwise_hh(3, 2), autoscaler=AutoscalerConfig(interval_s=4.0, hysteresis_ticks=1)
            )
            result = simulation.run(_scenario_trace(seed=77))
            outputs.append(
                (
                    [(r.request_id, r.completion_time, tuple(r.token_times)) for r in result.requests],
                    [
                        (e.time_s, e.machine, e.action, e.from_pool, e.to_pool)
                        for e in result.autoscaler.timeline
                    ],
                    result.autoscaler.machine_hours_saved(),
                    result.duration_s,
                )
            )
        assert outputs[0] == outputs[1]


class TestFastForwardParityWithAutoscaling:
    """Coalescing must stay invisible when the autoscaler is churning pools."""

    def _run(self, trace, fast_forward):
        config = AutoscalerConfig(interval_s=3.0, hysteresis_ticks=1, cooldown_s=5.0)
        simulation = ClusterSimulation(
            splitwise_hh(3, 2), autoscaler=PoolAutoscaler(config), fast_forward=fast_forward
        )
        for machine in simulation.machines:
            machine.debug_accounting = True
        result = simulation.run(trace)
        return simulation, result

    def test_bit_parity_under_autoscaling(self):
        for seed in (7, 1234):
            trace = _scenario_trace(seed)
            sim_ref, res_ref = self._run(trace, fast_forward=False)
            sim_fast, res_fast = self._run(trace, fast_forward=True)
            assert res_ref.duration_s == res_fast.duration_s
            for ref, fast in zip(res_ref.requests, res_fast.requests):
                assert ref.request_id == fast.request_id
                assert ref.completion_time == fast.completion_time
                assert ref.first_token_time == fast.first_token_time
                assert list(ref.token_times) == list(fast.token_times)
                assert ref.phase is fast.phase
            assert sim_ref.metrics.total_energy_wh() == sim_fast.metrics.total_energy_wh()
            # The control loop itself must make identical decisions.
            ref_timeline = [
                (e.time_s, e.machine, e.action, e.from_pool, e.to_pool)
                for e in res_ref.autoscaler.timeline
            ]
            fast_timeline = [
                (e.time_s, e.machine, e.action, e.from_pool, e.to_pool)
                for e in res_fast.autoscaler.timeline
            ]
            assert ref_timeline == fast_timeline
            assert res_ref.autoscaler.machine_hours_saved() == res_fast.autoscaler.machine_hours_saved()
            assert sim_fast.engine.events_processed <= sim_ref.engine.events_processed
