"""Columnar token-recording parity across execution regimes.

The columnar token log (see ``docs/telemetry.md``) must be *invisible* in
simulation results: the segment-based recording materializes to bit-identical
values — per-request token times, completion metadata, SLO reports, and
per-machine stats — whether the simulator coalesces decode runs
(``fast_forward=True``, the macro-event + rotation regimes) or steps every
iteration exactly (``fast_forward=False``).  Since the per-iteration path
records through entirely different code than the coalesced paths, this parity
pins the recording itself, not just the scheduling.

These tests cover the recording edge cases named in the issue: zero-decode
(prompt-only) requests, single-token decodes, restart-after-preemption
(``Request.reset_for_restart`` via machine failures), and mixed prompt+token
rotation iterations.
"""

from __future__ import annotations

import math

import pytest

from repro.core.cluster import ClusterSimulation
from repro.core.designs import baseline_h100, splitwise_hh
from repro.experiments.fleet_sweep import prepare_fleet_run
from repro.experiments.scenarios import prepare_scenario_run
from repro.workload.generator import generate_trace
from repro.workload.scenarios import get_scenario
from repro.workload.trace import RequestDescriptor, Trace


def _assert_requests_identical(reference, columnar):
    assert len(reference) == len(columnar)
    for ref, col in zip(reference, columnar):
        assert ref.request_id == col.request_id
        assert ref.generated_tokens == col.generated_tokens
        assert list(ref.token_times) == list(col.token_times)
        assert ref.token_intervals == col.token_intervals
        assert ref.first_token_time == col.first_token_time
        assert ref.completion_time == col.completion_time
        assert ref.phase is col.phase
        assert ref.priority_boost == col.priority_boost
        assert ref.restarts == col.restarts


def _assert_machine_stats_identical(ref_metrics, col_metrics):
    assert ref_metrics.machines() == col_metrics.machines()
    for name in ref_metrics.machines():
        ref = ref_metrics.machine_stats(name)
        col = col_metrics.machine_stats(name)
        assert ref.iterations == col.iterations
        assert ref.busy_time_s == col.busy_time_s
        assert ref.energy_wh == col.energy_wh
        assert ref.prompt_tokens_processed == col.prompt_tokens_processed
        assert ref.tokens_generated == col.tokens_generated
        assert ref.occupancy.as_mapping() == col.occupancy.as_mapping()


def _assert_slo_reports_identical(ref_report, col_report):
    assert ref_report.samples == col_report.samples
    assert ref_report.limits == col_report.limits
    for key, value in ref_report.slowdowns.items():
        other = col_report.slowdowns[key]
        assert (math.isnan(value) and math.isnan(other)) or value == other
    assert ref_report.satisfied == col_report.satisfied


def _run_cluster_pair(design, trace, failures=()):
    """Run the trace per-iteration (reference) and coalesced (columnar fast paths)."""
    results = []
    for fast_forward in (False, True):
        simulation = ClusterSimulation(design, fast_forward=fast_forward)
        results.append((simulation, simulation.run(trace, failures=failures)))
    return results


def _assert_cluster_parity(design, trace, failures=()):
    (ref_sim, ref), (col_sim, col) = _run_cluster_pair(design, trace, failures=failures)
    assert ref.duration_s == col.duration_s
    _assert_requests_identical(ref.requests, col.requests)
    _assert_machine_stats_identical(ref_sim.metrics, col_sim.metrics)
    _assert_slo_reports_identical(ref.slo_report(), col.slo_report())


class TestEdgeCaseParity:
    def test_zero_decode_prompt_only_requests(self):
        """output_tokens == 1: the single token comes from the prompt phase."""
        descriptors = tuple(
            RequestDescriptor(
                request_id=i, arrival_time_s=0.05 * i, prompt_tokens=64 + 16 * (i % 5), output_tokens=1
            )
            for i in range(40)
        )
        trace = Trace(requests=descriptors, name="prompt-only")
        _assert_cluster_parity(splitwise_hh(1, 1), trace)

    def test_single_token_decodes(self):
        """output_tokens == 2: exactly one decode service per request."""
        descriptors = tuple(
            RequestDescriptor(
                request_id=i, arrival_time_s=0.02 * i, prompt_tokens=48, output_tokens=2
            )
            for i in range(120)
        )
        trace = Trace(requests=descriptors, name="single-token")
        _assert_cluster_parity(splitwise_hh(1, 1), trace)

    def test_restart_after_failure_resets_recording(self):
        """Failed machines restart their requests from scratch (reset_for_restart)."""
        trace = generate_trace("conversation", rate_rps=20.0, duration_s=25.0, seed=404)
        failures = [(4.0, "prompt-0"), (8.5, "token-1")]
        (ref_sim, ref), (col_sim, col) = _run_cluster_pair(
            splitwise_hh(2, 2), trace, failures=failures
        )
        assert any(r.restarts for r in ref.requests), "failures should restart work"
        _assert_requests_identical(ref.requests, col.requests)
        _assert_machine_stats_identical(ref_sim.metrics, col_sim.metrics)

    def test_mixed_prompt_and_token_rotation_iterations(self):
        """Saturated mixed machines rotate with prompts sharing iterations."""
        trace = generate_trace("conversation", rate_rps=30.0, duration_s=25.0, seed=77)
        (ref_sim, ref), (col_sim, col) = _run_cluster_pair(baseline_h100(2), trace)
        # fast_forward=False disables the rotation engine entirely; the
        # coalescing pass must actually engage it here.
        assert any(m.rotation_runs for m in col_sim.machines), (
            "the trace must actually drive the rotation engine"
        )
        _assert_requests_identical(ref.requests, col.requests)
        _assert_machine_stats_identical(ref_sim.metrics, col_sim.metrics)

    def test_oversubscribed_split_cluster_rotation(self):
        """Burst load drives token machines through the rotation + ff regimes."""
        trace = generate_trace("conversation", rate_rps=50.0, duration_s=30.0, seed=11)
        _assert_cluster_parity(splitwise_hh(2, 2), trace)


class TestScenarioParity:
    def test_diurnal_autoscale_scenario(self):
        preset = get_scenario("diurnal")
        runs = []
        for fast_forward in (False, True):
            simulation, trace, failures = prepare_scenario_run(
                preset,
                seed=14,
                scale=1.0,
                autoscaled=True,
                fast_forward=fast_forward,
            )
            runs.append((simulation, simulation.run(trace, failures=failures)))
        (ref_sim, ref), (col_sim, col) = runs
        assert ref.duration_s == col.duration_s
        _assert_requests_identical(ref.requests, col.requests)
        _assert_machine_stats_identical(ref_sim.metrics, col_sim.metrics)
        _assert_slo_reports_identical(ref.slo_report(), col.slo_report())
        assert ref.machine_hours() == col.machine_hours()

    def test_fleet_burst_scenario(self):
        preset = get_scenario("mixed-tenant")
        runs = []
        for fast_forward in (False, True):
            fleet, trace, failures = prepare_fleet_run(
                preset,
                clusters=2,
                burst_clusters=1,
                seed=15,
                scale=1.0,
                policy="slo-feedback",
                burst=True,
                fast_forward=fast_forward,
            )
            runs.append(fleet.run(trace, failures=failures))
        ref, col = runs
        assert ref.duration_s == col.duration_s
        _assert_requests_identical(ref.requests, col.requests)
        ref_report = ref.tenant_slo_report()
        col_report = col.tenant_slo_report()
        assert sorted(ref_report.tenants) == sorted(col_report.tenants)
        for tenant in ref_report.tenants:
            _assert_slo_reports_identical(ref_report.tenants[tenant], col_report.tenants[tenant])
        _assert_slo_reports_identical(ref_report.fleet, col_report.fleet)
        assert ref.machine_hours() == col.machine_hours()
        assert ref.requests_by_cluster() == col.requests_by_cluster()
