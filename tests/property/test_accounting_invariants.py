"""Property tests for the machines' incremental queue accounting.

The O(1) hot-path counters (pending prompt/decode tokens, KV residency,
transfer expectations and the priority-ordered ready view) must stay equal to
a full recount of the underlying queues after *any* interleaving of submits,
iterations, transfers, completions, machine failures and restarts.  With
``debug_accounting`` enabled every queue-metric read cross-checks the
counters, so simply driving a cluster hard exercises the invariant millions
of times; these tests additionally sweep ``verify_accounting`` between engine
steps so windows where no probe happens are covered too.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterSimulation
from repro.core.designs import baseline_h100, splitwise_hh
from repro.simulation.request import Request
from repro.workload.generator import generate_trace


def _enable_debug_accounting(simulation: ClusterSimulation) -> None:
    for machine in simulation.machines:
        machine.debug_accounting = True


def _verify_all(simulation: ClusterSimulation) -> None:
    for machine in simulation.machines:
        if not machine.failed:
            machine.verify_accounting()


class TestAccountingInvariants:
    def test_randomized_lifecycle_keeps_counters_exact(self):
        """Seeded, deterministic: saturating load plus failures and restarts."""
        rng = random.Random(20240727)
        for _ in range(3):
            simulation = ClusterSimulation(splitwise_hh(3, 2))
            trace = generate_trace(
                "conversation",
                rate_rps=rng.choice([6.0, 12.0, 25.0]),
                duration_s=30.0,
                seed=rng.randrange(10_000),
            )
            # Fail one prompt and one token machine at random times inside the
            # trace so restart/withdraw paths run under load.
            failures = [
                (rng.uniform(2.0, 20.0), f"prompt-{rng.randrange(3)}"),
                (rng.uniform(2.0, 25.0), f"token-{rng.randrange(2)}"),
            ]
            _enable_debug_accounting(simulation)
            # debug_accounting makes every JSQ probe self-verify during run().
            result = simulation.run(trace, failures=failures)
            _verify_all(simulation)
            assert len(result.completed_requests) == len(result.requests)
            assert simulation.scheduler.restarted_requests, "failures should restart work"

    def test_stepwise_sweep_between_events(self):
        """Verify counters in the gaps between events, not only at probes."""
        simulation = ClusterSimulation(splitwise_hh(2, 2))
        trace = generate_trace("coding", rate_rps=10.0, duration_s=20.0, seed=99)
        _enable_debug_accounting(simulation)
        engine = simulation.engine
        live = [Request(descriptor=descriptor) for descriptor in trace]
        for request in live:
            engine.schedule_at(
                request.arrival_time, lambda r=request: simulation.scheduler.submit(r), priority=2
            )
        engine.schedule_at(5.0, lambda: simulation.scheduler.fail_machine("prompt-0"), priority=1)
        steps = 0
        while engine.step():
            steps += 1
            if steps % 7 == 0:
                _verify_all(simulation)
        _verify_all(simulation)
        assert steps > 0
        assert all(request.is_complete for request in live)

    @given(rate=st.sampled_from([3.0, 8.0, 16.0]), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_baseline_cluster_counters_hold_under_load(self, rate, seed):
        simulation = ClusterSimulation(baseline_h100(3))
        trace = generate_trace("conversation", rate_rps=rate, duration_s=10.0, seed=seed)
        _enable_debug_accounting(simulation)
        result = simulation.run(trace)
        _verify_all(simulation)
        assert len(result.completed_requests) == len(result.requests)
