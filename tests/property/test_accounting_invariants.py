"""Property tests for the machines' incremental queue accounting.

The O(1) hot-path counters (pending prompt/decode tokens, KV residency,
transfer expectations and the priority-ordered ready view) must stay equal to
a full recount of the underlying queues after *any* interleaving of submits,
iterations, transfers, completions, machine failures and restarts.  With
``debug_accounting`` enabled every queue-metric read cross-checks the
counters, so simply driving a cluster hard exercises the invariant millions
of times; these tests additionally sweep ``verify_accounting`` between engine
steps so windows where no probe happens are covered too.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterSimulation
from repro.core.designs import baseline_h100, splitwise_hh
from repro.simulation.request import Request
from repro.workload.generator import generate_trace


def _enable_debug_accounting(simulation: ClusterSimulation) -> None:
    for machine in simulation.machines:
        machine.debug_accounting = True


def _verify_all(simulation: ClusterSimulation) -> None:
    for machine in simulation.machines:
        if not machine.failed:
            machine.verify_accounting()


class TestAccountingInvariants:
    def test_randomized_lifecycle_keeps_counters_exact(self):
        """Seeded, deterministic: saturating load plus failures and restarts."""
        rng = random.Random(20240727)
        for _ in range(3):
            simulation = ClusterSimulation(splitwise_hh(3, 2))
            trace = generate_trace(
                "conversation",
                rate_rps=rng.choice([6.0, 12.0, 25.0]),
                duration_s=30.0,
                seed=rng.randrange(10_000),
            )
            # Fail one prompt and one token machine at random times inside the
            # trace so restart/withdraw paths run under load.
            failures = [
                (rng.uniform(2.0, 20.0), f"prompt-{rng.randrange(3)}"),
                (rng.uniform(2.0, 25.0), f"token-{rng.randrange(2)}"),
            ]
            _enable_debug_accounting(simulation)
            # debug_accounting makes every JSQ probe self-verify during run().
            result = simulation.run(trace, failures=failures)
            _verify_all(simulation)
            assert len(result.completed_requests) == len(result.requests)
            assert simulation.scheduler.restarted_requests, "failures should restart work"

    def test_stepwise_sweep_between_events(self):
        """Verify counters in the gaps between events, not only at probes."""
        simulation = ClusterSimulation(splitwise_hh(2, 2))
        trace = generate_trace("coding", rate_rps=10.0, duration_s=20.0, seed=99)
        _enable_debug_accounting(simulation)
        engine = simulation.engine
        live = [Request(descriptor=descriptor) for descriptor in trace]
        for request in live:
            engine.schedule_at(
                request.arrival_time, lambda r=request: simulation.scheduler.submit(r), priority=2
            )
        engine.schedule_at(5.0, lambda: simulation.scheduler.fail_machine("prompt-0"), priority=1)
        steps = 0
        while engine.step():
            steps += 1
            if steps % 7 == 0:
                _verify_all(simulation)
        _verify_all(simulation)
        assert steps > 0
        assert all(request.is_complete for request in live)

    @given(rate=st.sampled_from([3.0, 8.0, 16.0]), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_baseline_cluster_counters_hold_under_load(self, rate, seed):
        simulation = ClusterSimulation(baseline_h100(3))
        trace = generate_trace("conversation", rate_rps=rate, duration_s=10.0, seed=seed)
        _enable_debug_accounting(simulation)
        result = simulation.run(trace)
        _verify_all(simulation)
        assert len(result.completed_requests) == len(result.requests)


def _run_simulation(design, trace, failures, fast_forward):
    """Run one cluster simulation with coalescing forced on or off."""
    simulation = ClusterSimulation(design, fast_forward=fast_forward)
    _enable_debug_accounting(simulation)
    result = simulation.run(trace, failures=failures)
    _verify_all(simulation)
    return simulation, result


def _assert_bit_identical(reference, coalesced):
    """Every per-request and per-machine output must match exactly (==, not approx)."""
    sim_ref, res_ref = reference
    sim_fast, res_fast = coalesced
    assert res_ref.duration_s == res_fast.duration_s
    assert len(res_ref.requests) == len(res_fast.requests)
    for ref, fast in zip(res_ref.requests, res_fast.requests):
        assert ref.request_id == fast.request_id
        assert ref.completion_time == fast.completion_time
        assert ref.first_token_time == fast.first_token_time
        assert ref.generated_tokens == fast.generated_tokens
        assert list(ref.token_times) == list(fast.token_times)
        assert ref.priority_boost == fast.priority_boost
        assert ref.restarts == fast.restarts
        assert ref.phase is fast.phase
    assert sim_ref.metrics.total_energy_wh() == sim_fast.metrics.total_energy_wh()
    assert sim_ref.metrics.total_busy_time_s() == sim_fast.metrics.total_busy_time_s()
    for name in sim_ref.metrics.machines():
        ref = sim_ref.metrics.machine_stats(name)
        fast = sim_fast.metrics.machine_stats(name)
        assert ref.iterations == fast.iterations
        assert ref.busy_time_s == fast.busy_time_s
        assert ref.energy_wh == fast.energy_wh
        assert ref.prompt_tokens_processed == fast.prompt_tokens_processed
        assert ref.tokens_generated == fast.tokens_generated
        assert ref.occupancy.as_mapping() == fast.occupancy.as_mapping()


class TestFastForwardParity:
    """Coalescing (macro-events + rotation) must be invisible in the results.

    Saturating traces push the token pools through every coalescing regime —
    full-pool macro-events, oversubscribed rotation, interrupts from
    admissions and failures — and the fast-forwarding simulator must produce
    bit-identical completion times, token timestamps, energy totals, and
    per-machine metrics, all while debug accounting cross-checks every
    counter read.
    """

    def test_saturating_split_cluster_with_failures_parity(self):
        rng = random.Random(20260727)
        coalesced_somewhere = False
        for _ in range(3):
            rate = rng.choice([15.0, 35.0, 60.0])
            trace = generate_trace(
                "conversation", rate_rps=rate, duration_s=18.0, seed=rng.randrange(10_000)
            )
            failures = [
                (rng.uniform(2.0, 12.0), f"prompt-{rng.randrange(3)}"),
                (rng.uniform(2.0, 15.0), f"token-{rng.randrange(2)}"),
            ]
            reference = _run_simulation(splitwise_hh(3, 2), trace, failures, fast_forward=False)
            coalesced = _run_simulation(splitwise_hh(3, 2), trace, failures, fast_forward=True)
            _assert_bit_identical(reference, coalesced)
            assert reference[0].scheduler.restarted_requests, "failures should restart work"
            if (
                coalesced[0].engine.events_coalesced
                or sum(machine.rotation_runs for machine in coalesced[0].machines)
            ):
                coalesced_somewhere = True
            # Coalescing must actually reduce scheduled work somewhere.
            assert coalesced[0].engine.events_processed <= reference[0].engine.events_processed
        assert coalesced_somewhere, "no trace engaged the fast-forward machinery"

    def test_oversubscribed_baseline_parity(self):
        trace = generate_trace("conversation", rate_rps=30.0, duration_s=20.0, seed=424242)
        reference = _run_simulation(baseline_h100(3), trace, (), fast_forward=False)
        coalesced = _run_simulation(baseline_h100(3), trace, (), fast_forward=True)
        _assert_bit_identical(reference, coalesced)
        assert sum(machine.rotation_runs for machine in coalesced[0].machines) > 0
