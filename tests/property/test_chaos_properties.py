"""Property tests for the fault-injection plane under full fleet simulation.

The fault plane replays a pre-compiled stochastic plan as engine events;
these tests pin the invariants that make chaos runs trustworthy:

* **Census conservation** — under the full failure-storm preset (machine
  churn, rack outages, stragglers, KV degradation, spot revocation, bans,
  shedding) every request either completes or is shed; nothing is lost.
* **Seed determinism** — each injection type in isolation fires at least
  once and produces bit-identical runs under the same fault seed; a
  different fault seed produces a different plan.
* **Fast-forward parity** — decode fast-forwarding on/off produces exactly
  the same results with the whole fault plane armed, because injections
  are priority-1 engine events compiled before the run starts.
* **Lifecycle invariants** — with the request-lifecycle layer (retries,
  hedging, deadlines, degraded service) armed on top of the storm: the
  census closes at the attempt level (completed + shed + expired ==
  submitted; hedge duplicates are attempts, never extra requests), the
  retry-jitter seed is independent of the trace and fault seeds, runs stay
  bit-identical under the same three seeds and under fast-forward on/off,
  and reliability pays for itself — goodput is strictly higher than the
  same fleet with the lifecycle layer stripped.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import splitwise_hh
from repro.faults import FaultPlanConfig, get_chaos_preset
from repro.fleet import FleetProvisionerConfig, FleetSimulation
from repro.workload.scenarios import get_scenario


def _storm_trace(seed, scale=0.4):
    return get_scenario("failure-storm").build_trace(seed=seed, scale=scale)


def _storm_fleet(
    fault_seed=None, fast_forward=None, burst=True, lifecycle=False, retry_seed=None
):
    """A fleet with the full failure-storm bundle armed.

    ``lifecycle=True`` additionally arms the preset's request-lifecycle
    layer (retries, hedging, deadlines, degraded service); ``retry_seed``
    reseeds the retry-jitter RNG independently of the trace/fault seeds.
    """
    bundle = get_chaos_preset("failure-storm")
    faults = bundle.faults
    if fault_seed is not None:
        faults = dataclasses.replace(faults, seed=fault_seed)
    kwargs = {}
    if burst:
        kwargs["burst_clusters"] = 1
        kwargs["provisioner"] = FleetProvisionerConfig()
    if lifecycle:
        retry = bundle.retry
        if retry_seed is not None:
            retry = dataclasses.replace(retry, seed=retry_seed)
        kwargs.update(
            retry=retry,
            hedge=bundle.hedge,
            deadlines=bundle.deadlines,
            degraded=bundle.degraded,
        )
    return FleetSimulation(
        splitwise_hh(1, 1),
        num_clusters=2,
        faults=faults,
        reliability=bundle.reliability,
        admission=bundle.admission,
        fast_forward=fast_forward,
        **kwargs,
    )


def _fingerprint(result):
    """Everything observable about a chaos run, for bit-identity checks."""
    per_request = [
        (
            r.request_id,
            r.tenant,
            r.shed,
            r.prompt_machine,
            r.token_machine,
            r.prompt_start_time,
            r.first_token_time,
            r.completion_time,
            tuple(r.token_times),
            r.restarts,
            r.expired,
            r.degraded,
        )
        for r in result.requests
    ]
    timeline = (
        [(e.time_s, e.cluster, e.action) for e in result.provisioner.timeline]
        if result.provisioner is not None
        else []
    )
    faults = result.injector.snapshot() if result.injector is not None else None
    lifecycle = result.lifecycle.snapshot() if result.lifecycle is not None else None
    return (
        per_request,
        result.duration_s,
        result.requests_by_cluster(),
        dict(result.shed_by_tenant),
        result.router.bans_issued,
        timeline,
        faults,
        lifecycle,
    )


def _assert_census_conserved(result, trace):
    served = [r for r in result.requests if not r.shed and not r.expired]
    assert (
        len(result.completed_requests) + result.requests_shed + result.requests_expired
        == len(trace)
    )
    routed_ids = [r.request_id for c in result.clusters for r in c.requests]
    assert sorted(routed_ids) == sorted(r.request_id for r in served)
    for request in served:
        assert request.is_complete, f"request {request.request_id} lost mid-chaos"
    for request in result.shed_requests:
        assert request.prompt_start_time is None


class TestChaosCensus:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=3, deadline=None)
    def test_no_request_lost_under_failure_storm(self, seed):
        trace = _storm_trace(seed)
        result = _storm_fleet().run(trace)
        assert result.injector is not None and sum(result.injector.fired.values()) > 0
        _assert_census_conserved(result, trace)

    def test_census_conserved_without_burst_provisioner(self):
        trace = _storm_trace(11)
        result = _storm_fleet(burst=False).run(trace)
        _assert_census_conserved(result, trace)

    def test_regression_recover_before_stale_finish_event(self):
        # Trace seed 1 once double-completed a request: a machine failed
        # mid-iteration, its work restarted elsewhere, and after repair the
        # stale finish event replayed the dead iteration.  fail() now
        # tombstones the pending finish event.
        trace = _storm_trace(1)
        result = _storm_fleet().run(trace)
        _assert_census_conserved(result, trace)


#: One minimal FaultPlanConfig per injection process, each armed alone.
ISOLATED_PROCESSES = {
    "machine-churn": FaultPlanConfig(seed=5, machine_mtbf_s=40.0, machine_mttr_s=6.0),
    "outage": FaultPlanConfig(seed=5, outage_interval_s=50.0, outage_duration_s=8.0),
    "straggler": FaultPlanConfig(
        seed=5, straggler_interval_s=45.0, straggler_duration_s=25.0, straggler_slowdown=1.8
    ),
    "kv-degradation": FaultPlanConfig(
        seed=5, kv_degradation_interval_s=40.0, kv_degradation_duration_s=12.0,
        kv_degradation_factor=2.5,
    ),
    # Seed chosen so the (single) revoke onset lands inside the storm's
    # burst window — a revoke against a cluster that was never rented is
    # skipped by design.
    "revocation": FaultPlanConfig(seed=1, revocation_mtbf_s=60.0),
}


def _isolated_fleet(faults, fast_forward=None):
    # Revocation needs a burst cluster to target, so every isolated run
    # gets one — the other processes simply ignore it.
    return FleetSimulation(
        splitwise_hh(1, 1),
        num_clusters=2,
        burst_clusters=1,
        provisioner=FleetProvisionerConfig(),
        faults=faults,
        fast_forward=fast_forward,
    )


class TestChaosDeterminism:
    @pytest.mark.parametrize("process", sorted(ISOLATED_PROCESSES))
    def test_each_injection_type_fires_and_is_deterministic(self, process):
        faults = ISOLATED_PROCESSES[process]
        trace = _storm_trace(3, scale=0.8)
        first = _isolated_fleet(faults).run(trace)
        second = _isolated_fleet(faults).run(trace)
        assert sum(first.injector.fired.values()) > 0, f"{process} never fired"
        assert _fingerprint(first) == _fingerprint(second)

    @pytest.mark.parametrize("process", sorted(ISOLATED_PROCESSES))
    def test_different_fault_seed_different_plan(self, process):
        faults = ISOLATED_PROCESSES[process]
        reseeded = dataclasses.replace(faults, seed=faults.seed + 1)
        trace = _storm_trace(3, scale=0.8)
        first = _isolated_fleet(faults).run(trace)
        second = _isolated_fleet(reseeded).run(trace)
        assert first.injector.plan != second.injector.plan

    def test_fault_seed_independent_of_trace_seed(self):
        first = _storm_fleet(fault_seed=123).run(_storm_trace(0))
        second = _storm_fleet(fault_seed=123).run(_storm_trace(1))
        assert first.injector.plan == second.injector.plan

    @given(fault_seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=3, deadline=None)
    def test_full_storm_bit_reproducible(self, fault_seed):
        trace = _storm_trace(7)
        first = _storm_fleet(fault_seed=fault_seed).run(trace)
        second = _storm_fleet(fault_seed=fault_seed).run(trace)
        assert _fingerprint(first) == _fingerprint(second)


class TestChaosFastForwardParity:
    def test_bit_parity_under_failure_storm(self):
        trace = _storm_trace(5)
        on = _storm_fleet(fast_forward=True).run(trace)
        off = _storm_fleet(fast_forward=False).run(trace)
        assert _fingerprint(on) == _fingerprint(off)

    def test_bit_parity_with_lifecycle_layer(self):
        trace = _storm_trace(5)
        on = _storm_fleet(fast_forward=True, lifecycle=True).run(trace)
        off = _storm_fleet(fast_forward=False, lifecycle=True).run(trace)
        assert on.lifecycle.retries_fired > 0, "storm fired no retries; parity is vacuous"
        assert _fingerprint(on) == _fingerprint(off)


class TestLifecycleProperties:
    """The request-lifecycle layer on top of the full failure storm."""

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=3, deadline=None)
    def test_attempt_census_closes(self, seed):
        trace = _storm_trace(seed)
        result = _storm_fleet(lifecycle=True).run(trace)
        _assert_census_conserved(result, trace)
        # Hedge duplicates are attempts, not requests: the logical request
        # list matches the trace exactly, ids unique, and every id is below
        # the clone offset.
        ids = [r.request_id for r in result.requests]
        assert len(ids) == len(set(ids)) == len(trace)
        assert all(request_id < (1 << 40) for request_id in ids)
        snapshot = result.lifecycle.snapshot()
        assert snapshot["hedges_won"] <= snapshot["hedges_launched"]
        assert snapshot["retries_fired"] <= snapshot["retries_scheduled"]
        assert result.requests_expired >= snapshot["retries_exhausted"]

    def test_bit_reproducible_with_all_three_seeds(self):
        trace = _storm_trace(7)
        first = _storm_fleet(fault_seed=9, lifecycle=True, retry_seed=4).run(trace)
        second = _storm_fleet(fault_seed=9, lifecycle=True, retry_seed=4).run(trace)
        assert first.lifecycle.retries_fired > 0
        assert _fingerprint(first) == _fingerprint(second)

    def test_retry_seed_independent_of_fault_plan(self):
        trace = _storm_trace(7)
        first = _storm_fleet(fault_seed=9, lifecycle=True, retry_seed=0).run(trace)
        second = _storm_fleet(fault_seed=9, lifecycle=True, retry_seed=1).run(trace)
        # Reseeding the retry jitter must not perturb the fault plan or the
        # workload — only the retry timings (and their downstream effects).
        assert first.injector.plan == second.injector.plan
        assert [r.request_id for r in first.requests] == [
            r.request_id for r in second.requests
        ]

    def test_reliability_pays_for_itself(self):
        # Same trace, same faults, same router/admission, at a load where
        # the baseline storm sheds: the lifecycle layer (retries + hedging +
        # degraded service) strictly wins goodput back.  The run is fully
        # deterministic, so the fixed seeds make this reproducible.
        trace = _storm_trace(0, scale=0.8)
        with_layer = _storm_fleet(fault_seed=0, lifecycle=True).run(trace)
        without = _storm_fleet(fault_seed=0, lifecycle=False).run(trace)
        goodput_with = with_layer.tenant_slo_report().fleet_goodput
        goodput_without = without.tenant_slo_report().fleet_goodput
        assert goodput_without < 1.0, "baseline shed nothing; comparison is vacuous"
        assert with_layer.lifecycle.retries_fired > 0
        assert with_layer.lifecycle.degraded_admissions > 0
        assert goodput_with > goodput_without

    def test_hedge_waste_is_reported(self):
        trace = _storm_trace(7)
        result = _storm_fleet(fault_seed=9, lifecycle=True).run(trace)
        snapshot = result.lifecycle.snapshot()
        assert snapshot["hedge_wasted_tokens"] >= 0
        if snapshot["hedges_won"] == 0 and snapshot["hedges_launched"] == 0:
            assert snapshot["hedge_wasted_tokens"] == 0
        # Whatever the storm wasted is visible in provenance: the snapshot
        # keys the CI smoke job greps for must exist.
        for key in (
            "retries_scheduled",
            "retries_fired",
            "retries_exhausted",
            "hedges_launched",
            "hedges_won",
            "hedges_suppressed",
            "hedge_wasted_tokens",
            "expired_wasted_tokens",
            "expired",
            "degraded_admissions",
        ):
            assert key in snapshot

    @pytest.mark.parametrize("process", sorted(ISOLATED_PROCESSES))
    def test_bit_parity_per_injection_type(self, process):
        faults = ISOLATED_PROCESSES[process]
        trace = _storm_trace(3, scale=0.8)
        on = _isolated_fleet(faults, fast_forward=True).run(trace)
        off = _isolated_fleet(faults, fast_forward=False).run(trace)
        assert _fingerprint(on) == _fingerprint(off)
