"""Legacy-path shim: all metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-use-pep517`` works in offline environments
whose setuptools predates bundled wheel support; normal installs go through
the PEP 517/660 path and never read this file beyond ``setup()``.
"""

from setuptools import setup

setup()
