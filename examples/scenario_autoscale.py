"""Time-varying traffic with the dynamic pool autoscaler.

Replays the ``diurnal`` scenario preset (a compressed day/night sinusoid)
through the same peak-sized Splitwise-HH cluster twice — statically
provisioned, then with the pool autoscaler parking and re-purposing
machines — and prints the SLO and machine-hour comparison plus the
autoscaler's action timeline.

Run with::

    python examples/scenario_autoscale.py
"""

from __future__ import annotations

from repro import AutoscalerConfig, ClusterSimulation, get_scenario, splitwise_hh


def main() -> None:
    preset = get_scenario("diurnal")
    trace = preset.build_trace(seed=0)
    num_prompt, num_token = preset.machine_counts()
    design = splitwise_hh(num_prompt, num_token)
    print(f"Scenario {preset.name}: {preset.description}")
    print(f"Trace: {len(trace)} requests over {preset.duration_s:g}s on {design.label}\n")

    print(f"{'run':<12}{'SLO':>6}{'violations':>12}{'E2E p90 (s)':>13}{'machine-hours':>15}")
    results = {}
    for label, autoscaler in (("static", None), ("autoscaled", AutoscalerConfig())):
        simulation = ClusterSimulation(design, autoscaler=autoscaler)
        result = simulation.run(trace, failures=preset.failures())
        slo = result.slo_report()
        results[label] = result
        print(
            f"{label:<12}{'PASS' if slo.satisfied else 'FAIL':>6}{len(slo.violations()):>12}"
            f"{result.request_metrics().e2e.p90:>13.2f}{result.machine_hours():>15.3f}"
        )

    autoscaler = results["autoscaled"].autoscaler
    saved = results["static"].machine_hours() - results["autoscaled"].machine_hours()
    print(f"\nmachine-hours saved: {saved:.3f} "
          f"({saved / results['static'].machine_hours():.1%} of the static bill)")
    print(f"autoscaler actions ({len(autoscaler.timeline)}):")
    for event in autoscaler.timeline:
        print(f"  t={event.time_s:>8.2f}s {event.action:<9} {event.machine:<10} "
              f"{event.from_pool}->{event.to_pool}  ({event.reason})")


if __name__ == "__main__":
    main()
