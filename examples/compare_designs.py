"""Design comparison: the paper's iso-power cluster suite across loads.

Runs the six cluster designs of the paper (two baselines and four Splitwise
variants), provisioned with the paper's iso-power machine ratios at 20%
scale, across a sweep of request rates for the conversation workload — a
laptop-scale version of Fig. 16 and the Fig. 18 summary.

Run with::

    python examples/compare_designs.py
"""

from __future__ import annotations

from repro.experiments.cluster_eval import fig16_latency_vs_load, scaled_design_suite

RATES = (8.0, 14.0, 20.0)


def main() -> None:
    suite = scaled_design_suite(workload="conversation", scale=0.2)
    print("Iso-power suite (paper machine ratios at 0.2x scale):")
    for name, design in suite.items():
        print(f"  {design.label:<28} cost {design.cost_per_hour:6.0f} $/hr, "
              f"power {design.provisioned_power_kw:5.1f} kW")

    print("\nSimulating the conversation workload at", ", ".join(f"{r:.0f}" for r in RATES), "RPS ...")
    results = fig16_latency_vs_load(suite, workload="conversation", rates=RATES, duration_s=60.0)

    header = f"{'design':<18}" + "".join(f"{f'{rate:.0f} RPS':>22}" for rate in RATES)
    print("\nP90 TTFT / P90 TBT / SLO")
    print(header)
    for name, per_rate in results.items():
        cells = []
        for rate in RATES:
            row = per_rate[rate]
            cells.append(
                f"{row['ttft_p90'] * 1e3:6.0f}ms {row['tbt_p90'] * 1e3:5.0f}ms {'ok' if row['slo_ok'] else 'VIOL':>5}"
            )
        print(f"{name:<18}" + "".join(f"{c:>22}" for c in cells))

    print("\nExpected shape (paper Fig. 16b): Splitwise designs hold the SLO to higher loads")
    print("than the baselines; Splitwise-HHcap does so at the lowest provisioned power.")


if __name__ == "__main__":
    main()
