"""Extensibility: evaluate Splitwise with your own accelerator and model.

The paper's Discussion section argues that any hardware matching the phase
requirements (high compute for prompts, high memory bandwidth/capacity for
tokens) can serve as a token machine — e.g. AMD MI250 or CPUs with HBM.
This example defines a hypothetical "MI250-class" token machine and a custom
30B-parameter model, builds a heterogeneous Splitwise design around them, and
compares it with the stock designs.

Run with::

    python examples/custom_hardware.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    DGX_H100,
    ClusterDesign,
    GpuSpec,
    MachineSpec,
    ModelSpec,
    baseline_h100,
    generate_trace,
    simulate_design,
)

# A hypothetical MI250-class accelerator: less compute than an H100, similar
# memory bandwidth, lower power and cost — a good token machine on paper.
MI250 = GpuSpec(
    name="MI250",
    fp16_tflops=45.0,
    hbm_capacity_gb=128.0,
    hbm_bandwidth_gbps=3276.0,
    tdp_watts=560.0,
    power_cap_watts=560.0,
    nvlink_gbps=50.0,
    infiniband_gbps=200.0,
    cost_per_hour=21.0,
)
MI250_MACHINE = MachineSpec(name="MI250x8", gpu=MI250)

# A custom mid-size model (GQA, 30B parameters).
CUSTOM_30B = ModelSpec(
    name="Custom-30B",
    num_parameters=30e9,
    num_layers=48,
    hidden_size=6144,
    num_heads=48,
    num_kv_heads=8,
)


def main() -> None:
    splitwise_hm = ClusterDesign(
        name="Splitwise-H/MI250",
        prompt_machine=DGX_H100,
        token_machine=MI250_MACHINE,
        num_prompt=2,
        num_token=2,
    )
    designs = {
        "Baseline-H100 (4)": baseline_h100(4),
        "Splitwise-H/MI250": splitwise_hm,
    }

    trace = generate_trace("conversation", rate_rps=10.0, duration_s=60.0, seed=2)
    print(f"Serving {CUSTOM_30B.name} ({CUSTOM_30B.num_parameters / 1e9:.0f}B params, "
          f"{CUSTOM_30B.kv_bytes_per_token / 1024:.0f} KiB KV-cache per token)\n")

    print(f"{'design':<22}{'$/hr':>8}{'kW':>8}{'TTFT p90':>10}{'TBT p90':>10}{'SLO':>6}")
    for name, design in designs.items():
        result = simulate_design(design, trace, model=CUSTOM_30B)
        metrics = result.request_metrics()
        slo = result.slo_report(model=CUSTOM_30B)
        print(
            f"{name:<22}{design.cost_per_hour:>8.0f}{design.provisioned_power_kw:>8.1f}"
            f"{metrics.ttft.p90 * 1e3:>9.0f}ms{metrics.tbt.p90 * 1e3:>9.0f}ms"
            f"{'  ok' if slo.satisfied else ' VIOL':>6}"
        )

    capped_token_machine = replace(MI250_MACHINE, gpu=replace(MI250, power_cap_watts=300.0), name="MI250x8-cap")
    capped = replace(splitwise_hm, name="Splitwise-H/MI250cap", token_machine=capped_token_machine)
    print(f"\nPower-capping the MI250 token pool saves "
          f"{splitwise_hm.provisioned_power_kw - capped.provisioned_power_kw:.1f} kW "
          f"({capped.provisioned_power_kw:.1f} kW total) — the Splitwise-HHcap recipe on custom hardware.")


if __name__ == "__main__":
    main()
