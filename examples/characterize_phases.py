"""Phase characterization: reproduce the Section III insights on your laptop.

Prints the prompt/token phase latency, throughput, memory, and power curves
(Figs. 5-9 of the paper) for Llama2-70B and BLOOM-176B on DGX-A100 and
DGX-H100 machines, using the calibrated models in this package.

Run with::

    python examples/characterize_phases.py
"""

from __future__ import annotations

from repro import (
    BLOOM_176B,
    DGX_A100,
    DGX_H100,
    LLAMA2_70B,
    AnalyticalPerformanceModel,
    MemoryModel,
    PowerModel,
)


def latency_and_throughput() -> None:
    print("=== Fig. 5a/6a: prompt phase (TTFT and throughput vs batched prompt tokens) ===")
    print(f"{'tokens':>8} | " + " | ".join(f"{m.name}/{g.name:<10}" for m in (LLAMA2_70B, BLOOM_176B) for g in (DGX_H100, DGX_A100)))
    models = [(m, g, AnalyticalPerformanceModel(m, g)) for m in (LLAMA2_70B, BLOOM_176B) for g in (DGX_H100, DGX_A100)]
    for tokens in (128, 512, 1024, 2048, 4096, 8192):
        cells = [f"{perf.ttft(tokens) * 1e3:7.0f}ms ({perf.prompt_throughput(tokens) / 1e3:4.1f}k/s)" for _, _, perf in models]
        print(f"{tokens:>8} | " + " | ".join(cells))

    print("\n=== Fig. 5b/6b: token phase (TBT and throughput vs decode batch size) ===")
    for batch in (1, 4, 16, 64):
        cells = [f"{perf.tbt(batch, batch * 1024) * 1e3:6.1f}ms ({perf.token_throughput(batch, batch * 1024):5.0f}/s)" for _, _, perf in models]
        print(f"{batch:>8} | " + " | ".join(cells))


def memory_and_power() -> None:
    print("\n=== Fig. 7: memory footprint of BLOOM-176B on a DGX-H100 ===")
    memory = MemoryModel(BLOOM_176B, DGX_H100)
    for tokens in (0, 1000, 10000, 30000, 60000):
        print(f"  {tokens:>6} cached tokens -> {memory.usage(tokens).total_gb:6.0f} GB "
              f"(capacity {DGX_H100.total_hbm_capacity_gb:.0f} GB, max {memory.max_kv_tokens} KV tokens)")

    print("\n=== Fig. 8/9: power draw and power-cap sensitivity (Llama2-70B, DGX-H100) ===")
    power = PowerModel(LLAMA2_70B, DGX_H100)
    perf = AnalyticalPerformanceModel(LLAMA2_70B, DGX_H100, apply_power_cap=False)
    print("  prompt draw:", ", ".join(f"{n} tok={power.prompt_power_fraction(n):.2f}xTDP" for n in (512, 2048, 8192)))
    print("  token draw: ", ", ".join(f"b={b}: {power.token_power_fraction(b):.2f}xTDP" for b in (1, 8, 16)))
    base_ttft = perf.prompt_latency(8192)
    base_tbt = perf.token_latency(64, 64 * 1024)
    for cap_watts in (700, 500, 350, 200):
        fraction = cap_watts / 700
        print(f"  cap {cap_watts:>3}W: TTFT x{power.prompt_cap_slowdown(8192, fraction):.2f} "
              f"({base_ttft * power.prompt_cap_slowdown(8192, fraction) * 1e3:5.0f} ms), "
              f"TBT x{power.token_cap_slowdown(64, fraction):.2f} "
              f"({base_tbt * power.token_cap_slowdown(64, fraction) * 1e3:4.1f} ms)")

    print("\nInsights: prompt phase is compute/power hungry and cap-sensitive; token phase")
    print("is memory-bound, draws ~half the power, and tolerates a 50% cap (Splitwise-HHcap).")


def main() -> None:
    latency_and_throughput()
    memory_and_power()


if __name__ == "__main__":
    main()
