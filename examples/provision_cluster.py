"""Cluster provisioning: size a Splitwise cluster for a target load.

Walks through the paper's §IV-D methodology at laptop scale:

1. get an analytical first-cut estimate of the pool sizes,
2. sweep the (prompt, token) machine-count design space with the simulator
   (the paper's Fig. 12),
3. report the cost-optimal configuration that meets the Table VI SLOs.

Run with::

    python examples/provision_cluster.py
"""

from __future__ import annotations

from repro import OptimizationGoal, Provisioner
from repro.core.provisioning import estimate_pool_sizes

TARGET_RPS = 10.0
WORKLOAD = "coding"
FAMILY = "Splitwise-HH"


def main() -> None:
    estimate = estimate_pool_sizes(FAMILY, rate_rps=TARGET_RPS, workload=WORKLOAD)
    print(f"Analytical first cut for {FAMILY} at {TARGET_RPS:.0f} RPS ({WORKLOAD}): "
          f"{estimate[0]} prompt + {estimate[1]} token machines")

    provisioner = Provisioner(workload=WORKLOAD, trace_duration_s=45.0, seed=0)
    prompt_counts = range(max(1, estimate[0] - 1), estimate[0] + 3)
    token_counts = range(max(1, estimate[1]), estimate[1] + 2)
    print(f"Sweeping prompt machines {list(prompt_counts)} x token machines {list(token_counts)} ...\n")

    result = provisioner.size_for_throughput(
        FAMILY,
        target_rps=TARGET_RPS,
        prompt_counts=prompt_counts,
        token_counts=token_counts,
        goal=OptimizationGoal.COST,
    )

    print(f"{'config':<14}{'$/hr':>8}{'kW':>8}{'TTFT p90':>10}{'E2E p90':>10}{'SLO':>6}")
    for candidate in result.candidates:
        design = candidate.design
        print(
            f"{design.num_prompt}P,{design.num_token}T{'':<8}{candidate.cost_per_hour:>8.0f}"
            f"{candidate.provisioned_power_kw:>8.1f}{candidate.metrics.ttft.p90 * 1e3:>9.0f}ms"
            f"{candidate.metrics.e2e.p90:>9.1f}s{'  ok' if candidate.feasible else ' VIOL':>6}"
        )

    if result.best is not None:
        best = result.best.design
        print(f"\nCost-optimal feasible configuration (the paper's Fig. 12 star): "
              f"{best.num_prompt} prompt + {best.num_token} token machines "
              f"({result.best.cost_per_hour:.0f} $/hr, {result.best.provisioned_power_kw:.1f} kW)")
    else:
        print("\nNo configuration in the swept range met the SLO; widen the sweep.")


if __name__ == "__main__":
    main()
