"""A multi-cluster fleet with per-tenant SLOs and cloud-burst provisioning.

Replays the ``mixed-tenant`` scenario preset (conversation + coding tenants
with anti-phase diurnal peaks) through a fleet of Splitwise-HH clusters
twice — every cluster statically active, then with only two active and one
standby rented elastically by the burst provisioner — and prints the
per-tenant SLO verdicts, the machine-hour comparison, and the provisioning
timeline.

Run with::

    python examples/fleet_burst.py
"""

from __future__ import annotations

from repro import get_scenario, splitwise_hh
from repro.fleet import FleetProvisionerConfig, FleetSimulation

CLUSTERS = 2
STANDBYS = 1


def main() -> None:
    preset = get_scenario("mixed-tenant")
    trace = preset.build_trace(seed=0, scale=float(CLUSTERS))
    design = splitwise_hh(*preset.machine_counts())
    print(f"Fleet scenario {preset.name}: {preset.description}")
    print(
        f"Trace: {len(trace)} requests over {preset.duration_s:g}s, "
        f"tenants: {', '.join(trace.tenants())}\n"
    )

    print(f"{'run':<9}{'tenant SLOs':>28}{'completion':>12}{'machine-hours':>15}{'cost ($)':>10}")
    results = {}
    runs = (
        ("static", FleetSimulation(design, num_clusters=CLUSTERS + STANDBYS, router="slo-feedback")),
        (
            "burst",
            FleetSimulation(
                design,
                num_clusters=CLUSTERS,
                burst_clusters=STANDBYS,
                router="slo-feedback",
                provisioner=FleetProvisionerConfig(),
            ),
        ),
    )
    for label, fleet in runs:
        result = fleet.run(trace)
        results[label] = result
        report = result.tenant_slo_report()
        verdicts = ", ".join(
            f"{tenant}={'PASS' if tenant_report.satisfied else 'FAIL'}"
            for tenant, tenant_report in sorted(report.tenants.items())
        )
        print(
            f"{label:<9}{verdicts:>28}{result.completion_rate:>12.3f}"
            f"{result.machine_hours():>15.3f}{result.cost():>10.0f}"
        )

    saved = results["static"].machine_hours() - results["burst"].machine_hours()
    print(f"\nMachine-hours saved by bursting vs static: {saved:.3f}")
    print("\nProvisioning timeline:")
    for event in results["burst"].provisioner.timeline:
        print(f"  t={event.time_s:>8.2f}s {event.action:<10} {event.cluster:<10} ({event.reason})")


if __name__ == "__main__":
    main()
