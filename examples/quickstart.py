"""Quickstart: simulate a Splitwise cluster and compare it with a baseline.

Generates a synthetic conversation trace (matching the Azure production trace
distributions from the paper), runs it through a Baseline-H100 cluster and a
Splitwise-HA cluster of the same machine count, and prints the latency and
SLO comparison.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import baseline_h100, generate_trace, simulate_design, splitwise_ha


def main() -> None:
    trace = generate_trace(workload="conversation", rate_rps=8.0, duration_s=60.0, seed=0)
    print(f"Trace: {len(trace)} requests over {trace.duration_s:.0f}s "
          f"(median prompt {sorted(trace.prompt_token_counts())[len(trace) // 2]} tokens)")

    designs = {
        "Baseline-H100": baseline_h100(4),
        "Splitwise-HA ": splitwise_ha(num_prompt=2, num_token=4),
    }

    print(f"\n{'design':<24}{'$/hr':>8}{'kW':>8}{'TTFT p50':>10}{'TTFT p90':>10}"
          f"{'TBT p90':>10}{'E2E p90':>10}{'SLO':>6}")
    for name, design in designs.items():
        result = simulate_design(design, trace)
        metrics = result.request_metrics()
        slo = result.slo_report()
        print(
            f"{name:<24}{design.cost_per_hour:>8.0f}{design.provisioned_power_kw:>8.1f}"
            f"{metrics.ttft.p50 * 1e3:>9.0f}ms{metrics.ttft.p90 * 1e3:>9.0f}ms"
            f"{metrics.tbt.p90 * 1e3:>9.0f}ms{metrics.e2e.p90:>9.1f}s"
            f"{'  ok' if slo.satisfied else ' VIOL':>6}"
        )

    print("\nSplitwise serves the same load with dedicated prompt machines (lower TTFT)")
    print("and cheaper A100 token machines (lower cost), as in the paper's Fig. 16/18.")


if __name__ == "__main__":
    main()
