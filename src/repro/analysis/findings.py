"""The finding record shared by the linter, the baseline, and the CLI.

A :class:`Finding` is one coded diagnostic anchored to a file and line.  The
``--json`` output mode, the committed baseline, and the human-readable table
all serialize findings through :meth:`Finding.as_dict`, so future tooling and
the CI artifact share one format.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic emitted by a simlint rule.

    Attributes:
        rule: Rule code, e.g. ``"SIM001"``.
        path: File the finding is in, as a ``/``-separated relative path.
        line: 1-indexed source line.
        col: 0-indexed column offset.
        message: What is wrong, specific to the offending expression.
        hint: How to fix it (or how to suppress it when justified).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by path, line, column, then rule code."""
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (the ``--json`` / artifact format)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One-line human-readable form: ``path:line:col: RULE message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text
