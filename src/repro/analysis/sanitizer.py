"""RunSanitizer: runtime checks for what static analysis cannot see.

Armed via ``REPRO_SANITIZE=1`` (or ``SimulationEngine(sanitize=True)``), the
sanitizer observes every schedule and step of the engine and raises
:class:`SanitizerError` — with the offending event's tag — the moment an
invariant breaks:

* **No scheduling into the past.**  The engine already rejects this with a
  ``ValueError``; sanitized runs upgrade it to a tagged ``SanitizerError``
  so fleet-level wrappers cannot swallow it as ordinary bad input.
* **Event-time monotonicity.**  Fired events must carry non-decreasing
  timestamps.  The public API cannot violate this, but heap corruption or a
  scheduler bypassing :meth:`SimulationEngine.schedule_at` can — exactly the
  bug class the planned sharded engine multiplies.
* **Named RNG-stream phase discipline.**  The repo's determinism rests on
  three independent RNG seams (trace / fault / retry, plus routing).  Each
  stream registers with the sanitizer as *setup-phase* (spent entirely
  before the event loop runs: trace, fault) or *run-phase* (drawn only
  inside event callbacks, in event order: retry, routing).  A draw observed
  in the wrong phase — e.g. fault randomness spent mid-run, where the draw
  order depends on event interleaving — is flagged at the draw site.
* **Event-census closure.**  At the end of every :meth:`SimulationEngine.run`
  window, every event ever scheduled must be accounted for: processed,
  cancelled, or still pending.  A leak means an event was lost without
  firing or being tombstoned.

The sanitizer only *observes*: it draws no randomness, schedules nothing,
and never perturbs event order, so a sanitized run is bit-identical to an
unsanitized one (property-tested in ``tests/property/test_sanitizer_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SanitizerError(AssertionError):
    """A simulation invariant was violated at runtime."""


@dataclass
class StreamRecord:
    """Bookkeeping for one named RNG stream.

    Attributes:
        name: Stream name (``"trace"``, ``"fault"``, ``"retry"``, ...).
        run_phase: ``True`` if draws belong inside event callbacks,
            ``False`` if the stream must be fully spent before the loop runs.
        draws: Draws observed so far (diagnostic only).
    """

    name: str
    run_phase: bool
    draws: int = 0


@dataclass
class RunSanitizer:
    """Observes one engine's run and raises on invariant violations.

    Attach by constructing the engine with ``sanitize=True`` (or exporting
    ``REPRO_SANITIZE=1``); components discover it via
    :attr:`SimulationEngine.sanitizer` and call :meth:`note_draw` at their
    RNG draw sites.
    """

    streams: dict[str, StreamRecord] = field(default_factory=dict)
    events_checked: int = 0
    closures_verified: int = 0
    _last_fired_time: float = field(default=float("-inf"), repr=False)
    _last_fired_tag: str = field(default="", repr=False)
    _in_event: bool = field(default=False, repr=False)

    # -- stream discipline -----------------------------------------------------

    def register_stream(self, name: str, run_phase: bool) -> StreamRecord:
        """Register (or re-arm) a named RNG stream.

        Re-registering an existing stream keeps its draw count but may not
        flip its phase — that would indicate two components claiming the
        same seam.
        """
        existing = self.streams.get(name)
        if existing is not None:
            if existing.run_phase != run_phase:
                raise SanitizerError(
                    f"RNG stream {name!r} re-registered with a different phase "
                    f"(run_phase={run_phase}, was {existing.run_phase})"
                )
            return existing
        record = StreamRecord(name=name, run_phase=run_phase)
        self.streams[name] = record
        return record

    def note_draw(self, name: str) -> None:
        """Record a draw from stream ``name``; flag wrong-phase draws.

        Raises:
            SanitizerError: if the stream is unregistered, or a setup-phase
                stream is drawn inside an event callback (draw order would
                then depend on event interleaving), or a run-phase stream is
                drawn outside one (draw order would escape the event order).
        """
        record = self.streams.get(name)
        if record is None:
            raise SanitizerError(
                f"draw from unregistered RNG stream {name!r}; register_stream() it "
                "with its owning phase before drawing"
            )
        if record.run_phase != self._in_event:
            where = "inside" if self._in_event else "outside"
            owner = "event callbacks" if record.run_phase else "pre-run setup"
            context = f" (during event {self._last_fired_tag!r})" if self._in_event else ""
            raise SanitizerError(
                f"RNG stream {name!r} drawn {where} the event loop{context} "
                f"but is owned by {owner}; draws would leave the stream's seam"
            )
        record.draws += 1

    # -- engine hooks ----------------------------------------------------------

    def check_schedule(self, now: float, time: float, tag: str) -> None:
        """Called by the engine before enqueuing an event."""
        if time < now:
            raise SanitizerError(
                f"event {tag or '<untagged>'!r} scheduled into the past: "
                f"t={time:.9f} < now={now:.9f}"
            )

    def before_fire(self, time: float, tag: str) -> None:
        """Called by the engine as an event reaches the head of the queue."""
        if time < self._last_fired_time:
            raise SanitizerError(
                f"event-time monotonicity violated: event {tag or '<untagged>'!r} "
                f"fires at t={time:.9f} after {self._last_fired_tag or '<untagged>'!r} "
                f"already fired at t={self._last_fired_time:.9f}"
            )
        self._last_fired_time = time
        self._last_fired_tag = tag
        self._in_event = True
        self.events_checked += 1

    def after_fire(self) -> None:
        """Called by the engine after the event's action returns."""
        self._in_event = False

    def verify_closure(
        self, scheduled: int, processed: int, cancelled: int, pending: int
    ) -> None:
        """End-of-run census: every scheduled event is accounted for.

        Raises:
            SanitizerError: if ``processed + cancelled + pending`` does not
                equal the number of events ever scheduled.
        """
        accounted = processed + cancelled + pending
        if accounted != scheduled:
            raise SanitizerError(
                f"event census leak: {scheduled} scheduled != {processed} processed "
                f"+ {cancelled} cancelled + {pending} pending (= {accounted})"
            )
        self.closures_verified += 1

    def snapshot(self) -> dict[str, object]:
        """Diagnostic summary (draw counts per stream, events observed)."""
        return {
            "events_checked": self.events_checked,
            "closures_verified": self.closures_verified,
            "streams": {name: record.draws for name, record in sorted(self.streams.items())},
        }
