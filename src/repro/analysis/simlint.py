"""simlint: the determinism & simulation-invariant linter's driver and CLI.

Walks Python files, runs every registered rule (:mod:`repro.analysis.rules`)
over each module's AST, applies inline pragmas and the committed baseline,
and reports coded findings with ``file:line``, a fix hint, and machine- or
human-readable output.

Usage::

    python -m repro.analysis.simlint [paths...] [--json] [--baseline FILE]
    repro-sim lint [paths...] [--json]

Suppression, most-local first:

* ``# simlint: disable=SIM002,SIM007`` as a trailing comment on the
  offending line (or a standalone comment on the line directly above)
  suppresses those rules for that line — use for point justifications that
  should live next to the code.
* ``# simlint: disable-file=SIM003`` anywhere in a file suppresses a rule
  for the whole module.
* the committed baseline (``.simlint-baseline.json``) accepts documented
  findings repo-wide; stale entries are reported so it cannot rot.

Exit codes: 0 — no unbaselined findings; 1 — findings (or stale baseline
entries under ``--strict-baseline``); 2 — usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineResult
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY, ModuleContext, iter_rules

_PRAGMA_MARKER = "# simlint:"


def _parse_pragmas(lines: list[str]) -> tuple[dict[int, set[str]], set[str]]:
    """Extract line-level and file-level disable pragmas.

    Returns:
        ``(by_line, file_wide)`` where ``by_line`` maps a 1-indexed source
        line to the rule codes disabled *on* that line.
    """
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for index, line in enumerate(lines, start=1):
        marker = line.find(_PRAGMA_MARKER)
        if marker < 0:
            continue
        directive = line[marker + len(_PRAGMA_MARKER):].strip()
        # Anything after the rule list (e.g. "- justification text") is prose.
        for prefix, target in (("disable-file=", None), ("disable=", index)):
            if not directive.startswith(prefix):
                continue
            spec = directive[len(prefix):].split()[0] if directive[len(prefix):] else ""
            rules = {code.strip() for code in spec.split(",") if code.strip()}
            if target is None:
                file_wide |= rules
            else:
                by_line.setdefault(target, set()).update(rules)
                stripped = line[:marker].strip()
                if not stripped:
                    # Standalone pragma comment: applies to the next line too.
                    by_line.setdefault(index + 1, set()).update(rules)
            break
    return by_line, file_wide


def _suppressed(finding: Finding, by_line: dict[int, set[str]], file_wide: set[str]) -> bool:
    if finding.rule in file_wide:
        return True
    at_line = by_line.get(finding.line, ())
    return finding.rule in at_line


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module given as source text (the test-facing API).

    Args:
        source: Python source code.
        path: The path the module should be attributed to — rules use it for
            scoping (test exemptions, allowlists, ordering-sensitive dirs).

    Returns:
        Pragma-filtered findings, sorted by location.  Baseline application
        is the caller's concern (:func:`run_lint` wires it for the CLI).

    Raises:
        SyntaxError: if the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = ModuleContext(path=path, tree=tree, lines=lines)
    findings: list[Finding] = []
    for rule in iter_rules(ctx):
        findings.extend(rule.run())
    by_line, file_wide = _parse_pragmas(lines)
    kept = [f for f in findings if not _suppressed(f, by_line, file_wide)]
    kept.sort(key=Finding.sort_key)
    return kept


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    seen: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            seen.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            seen.append(path)
    deduped: dict[str, Path] = {}
    for path in seen:
        deduped.setdefault(path.as_posix(), path)
    return iter(deduped.values())


def _relative_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Sequence[str | Path]) -> tuple[list[Finding], int]:
    """Lint every Python file under ``paths``.

    Returns:
        ``(findings, files_checked)``; unparseable files produce a synthetic
        ``SIM000`` finding rather than aborting the run.
    """
    findings: list[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        rel = _relative_path(path)
        checked += 1
        try:
            findings.extend(lint_source(path.read_text(), path=rel))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="SIM000",
                    path=rel,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    message=f"syntax error: {error.msg}",
                    hint="simlint only analyzes files that parse",
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings, checked


def _find_default_baseline() -> Path | None:
    """Look for the committed baseline at cwd and its ancestors."""
    for directory in (Path.cwd(), *Path.cwd().parents):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


def run_lint(
    paths: Sequence[str],
    baseline_path: str | None = None,
    use_baseline: bool = True,
) -> tuple[BaselineResult, int, Baseline | None]:
    """Lint ``paths`` and apply the baseline (the CLI's engine).

    Returns:
        ``(result, files_checked, baseline)`` where ``result`` carries the
        unbaselined, suppressed, and stale-entry partitions.
    """
    findings, checked = lint_paths(paths)
    baseline: Baseline | None = None
    if use_baseline:
        resolved = Path(baseline_path) if baseline_path else _find_default_baseline()
        if resolved is not None and resolved.is_file():
            baseline = Baseline.load(resolved)
    if baseline is None:
        return BaselineResult(unbaselined=findings), checked, None
    return baseline.apply(findings), checked, baseline


def _payload(result: BaselineResult, checked: int, baseline: Baseline | None) -> dict[str, object]:
    """The ``--json`` document (shared with the CI artifact)."""
    return {
        "version": 1,
        "files_checked": checked,
        "findings": [f.as_dict() for f in result.unbaselined],
        "baselined": [f.as_dict() for f in result.suppressed],
        "stale_baseline_entries": [e.as_dict() for e in result.stale],
        "baseline": baseline.source if baseline else None,
        "rules": {
            rule_id: cls.summary for rule_id, cls in sorted(RULE_REGISTRY.items())
        },
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="determinism & simulation-invariant linter for the repro codebase",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files/directories to lint")
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON findings")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: nearest {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="accept every current finding into FILE and exit 0")
    parser.add_argument("--baseline-note", default="accepted at baseline creation",
                        help="justification note recorded by --write-baseline")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="fail (exit 1) when the baseline has stale entries")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, cls in sorted(RULE_REGISTRY.items()):
            print(f"{rule_id}  {cls.summary}")
        return 0

    if args.write_baseline:
        findings, checked = lint_paths(args.paths)
        Baseline.from_findings(findings, note=args.baseline_note).write(args.write_baseline)
        print(f"wrote {len(findings)} finding(s) from {checked} file(s) to {args.write_baseline}")
        return 0

    try:
        result, checked, baseline = run_lint(
            args.paths, baseline_path=args.baseline, use_baseline=not args.no_baseline
        )
    except ValueError as error:  # malformed baseline
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(_payload(result, checked, baseline), indent=2))
    else:
        for finding in result.unbaselined:
            print(finding.render())
        for entry in result.stale:
            print(
                f"stale baseline entry: {entry.rule} {entry.path}"
                + (f":{entry.line}" if entry.line is not None else "")
                + f" ({entry.note}) no longer matches anything"
            )
        summary = (
            f"simlint: {checked} file(s), {len(result.unbaselined)} finding(s), "
            f"{len(result.suppressed)} baselined, {len(result.stale)} stale baseline entr(ies)"
        )
        print(summary)
    if result.unbaselined:
        return 1
    if args.strict_baseline and result.stale:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
