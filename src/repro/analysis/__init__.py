"""Static analysis and runtime sanitization for simulation invariants.

Every number this reproduction reports rests on bit-identical,
seed-deterministic simulation: three independent RNG seams (trace / fault /
retry), ``(time, priority, sequence)`` event ordering, and attempt-census
closure.  This package enforces those invariants *before* a violation can
corrupt a result:

* :mod:`repro.analysis.simlint` — an AST linter with repo-specific rules
  (``SIM001``–``SIM007``: unseeded randomness, wall-clock reads, set-ordering
  hazards, event-priority discipline, frozen-config mutation, exact float
  time comparison, stray ``os.environ`` reads).  CLI:
  ``python -m repro.analysis.simlint [paths]`` or ``repro-sim lint``.
* :mod:`repro.analysis.rules` — the rule registry; each rule is a small
  ``ast.NodeVisitor`` so future PRs add rules cheaply.
* :mod:`repro.analysis.baseline` — committed-baseline support for the
  documented findings that are justified rather than fixed.
* :mod:`repro.analysis.sanitizer` — :class:`RunSanitizer`, the runtime half:
  armed via ``REPRO_SANITIZE=1`` (or ``SimulationEngine(sanitize=True)``) it
  asserts event-time monotonicity, no scheduling into the past, named
  RNG-stream phase discipline, and end-of-run event-census closure, raising
  :class:`SanitizerError` with the offending event tag.  A sanitized run is
  bit-identical to an unsanitized one (property-tested).

See ``docs/static-analysis.md`` for the rule catalog and workflows.
"""

from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY, Rule
from repro.analysis.sanitizer import RunSanitizer, SanitizerError

__all__ = ["Finding", "RULE_REGISTRY", "Rule", "RunSanitizer", "SanitizerError"]
