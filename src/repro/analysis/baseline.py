"""Committed-baseline support for documented, justified findings.

The baseline is a JSON file (``.simlint-baseline.json`` at the repo root)
listing findings that are *accepted*: each entry names the rule, the file,
optionally the line, and a mandatory human-readable justification note.  The
linter subtracts baselined findings from its report; entries that no longer
match anything are reported as *stale* so the baseline cannot silently rot.

Matching is by ``(rule, path)`` plus, when the entry pins a ``line``, the
exact line number.  A line-less entry accepts every finding of that rule in
that file — use it for findings that move with unrelated edits, and pinned
lines for point justifications.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

DEFAULT_BASELINE_NAME = ".simlint-baseline.json"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One accepted finding.

    Attributes:
        rule: Rule code the entry suppresses.
        path: File the entry applies to (``/``-separated relative path).
        line: Exact line to match, or ``None`` to match the whole file.
        note: Why the finding is accepted (required; an un-justified
            suppression is a lint error in itself).
    """

    rule: str
    path: str
    line: int | None
    note: str

    def matches(self, finding: Finding) -> bool:
        """Whether this entry suppresses ``finding``."""
        if self.rule != finding.rule or self.path != finding.path:
            return False
        return self.line is None or self.line == finding.line

    def as_dict(self) -> dict[str, object]:
        data: dict[str, object] = {"rule": self.rule, "path": self.path}
        if self.line is not None:
            data["line"] = self.line
        data["note"] = self.note
        return data


@dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: tuple[BaselineEntry, ...] = ()
    source: str = ""

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file.

        Raises:
            ValueError: on a malformed file (wrong version, missing fields,
                or an entry without a justification note).
        """
        raw = json.loads(Path(path).read_text())
        if not isinstance(raw, dict) or raw.get("version") != 1:
            raise ValueError(f"{path}: expected a simlint baseline with version 1")
        entries = []
        for item in raw.get("entries", []):
            try:
                entry = BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    line=None if item.get("line") is None else int(item["line"]),
                    note=str(item["note"]),
                )
            except KeyError as missing:
                raise ValueError(f"{path}: baseline entry {item!r} lacks {missing}") from None
            if not entry.note.strip():
                raise ValueError(f"{path}: baseline entry for {entry.path} has an empty note")
            entries.append(entry)
        return cls(entries=tuple(entries), source=str(path))

    @classmethod
    def from_findings(cls, findings: list[Finding], note: str) -> "Baseline":
        """Build a baseline accepting every given finding (``--write-baseline``)."""
        entries = tuple(
            BaselineEntry(rule=f.rule, path=f.path, line=f.line, note=note or f.message)
            for f in sorted(findings, key=Finding.sort_key)
        )
        return cls(entries=entries)

    def write(self, path: str | Path) -> None:
        """Serialize to ``path`` in the version-1 JSON format."""
        payload = {"version": 1, "entries": [entry.as_dict() for entry in self.entries]}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def apply(self, findings: list[Finding]) -> "BaselineResult":
        """Split findings into unbaselined vs suppressed; spot stale entries."""
        unbaselined: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[BaselineEntry] = set()
        for finding in findings:
            entry = next((e for e in self.entries if e.matches(finding)), None)
            if entry is None:
                unbaselined.append(finding)
            else:
                suppressed.append(finding)
                used.add(entry)
        stale = [entry for entry in self.entries if entry not in used]
        return BaselineResult(unbaselined=unbaselined, suppressed=suppressed, stale=stale)


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    unbaselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
