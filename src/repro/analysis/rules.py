"""The simlint rule registry: one small AST visitor per invariant.

Every rule is a subclass of :class:`Rule` registered under its ``SIMxxx``
code.  A rule sees one module at a time through a :class:`ModuleContext`
(path, parsed tree, raw lines) and appends :class:`Finding` records.  Rules
are deliberately *heuristic but low-noise*: each one targets a concrete way
a contributor can break seed-determinism or bit-reproducibility, and each
ships with firing and near-miss test fixtures (``tests/unit/test_simlint.py``).

Adding a rule: subclass :class:`Rule`, set ``rule_id``/``summary``, implement
the relevant ``visit_*`` methods, decorate with :func:`register`, and add it
to the catalog in ``docs/static-analysis.md`` plus both test fixtures.

Path scoping conventions (see :class:`ModuleContext` helpers):

* test and benchmark code is exempt from the runtime-determinism rules —
  tests may read clocks and draw ad-hoc randomness;
* ``SIM003`` only applies inside the ordering-sensitive packages
  (``simulation/``, ``core/``, ``fleet/``, ``faults/``) where iteration
  order feeds event scheduling or routing/placement decisions;
* ``SIM002``/``SIM007`` carry explicit allowlists for the modules whose job
  *is* wall-clock timing (``metrics/perf.py``) or process configuration
  (``cli.py``).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.findings import Finding

#: Packages whose iteration order can feed event scheduling or routing /
#: placement decisions (SIM003's scope).
ORDER_SENSITIVE_DIRS = ("simulation/", "core/", "fleet/", "faults/")

#: Modules allowed to read the wall clock (SIM002): performance measurement
#: and CLI timing display are *about* wall time; benchmarks measure it, and
#: the observability phase profiler attributes it (never armed by the
#: simulation itself — only the perf bench attaches it).
WALL_CLOCK_ALLOWLIST = ("metrics/perf.py", "cli.py", "obs/profiler.py")
WALL_CLOCK_ALLOWED_DIRS = ("benchmarks/",)

#: Modules allowed to read process environment (SIM007): the CLI and
#: explicit configuration modules.  Everything else must take configuration
#: as arguments so runs are reproducible from their inputs alone.  The shard
#: scheduler's *worker bootstrap* is the one sanctioned exception: picking a
#: multiprocessing start method configures the host process topology, never
#: simulated behavior (any start method yields bit-identical results), so it
#: may read ``REPRO_PARALLEL_START_METHOD`` without making runs env-dependent.
ENVIRON_ALLOWLIST = ("cli.py", "simulation/sharding.py")
ENVIRON_ALLOWED_SUFFIXES = ("config.py",)

#: Stdlib ``random`` module-level functions that draw from (or reseed) the
#: shared global Mersenne state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` legacy global-state API (anything that is not the
#: Generator construction surface).
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time", "time.clock_gettime",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
        "datetime.date.today", "date.today",
    }
)

_SCHEDULE_METHODS = frozenset({"schedule", "schedule_at", "schedule_after", "schedule_recurring"})

#: Names/suffixes that mark an expression as a simulated-time value (SIM006).
_TIME_NAME_EXACT = frozenset({"now", "_now", "time", "time_s", "deadline", "deadline_s"})
_TIME_NAME_SUFFIXES = ("_time", "_time_s", "_deadline_s")


class ModuleContext:
    """Everything a rule needs to know about the module being linted."""

    def __init__(self, path: str, tree: ast.Module, lines: list[str]) -> None:
        self.path = path.replace("\\", "/")
        self.tree = tree
        self.lines = lines

    @property
    def is_test_code(self) -> bool:
        """Test/benchmark/example code: exempt from runtime-determinism rules."""
        parts = self.path.split("/")
        if any(part in ("tests", "benchmarks", "examples") for part in parts[:-1]):
            return True
        name = parts[-1]
        return name.startswith("test_") or name == "conftest.py"

    @property
    def is_analysis_tooling(self) -> bool:
        """The linter/sanitizer package itself (dev tooling, not simulation)."""
        return "/analysis/" in self.path or self.path.startswith("analysis/")

    def in_dirs(self, dirs: tuple[str, ...]) -> bool:
        """Whether the module lives under any of the given directory names."""
        return any(f"/{d}" in self.path or self.path.startswith(d) for d in dirs)

    def endswith_any(self, suffixes: tuple[str, ...]) -> bool:
        return any(self.path.endswith(s) for s in suffixes)


class Rule(ast.NodeVisitor):
    """Base class for simlint rules: a per-module AST visitor."""

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, ctx: ModuleContext) -> bool:
        """Path-level gate; rules override to scope themselves."""
        return not ctx.is_test_code

    def run(self) -> list[Finding]:
        """Visit the module and return this rule's findings."""
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str, hint: str = "") -> None:
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                hint=hint,
            )
        )


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (keyed by ``rule_id``)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def dotted_name(node: ast.AST) -> str | None:
    """Best-effort dotted name of an attribute chain (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRandomness(Rule):
    """SIM001: randomness must come from an explicitly seeded generator.

    Fires on global-state draws (``random.random()``, legacy
    ``np.random.rand()``), on unseeded generator construction
    (``np.random.default_rng()`` / ``random.Random()`` with no seed
    expression), and — inside the ordering-sensitive packages — on *seeded*
    stdlib ``random.Random`` streams, which are accepted only with a
    baseline justification (the repo's RNG seams are ``np.random.Generator``
    based; a justified stdlib stream must say why).
    """

    rule_id = "SIM001"
    summary = "unseeded or global-state randomness"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            self._check_named_call(node, name)
        self.generic_visit(node)

    def _check_named_call(self, node: ast.Call, name: str) -> None:
        if name.startswith("random.") and name.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
            self.report(
                node,
                f"call to the global stdlib RNG ({name}) — state is shared and unseeded",
                "draw from an explicitly seeded np.random.Generator threaded from the caller",
            )
            return
        if name in ("np.random.default_rng", "numpy.random.default_rng", "default_rng"):
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "default_rng() without a seed gives a fresh OS-entropy stream",
                    "pass an explicit seed expression, e.g. default_rng(config.seed)",
                )
            return
        if name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_OK:
                self.report(
                    node,
                    f"legacy numpy global-state RNG call ({name})",
                    "use an explicitly seeded np.random.Generator instead",
                )
            return
        if name in ("random.Random", "random.SystemRandom"):
            if name.endswith("SystemRandom") or (not node.args and not node.keywords):
                self.report(
                    node,
                    f"{name}() without an explicit seed expression",
                    "pass a seed derived from the run configuration",
                )
            elif self.ctx.in_dirs(ORDER_SENSITIVE_DIRS):
                self.report(
                    node,
                    "seeded stdlib random.Random stream in a simulation-critical module",
                    "migrate to np.random.Generator, or justify the stream in the baseline",
                )


@register
class WallClockRead(Rule):
    """SIM002: simulated components must never read the wall clock."""

    rule_id = "SIM002"
    summary = "wall-clock read outside the timing allowlist"

    @classmethod
    def applies_to(cls, ctx: ModuleContext) -> bool:
        if ctx.is_test_code or ctx.in_dirs(WALL_CLOCK_ALLOWED_DIRS):
            return False
        return not ctx.endswith_any(WALL_CLOCK_ALLOWLIST)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock read ({name}) in simulated code",
                "use engine.now for simulated time; real timing belongs in metrics/perf.py",
            )
        self.generic_visit(node)


class _SetTracker(ast.NodeVisitor):
    """Collects names/attributes statically known to hold a set.

    Tracks plain assignments from set displays/comprehensions and
    ``set()``/``frozenset()`` calls, plus ``set[...]`` annotations — for both
    local names and ``self.<attr>`` attributes.
    """

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def _target_key(self, target: ast.AST) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    def _note(self, target: ast.AST, is_set: bool) -> None:
        key = self._target_key(target)
        if key is None:
            return
        if is_set:
            self.set_names.add(key)
        else:
            self.set_names.discard(key)  # rebound to something else

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note(target, is_set_expr(node.value, self.set_names))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        annotated_set = _is_set_annotation(node.annotation)
        value_set = node.value is not None and is_set_expr(node.value, self.set_names)
        self._note(node.target, annotated_set or value_set)
        self.generic_visit(node)


def _is_set_annotation(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: "set[int]"
        head = annotation.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")
    name = dotted_name(annotation)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")


def is_set_expr(node: ast.AST, known_sets: set[str]) -> bool:
    """Whether ``node`` statically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        # set-producing expressions that preserve setness: s.union(...), a | b
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return is_set_expr(node.left, known_sets) or is_set_expr(node.right, known_sets)
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) and node.value.id == "self":
        return f"self.{node.attr}" in known_sets
    return False


@register
class SetOrderingHazard(Rule):
    """SIM003: iterating a set where order can reach scheduling decisions.

    Python set iteration order depends on ``PYTHONHASHSEED`` (for str keys)
    and insertion history; inside the event-scheduling and routing packages
    that silently changes event order between runs.  Wrap the iteration in
    ``sorted(...)`` with a deterministic key, or keep an insertion-ordered
    list/dict next to the set (the ``MachinePool`` pattern).
    """

    rule_id = "SIM003"
    summary = "set iteration order feeding simulation decisions"

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        tracker = _SetTracker()
        tracker.visit(ctx.tree)
        self._known_sets = tracker.set_names

    @classmethod
    def applies_to(cls, ctx: ModuleContext) -> bool:
        if ctx.is_test_code or ctx.is_analysis_tooling:
            return False
        return ctx.in_dirs(ORDER_SENSITIVE_DIRS)

    def _check_iterable(self, node: ast.AST, where: str) -> None:
        if is_set_expr(node, self._known_sets):
            self.report(
                node,
                f"{where} iterates a set — order depends on the hash seed",
                "wrap in sorted(..., key=...) or iterate an insertion-ordered companion list",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Iterating a set into another set keeps it unordered: harmless.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("list", "tuple", "iter", "enumerate", "next") and node.args:
            self._check_iterable(node.args[0], f"{name}()")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and not node.args
            and is_set_expr(node.func.value, self._known_sets)
        ):
            self.report(
                node,
                "set.pop() removes an arbitrary, hash-seed-dependent element",
                "pop from a deterministic structure (list/deque) or sort first",
            )
        self.generic_visit(node)


@register
class EventPriorityDiscipline(Rule):
    """SIM004: ``engine.schedule*(...)`` must name its priority.

    The same-timestamp priority ladder is centralized in
    ``repro/simulation/events.py``; a bare integer at a call site silently
    re-derives the ladder and rots when it changes.
    """

    rule_id = "SIM004"
    summary = "bare integer event priority"

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SCHEDULE_METHODS:
            for keyword in node.keywords:
                if keyword.arg == "priority":
                    self._check_priority(keyword.value)
        self.generic_visit(node)

    def _check_priority(self, value: ast.AST) -> None:
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            self.report(
                value,
                f"bare integer event priority {value.value}",
                "pass a named *_PRIORITY constant from repro.simulation.events",
            )
            return
        name = dotted_name(value)
        if name is None:
            return  # computed priority: assume the expression names its inputs
        leaf = name.rsplit(".", 1)[-1]
        if not (leaf.endswith("_PRIORITY") or leaf.endswith("PRIORITY") or leaf == "priority"):
            self.report(
                value,
                f"event priority {name!r} is not a named *_PRIORITY constant",
                "alias it to a *_PRIORITY name or use repro.simulation.events constants",
            )


@register
class FrozenConfigMutation(Rule):
    """SIM005: ``object.__setattr__`` may only bypass frozenness on ``self``.

    Frozen dataclasses (configs, events) are frozen so shared state cannot
    drift mid-run.  The declaring class may use ``object.__setattr__(self,
    ...)`` in narrow helpers (``Event._mark_cancelled``); reaching into
    *another* object's frozen state breaks the contract invisibly.
    """

    rule_id = "SIM005"
    summary = "frozen-instance mutation from outside the declaring class"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("object.__setattr__", "object.__delattr__") and node.args:
            first = node.args[0]
            if not (isinstance(first, ast.Name) and first.id == "self"):
                self.report(
                    node,
                    f"{name} on a foreign instance mutates frozen state from outside its class",
                    "add a narrow mutation helper on the owning class instead",
                )
        self.generic_visit(node)


@register
class ExactTimeComparison(Rule):
    """SIM006: simulated-time floats must not be compared with ``==``/``!=``.

    Two independently computed simulated times that are *intended* to
    coincide differ in the last ulp often enough that exact comparison is a
    latent ordering bug; use a tolerance or compare event identities.
    Comparisons against literal sentinels (``0.0``, ``-1.0``) and ``None``
    are exempt — those are state flags, not computed times.
    """

    rule_id = "SIM006"
    summary = "exact == on simulated-time floats"

    @staticmethod
    def _is_time_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            leaf = node.attr
        elif isinstance(node, ast.Name):
            leaf = node.id
        else:
            return False
        return leaf in _TIME_NAME_EXACT or leaf.endswith(_TIME_NAME_SUFFIXES)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for a, b in ((left, right), (right, left)):
                if self._is_time_expr(a) and not isinstance(b, ast.Constant):
                    self.report(
                        node,
                        "exact ==/!= comparison of simulated-time values",
                        "compare with a tolerance (math.isclose) or compare identities",
                    )
                    break
        self.generic_visit(node)


@register
class EnvironRead(Rule):
    """SIM007: environment reads belong in the CLI / config layer.

    A component that reads ``os.environ`` mid-stack takes hidden input: two
    runs with identical arguments can differ.  Thread configuration through
    constructors; the narrow debug/perf toggles that genuinely must stay
    env-driven carry inline ``# simlint: disable=SIM007`` pragmas with their
    justification.
    """

    rule_id = "SIM007"
    summary = "os.environ read outside the CLI/config layer"

    @classmethod
    def applies_to(cls, ctx: ModuleContext) -> bool:
        if ctx.is_test_code or ctx.is_analysis_tooling:
            return False
        return not (ctx.endswith_any(ENVIRON_ALLOWLIST) or ctx.endswith_any(ENVIRON_ALLOWED_SUFFIXES))

    def _report_env(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} read outside the CLI/config layer",
            "thread the setting through a constructor argument, or pragma with a justification",
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("os.getenv", "os.environ.get"):
            self._report_env(node, name)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if dotted_name(node.value) == "os.environ":
            self._report_env(node, "os.environ[...]")
        self.generic_visit(node)


def iter_rules(ctx: ModuleContext) -> Iterator[Rule]:
    """Instantiate every registered rule that applies to ``ctx``."""
    for rule_id in sorted(RULE_REGISTRY):
        cls = RULE_REGISTRY[rule_id]
        if cls.applies_to(ctx):
            yield cls(ctx)
