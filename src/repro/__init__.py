"""repro: a reproduction of "Splitwise: Efficient Generative LLM Inference
Using Phase Splitting" (ISCA 2024).

The package implements the paper's full stack in Python:

* hardware, LLM, performance, memory, and power models calibrated to the
  paper's characterization of DGX-A100 / DGX-H100 machines;
* synthetic workload generators matching the published Azure coding and
  conversation trace distributions;
* a discrete-event cluster simulator with mixed continuous batching,
  Splitwise's two-level scheduling (cluster-level JSQ routing with
  prompt/token/mixed pools, machine-level FCFS batching), and optimized
  KV-cache transfer;
* the four Splitwise cluster designs plus the two baselines, and the
  provisioning framework that sizes clusters for iso-power, iso-cost, and
  iso-throughput targets.

Quickstart::

    from repro import splitwise_ha, generate_trace, simulate_design

    trace = generate_trace("conversation", rate_rps=20, duration_s=60)
    result = simulate_design(splitwise_ha(num_prompt=6, num_token=4), trace)
    print(result.request_metrics())
"""

from repro.core.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.core.cluster import ClusterSimulation, SimulationResult, simulate_design, simulate_designs
from repro.core.cluster_scheduler import ClusterScheduler
from repro.core.designs import (
    ClusterDesign,
    baseline_a100,
    baseline_h100,
    get_design_family,
    splitwise_aa,
    splitwise_ha,
    splitwise_hh,
    splitwise_hhcap,
)
from repro.core.kv_transfer import KVTransferModel, TransferMode
from repro.core.machine import MachineRole, SimulatedMachine
from repro.core.provisioning import (
    OptimizationGoal,
    Provisioner,
    ProvisioningConstraints,
    ProvisioningResult,
    find_max_throughput,
)
from repro.fleet import (
    FleetProvisioner,
    FleetProvisionerConfig,
    FleetResult,
    FleetRouter,
    FleetSimulation,
)
from repro.hardware import DGX_A100, DGX_H100, DGX_H100_CAPPED, GPU_A100, GPU_H100, GpuSpec, MachineSpec
from repro.metrics.slo import DEFAULT_SLO, SloPolicy, SloReport
from repro.metrics.summary import LatencySummary, RequestMetrics
from repro.models.llm import BLOOM_176B, LLAMA2_70B, ModelSpec
from repro.models.memory import MemoryModel
from repro.models.performance import (
    AnalyticalPerformanceModel,
    BatchSpec,
    PerformanceModel,
    ProfiledPerformanceModel,
)
from repro.models.power import PowerModel
from repro.simulation.request import Request, RequestPhase
from repro.workload.distributions import CODING_WORKLOAD, CONVERSATION_WORKLOAD, WorkloadSpec, get_workload
from repro.workload.generator import TraceGenerator, generate_trace
from repro.workload.scenarios import (
    SCENARIO_PRESETS,
    MarkovModulatedArrival,
    PiecewiseRateArrival,
    Scenario,
    SinusoidalDiurnalArrival,
    concat_traces,
    get_scenario,
    mix_traces,
    splice_traces,
)
from repro.workload.trace import RequestDescriptor, Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # hardware
    "GpuSpec",
    "MachineSpec",
    "GPU_A100",
    "GPU_H100",
    "DGX_A100",
    "DGX_H100",
    "DGX_H100_CAPPED",
    # models
    "ModelSpec",
    "LLAMA2_70B",
    "BLOOM_176B",
    "MemoryModel",
    "PowerModel",
    "PerformanceModel",
    "AnalyticalPerformanceModel",
    "ProfiledPerformanceModel",
    "BatchSpec",
    # workload
    "WorkloadSpec",
    "CODING_WORKLOAD",
    "CONVERSATION_WORKLOAD",
    "get_workload",
    "TraceGenerator",
    "generate_trace",
    "Trace",
    "RequestDescriptor",
    # time-varying scenarios
    "PiecewiseRateArrival",
    "SinusoidalDiurnalArrival",
    "MarkovModulatedArrival",
    "Scenario",
    "SCENARIO_PRESETS",
    "get_scenario",
    "concat_traces",
    "splice_traces",
    "mix_traces",
    # simulation
    "Request",
    "RequestPhase",
    # core
    "KVTransferModel",
    "TransferMode",
    "SimulatedMachine",
    "MachineRole",
    "ClusterScheduler",
    "PoolAutoscaler",
    "AutoscalerConfig",
    "ClusterSimulation",
    "SimulationResult",
    "simulate_design",
    "simulate_designs",
    "ClusterDesign",
    "baseline_a100",
    "baseline_h100",
    "splitwise_aa",
    "splitwise_hh",
    "splitwise_ha",
    "splitwise_hhcap",
    "get_design_family",
    "Provisioner",
    "ProvisioningConstraints",
    "ProvisioningResult",
    "OptimizationGoal",
    "find_max_throughput",
    # fleet
    "FleetSimulation",
    "FleetResult",
    "FleetRouter",
    "FleetProvisioner",
    "FleetProvisionerConfig",
    # metrics
    "LatencySummary",
    "RequestMetrics",
    "SloPolicy",
    "SloReport",
    "DEFAULT_SLO",
]
