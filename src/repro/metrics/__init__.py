"""Metrics: latency summaries, batch-occupancy accounting, SLOs, cost/power.

The paper reports four request-level metrics (Table II) — end-to-end latency,
time to first token, time between tokens, and throughput — plus cluster-level
metrics: time spent at each active-batched-token count (Figs. 4, 17), machine
power and energy, and cost.  SLOs (Table VI) are expressed as percentile
slowdowns relative to an uncontended DGX-A100 request.
"""

from repro.metrics.collectors import BatchOccupancyTracker, MetricsCollector
from repro.metrics.perf import (
    SCALING_SCENARIOS,
    PerfSample,
    PerfScenario,
    build_bench_report,
    run_perf_scenario,
    write_bench_report,
)
from repro.metrics.slo import DEFAULT_SLO, SloPolicy, SloReport
from repro.metrics.summary import LatencySummary, RequestMetrics, percentile, summarize_requests

__all__ = [
    "MetricsCollector",
    "BatchOccupancyTracker",
    "LatencySummary",
    "RequestMetrics",
    "percentile",
    "summarize_requests",
    "SloPolicy",
    "SloReport",
    "DEFAULT_SLO",
    "PerfScenario",
    "PerfSample",
    "SCALING_SCENARIOS",
    "run_perf_scenario",
    "build_bench_report",
    "write_bench_report",
]
