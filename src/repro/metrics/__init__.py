"""Metrics: latency summaries, batch-occupancy accounting, SLOs, cost/power.

The paper reports four request-level metrics (Table II) — end-to-end latency,
time to first token, time between tokens, and throughput — plus cluster-level
metrics: time spent at each active-batched-token count (Figs. 4, 17), machine
power and energy, and cost.  SLOs (Table VI) are expressed as percentile
slowdowns relative to an uncontended DGX-A100 request.
"""

from repro.metrics.collectors import BatchOccupancyTracker, MetricsCollector, request_outcomes
from repro.metrics.perf import (
    SCALING_SCENARIOS,
    PerfSample,
    PerfScenario,
    build_bench_report,
    run_perf_scenario,
    write_bench_report,
)
from repro.metrics.slo import (
    DEFAULT_SLO,
    SloPolicy,
    SloReport,
    TenantSloReport,
    empty_slo_report,
    evaluate_slo,
    evaluate_slo_by_tenant,
)
from repro.metrics.summary import LatencySummary, RequestMetrics, percentile, summarize_requests
from repro.metrics.token_log import TokenLog

__all__ = [
    "MetricsCollector",
    "BatchOccupancyTracker",
    "request_outcomes",
    "TokenLog",
    "LatencySummary",
    "RequestMetrics",
    "percentile",
    "summarize_requests",
    "SloPolicy",
    "SloReport",
    "TenantSloReport",
    "DEFAULT_SLO",
    "evaluate_slo",
    "evaluate_slo_by_tenant",
    "empty_slo_report",
    "PerfScenario",
    "PerfSample",
    "SCALING_SCENARIOS",
    "run_perf_scenario",
    "build_bench_report",
    "write_bench_report",
]
