"""Simulator performance measurement (events/sec and requests/sec).

Unlike the rest of :mod:`repro.metrics`, which measures the *simulated*
cluster, this module measures the *simulator itself*: how fast the
discrete-event engine chews through a cluster-scale scenario on the host
machine.  It drives the perf-tracking harness (``BENCH_perf.json``) that the
roadmap's "as fast as the hardware allows" north star is tracked against —
every future PR can compare its numbers to the recorded trajectory.

The scaling scenarios deliberately run the cluster in the short-burst
saturation regime of the paper's robustness study (§VI-G): arrival rate far
above provisioned throughput, so machine queues grow long.  That is exactly
where naive O(queue-length) accounting makes simulation cost quadratic in
trace length, and where the incremental-accounting hot path keeps it linear.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Mapping


@dataclass(frozen=True)
class PerfScenario:
    """One self-benchmark configuration.

    Attributes:
        name: Scenario label (keys the benchmark report).
        num_prompt: Prompt-pool machines in the Splitwise-HH cluster.
        num_token: Token-pool machines.
        rate_rps: Arrival rate of the Poisson burst.
        num_requests: Approximate number of requests in the trace (the trace
            duration is derived as ``num_requests / rate_rps``).
        workload: Workload name for the token-size distributions.
        seed: Trace generation seed (scenarios are fully deterministic).
    """

    name: str
    num_prompt: int
    num_token: int
    rate_rps: float
    num_requests: int
    workload: str = "conversation"
    seed: int = 0

    @property
    def num_machines(self) -> int:
        """Total machines in the scenario's cluster."""
        return self.num_prompt + self.num_token

    @property
    def duration_s(self) -> float:
        """Trace duration implied by the request count and rate."""
        return self.num_requests / self.rate_rps


#: The scaling ladder used by ``benchmarks/test_perf_scaling.py``: 4, 16 and
#: 40 machines under a 12.5 requests/sec/machine burst (roughly 5x the
#: sustainable rate, mirroring the paper's robustness bursts).
SCALING_SCENARIOS: tuple[PerfScenario, ...] = (
    PerfScenario(name="4-machine", num_prompt=2, num_token=2, rate_rps=50.0, num_requests=2_000, seed=11),
    PerfScenario(name="16-machine", num_prompt=10, num_token=6, rate_rps=200.0, num_requests=8_000, seed=12),
    PerfScenario(name="40-machine", num_prompt=25, num_token=15, rate_rps=500.0, num_requests=20_000, seed=13),
)


@dataclass
class PerfSample:
    """Measured simulator throughput for one scenario run.

    Attributes:
        scenario: Scenario label.
        machines: Cluster size.
        requests: Requests in the generated trace.
        completed: Requests that finished (must equal ``requests`` for a
            valid sample — an incomplete drain means the scenario is broken).
        events: Events executed by the engine.
        events_cancelled: Events tombstoned before execution.
        tokens_generated: Total output tokens produced across the cluster.
        wall_s: Host wall-clock seconds for the run.
        sim_time_s: Final simulated time (a pure simulation output — it must
            be identical on every host and across perf-only refactors).
        events_per_s: Engine throughput (events / wall second).
        requests_per_s: End-to-end throughput (requests / wall second).
    """

    scenario: str
    machines: int
    requests: int
    completed: int
    events: int
    events_cancelled: int
    tokens_generated: int
    wall_s: float
    sim_time_s: float
    events_per_s: float = field(init=False)
    requests_per_s: float = field(init=False)

    def __post_init__(self) -> None:
        self.events_per_s = self.events / self.wall_s if self.wall_s > 0 else 0.0
        self.requests_per_s = self.requests / self.wall_s if self.wall_s > 0 else 0.0


def run_perf_scenario(scenario: PerfScenario) -> PerfSample:
    """Build the scenario's cluster, replay its trace, and time the run."""
    # Imported here rather than at module level: repro.core.cluster imports
    # repro.metrics.collectors, so a top-level import would be circular.
    from repro.core.cluster import ClusterSimulation
    from repro.core.designs import splitwise_hh
    from repro.workload.generator import generate_trace

    trace = generate_trace(
        scenario.workload,
        rate_rps=scenario.rate_rps,
        duration_s=scenario.duration_s,
        seed=scenario.seed,
    )
    simulation = ClusterSimulation(splitwise_hh(scenario.num_prompt, scenario.num_token))
    start = time.perf_counter()
    result = simulation.run(trace)
    wall_s = time.perf_counter() - start
    tokens = sum(r.generated_tokens for r in result.requests)
    return PerfSample(
        scenario=scenario.name,
        machines=scenario.num_machines,
        requests=len(trace),
        completed=len(result.completed_requests),
        events=simulation.engine.events_processed,
        events_cancelled=simulation.engine.events_cancelled,
        tokens_generated=tokens,
        wall_s=wall_s,
        sim_time_s=result.duration_s,
    )


def build_bench_report(
    samples: Iterable[PerfSample],
    baseline: Mapping[str, Mapping[str, float]] | None = None,
) -> dict:
    """Assemble the ``BENCH_perf.json`` payload.

    Args:
        samples: Measured samples, one per scenario.
        baseline: Optional reference numbers (``wall_s``/``events_per_s``/
            ``requests_per_s`` per scenario name) to compute speedups against
            — typically the recorded seed-implementation measurements.

    Returns:
        A JSON-serializable report with per-scenario measurements and, when a
        baseline is given, per-scenario ``speedup`` (baseline wall / measured
        wall) entries.
    """
    report: dict = {
        "benchmark": "simulator-scaling",
        "unit": {"wall_s": "seconds", "events_per_s": "events/sec", "requests_per_s": "requests/sec"},
        "scenarios": {},
    }
    for sample in samples:
        entry = asdict(sample)
        if baseline and sample.scenario in baseline:
            reference = baseline[sample.scenario]
            entry["baseline"] = dict(reference)
            if sample.wall_s > 0 and reference.get("wall_s"):
                entry["speedup"] = reference["wall_s"] / sample.wall_s
        report["scenarios"][sample.scenario] = entry
    return report


def write_bench_report(
    path: str | Path,
    samples: Iterable[PerfSample],
    baseline: Mapping[str, Mapping[str, float]] | None = None,
) -> dict:
    """Write :func:`build_bench_report` output to ``path`` and return it."""
    report = build_bench_report(samples, baseline)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report
