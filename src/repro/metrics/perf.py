"""Simulator performance measurement (events/sec and requests/sec).

Unlike the rest of :mod:`repro.metrics`, which measures the *simulated*
cluster, this module measures the *simulator itself*: how fast the
discrete-event engine chews through a cluster-scale scenario on the host
machine.  It drives the perf-tracking harness (``BENCH_perf.json``) that the
roadmap's "as fast as the hardware allows" north star is tracked against —
every future PR can compare its numbers to the recorded trajectory.

The scaling scenarios deliberately run the cluster in the short-burst
saturation regime of the paper's robustness study (§VI-G): arrival rate far
above provisioned throughput, so machine queues grow long.  That is exactly
where naive O(queue-length) accounting makes simulation cost quadratic in
trace length, and where the incremental-accounting hot path keeps it linear.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import pstats
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Mapping


@dataclass(frozen=True)
class PerfScenario:
    """One self-benchmark configuration.

    Two kinds of scenario share this record: stationary Poisson bursts
    (``preset is None``: the trace is generated from ``workload`` /
    ``rate_rps`` / ``num_requests``) and named time-varying presets
    (``preset`` names a :mod:`repro.workload.scenarios` entry whose trace,
    failures, and per-preset autoscaler configuration are reused at
    ``preset_scale``).

    Attributes:
        name: Scenario label (keys the benchmark report).
        num_prompt: Prompt-pool machines in the Splitwise-HH cluster.
        num_token: Token-pool machines.
        rate_rps: Arrival rate of the Poisson burst (mean rate, for preset
            scenarios; informational there).
        num_requests: Approximate number of requests in the trace (the trace
            duration is derived as ``num_requests / rate_rps``; unused for
            preset scenarios, whose presets fix their own duration).
        workload: Workload name for the token-size distributions.
        seed: Trace generation seed (scenarios are fully deterministic).
        preset: Optional named scenario preset driving the trace.
        preset_scale: Scale passed to the preset (cluster and load together).
        autoscale: Run with the dynamic pool autoscaler attached.
        fleet_clusters: When positive, run the preset through a *fleet* of
            this many active clusters (plus ``fleet_burst_clusters``
            standbys under the burst provisioner) instead of one cluster.
        fleet_burst_clusters: Standby clusters of the fleet scenario.
        fleet_policy: Fleet router policy for the fleet scenario.
        fleet_parallel: When positive, run the fleet sharded across this
            many engine workers (``FleetSimulation(parallel=N)``); ``0``
            keeps the serial engine.  Sharded runs are bit-identical to
            serial, so a serial/parallel scenario pair measures pure
            wall-clock speedup on one trace.
    """

    name: str
    num_prompt: int
    num_token: int
    rate_rps: float
    num_requests: int
    workload: str = "conversation"
    seed: int = 0
    preset: str | None = None
    preset_scale: float = 1.0
    autoscale: bool = False
    fleet_clusters: int = 0
    fleet_burst_clusters: int = 0
    fleet_policy: str = "slo-feedback"
    fleet_parallel: int = 0

    @property
    def num_machines(self) -> int:
        """Total machines in the scenario's cluster."""
        return self.num_prompt + self.num_token

    @property
    def duration_s(self) -> float:
        """Trace duration implied by the request count and rate."""
        return self.num_requests / self.rate_rps


#: The scaling ladder used by ``benchmarks/test_perf_scaling.py``: 4, 16 and
#: 40 machines under a 12.5 requests/sec/machine burst (roughly 5x the
#: sustainable rate, mirroring the paper's robustness bursts), plus a
#: 20-machine day-scale diurnal scenario with the pool autoscaler active —
#: the non-stationary regime where re-purposing and parking churn the pools.
SCALING_SCENARIOS: tuple[PerfScenario, ...] = (
    PerfScenario(name="4-machine", num_prompt=2, num_token=2, rate_rps=50.0, num_requests=2_000, seed=11),
    PerfScenario(name="16-machine", num_prompt=10, num_token=6, rate_rps=200.0, num_requests=8_000, seed=12),
    PerfScenario(name="40-machine", num_prompt=25, num_token=15, rate_rps=500.0, num_requests=20_000, seed=13),
    PerfScenario(
        name="diurnal-autoscale",
        num_prompt=12,
        num_token=8,
        rate_rps=12.0,
        num_requests=0,
        seed=14,
        preset="diurnal",
        preset_scale=4.0,
        autoscale=True,
    ),
    # Fleet regime: two active mixed-tenant clusters plus one standby behind
    # the slo-feedback router and the cloud-burst provisioner — the layer
    # where per-arrival routing probes and rolling-P99 windows live.
    PerfScenario(
        name="fleet-burst",
        num_prompt=6,
        num_token=4,
        rate_rps=14.0,
        num_requests=0,
        seed=15,
        preset="mixed-tenant",
        preset_scale=2.0,
        fleet_clusters=2,
        fleet_burst_clusters=1,
    ),
    # Sharded-engine regime: a 5-cluster / 40-machine static mixed-tenant
    # fleet under weighted-rr routing — the decomposable configuration —
    # measured serial and sharded across 4 workers on the identical trace.
    # The pair shares every simulation input, so equal sim_time_s is a
    # built-in parity pin and the wall-clock ratio is pure speedup.
    PerfScenario(
        name="fleet-parallel",
        num_prompt=5,
        num_token=3,
        rate_rps=16.0,
        num_requests=0,
        seed=16,
        preset="mixed-tenant",
        preset_scale=1.6,
        fleet_clusters=5,
        fleet_burst_clusters=0,
        fleet_policy="weighted-rr",
    ),
    PerfScenario(
        name="fleet-parallel-4w",
        num_prompt=5,
        num_token=3,
        rate_rps=16.0,
        num_requests=0,
        seed=16,
        preset="mixed-tenant",
        preset_scale=1.6,
        fleet_clusters=5,
        fleet_burst_clusters=0,
        fleet_policy="weighted-rr",
        fleet_parallel=4,
    ),
)


@dataclass
class PerfSample:
    """Measured simulator throughput for one scenario run.

    Attributes:
        scenario: Scenario label.
        machines: Cluster size.
        requests: Requests in the generated trace.
        completed: Requests that finished (must equal ``requests`` for a
            valid sample — an incomplete drain means the scenario is broken).
        events: Events executed by the engine.
        events_cancelled: Events tombstoned before execution.
        events_coalesced: Iterations executed without their own queue entry
            (decode fast-forward macro-events).  ``events + events_coalesced``
            is invariant across coalescing changes — it measures the
            simulated work actually performed.
        tokens_generated: Total output tokens produced across the cluster.
        wall_s: Host wall-clock seconds for the run.
        sim_time_s: Final simulated time (a pure simulation output — it must
            be identical on every host and across perf-only refactors).
        events_per_s: Simulated work per wall second, counted as logical
            events (executed + coalesced) so the trajectory metric stays
            comparable across coalescing changes.
        requests_per_s: End-to-end throughput (requests / wall second).
        parallel_workers: Worker processes the run sharded across (0 for
            serial execution — provenance for the bench payload).
        parallel_shards: Engine shards of the run (0 for serial execution).
    """

    scenario: str
    machines: int
    requests: int
    completed: int
    events: int
    events_cancelled: int
    events_coalesced: int
    tokens_generated: int
    wall_s: float
    sim_time_s: float
    parallel_workers: int = 0
    parallel_shards: int = 0
    events_per_s: float = field(init=False)
    requests_per_s: float = field(init=False)

    def __post_init__(self) -> None:
        logical_events = self.events + self.events_coalesced
        self.events_per_s = logical_events / self.wall_s if self.wall_s > 0 else 0.0
        self.requests_per_s = self.requests / self.wall_s if self.wall_s > 0 else 0.0


def run_perf_scenario(scenario: PerfScenario, profiler=None) -> PerfSample:
    """Build the scenario's cluster, replay its trace, and time the run.

    Args:
        scenario: The benchmark configuration to run.
        profiler: Optional :class:`repro.obs.profiler.PhaseProfiler` to attach
            to the scenario's engine for the timed region — attributes wall
            time to subsystem phases (machine stepping, routing, faults, ...).
            Like ``--profile``, an attached profiler perturbs wall times; its
            samples feed the report's ``phase_profile`` section only.
    """
    # Imported here rather than at module level: repro.core.cluster imports
    # repro.metrics.collectors, so a top-level import would be circular.
    from repro.core.cluster import ClusterSimulation
    from repro.core.designs import splitwise_hh
    from repro.experiments.fleet_sweep import prepare_fleet_run
    from repro.experiments.scenarios import prepare_scenario_run
    from repro.workload.generator import generate_trace
    from repro.workload.scenarios import get_scenario

    failures: tuple = ()
    if scenario.fleet_clusters > 0:
        simulation, trace, failures = prepare_fleet_run(
            get_scenario(scenario.preset),
            clusters=scenario.fleet_clusters,
            burst_clusters=scenario.fleet_burst_clusters,
            seed=scenario.seed,
            scale=scenario.preset_scale,
            policy=scenario.fleet_policy,
            burst=scenario.fleet_burst_clusters > 0,
            parallel=scenario.fleet_parallel or None,
        )
    elif scenario.preset is not None:
        simulation, trace, failures = prepare_scenario_run(
            get_scenario(scenario.preset),
            seed=scenario.seed,
            scale=scenario.preset_scale,
            autoscaled=scenario.autoscale,
        )
    else:
        trace = generate_trace(
            scenario.workload,
            rate_rps=scenario.rate_rps,
            duration_s=scenario.duration_s,
            seed=scenario.seed,
        )
        simulation = ClusterSimulation(splitwise_hh(scenario.num_prompt, scenario.num_token))
    # Measurement hygiene: collect the previous scenario's debris before the
    # timed region so the sample measures the simulator, not generational
    # sweeps over another run's garbage.
    gc.collect()
    if profiler is not None:
        profiler.attach(simulation.engine)
    start = time.perf_counter()
    try:
        result = simulation.run(trace, failures=failures)
    finally:
        if profiler is not None:
            profiler.detach()
    wall_s = time.perf_counter() - start
    tokens = sum(r.generated_tokens for r in result.requests)
    # Sharded fleet runs execute on worker engines; their merged counters
    # live in parallel_info, and the coordinator engine stays idle.
    parallel_info = getattr(simulation, "parallel_info", None)
    if parallel_info is not None and parallel_info.get("mode") == "parallel":
        events = parallel_info["events_processed"]
        events_cancelled = parallel_info["events_cancelled"]
        events_coalesced = parallel_info["events_coalesced"]
        parallel_workers = parallel_info["workers"]
        parallel_shards = parallel_info["shards"]
    else:
        events = simulation.engine.events_processed
        events_cancelled = simulation.engine.events_cancelled
        events_coalesced = simulation.engine.events_coalesced
        parallel_workers = 0
        parallel_shards = 0
    return PerfSample(
        scenario=scenario.name,
        # Counted from the built cluster, not the dataclass fields: preset
        # scenarios size their cluster from the preset, and the report must
        # match reality.
        machines=len(simulation.machines),
        requests=len(trace),
        completed=len(result.completed_requests),
        events=events,
        events_cancelled=events_cancelled,
        events_coalesced=events_coalesced,
        tokens_generated=tokens,
        wall_s=wall_s,
        sim_time_s=result.duration_s,
        parallel_workers=parallel_workers,
        parallel_shards=parallel_shards,
    )


def build_bench_report(
    samples: Iterable[PerfSample],
    baseline: Mapping[str, Mapping[str, float]] | None = None,
    profile: Mapping | None = None,
    phase_profile: Mapping | None = None,
) -> dict:
    """Assemble the ``BENCH_perf.json`` payload.

    Args:
        samples: Measured samples, one per scenario.
        baseline: Optional reference numbers (``wall_s``/``events_per_s``/
            ``requests_per_s`` per scenario name) to compute speedups against
            — typically the recorded seed-implementation measurements.
        profile: Optional embedded profile summary (see
            :func:`profile_top_functions`).
        phase_profile: Optional per-scenario subsystem wall-time attribution
            (scenario name -> :meth:`repro.obs.profiler.PhaseProfiler.snapshot`
            buckets), embedded under ``"phase_profile"``.

    Returns:
        A JSON-serializable report with per-scenario measurements and, when a
        baseline is given, per-scenario ``speedup`` (baseline wall / measured
        wall) entries.
    """
    report: dict = {
        "benchmark": "simulator-scaling",
        "unit": {"wall_s": "seconds", "events_per_s": "logical events/sec", "requests_per_s": "requests/sec"},
        "scenarios": {},
    }
    sample_list = list(samples)
    for sample in sample_list:
        entry = asdict(sample)
        if baseline and sample.scenario in baseline:
            reference = baseline[sample.scenario]
            entry["baseline"] = dict(reference)
            if sample.wall_s > 0 and reference.get("wall_s"):
                entry["speedup"] = reference["wall_s"] / sample.wall_s
        report["scenarios"][sample.scenario] = entry
    by_name = {sample.scenario: sample for sample in sample_list}
    serial = by_name.get("fleet-parallel")
    sharded = by_name.get("fleet-parallel-4w")
    if serial is not None and sharded is not None and sharded.wall_s > 0:
        # Same trace, same simulation outputs (sim_time_s must match), so
        # the wall-clock ratio is the sharded engine's pure speedup on this
        # host.  host_cpus is recorded because the ratio is meaningless
        # without it: a 1-CPU container time-slices the workers and can
        # show <= 1x no matter how well the sharding scales.
        report["parallel_speedup"] = {
            "serial_scenario": "fleet-parallel",
            "parallel_scenario": "fleet-parallel-4w",
            "workers": sharded.parallel_workers,
            "shards": sharded.parallel_shards,
            "serial_wall_s": serial.wall_s,
            "parallel_wall_s": sharded.wall_s,
            "speedup": serial.wall_s / sharded.wall_s,
            "serial_events_per_s": serial.events_per_s,
            "parallel_events_per_s": sharded.events_per_s,
            "host_cpus": os.cpu_count() or 1,
        }
    if profile is not None:
        report["profile"] = dict(profile)
    if phase_profile is not None:
        report["phase_profile"] = {
            "note": "wall seconds per subsystem bucket (event-callback self time); "
            "an attached profiler perturbs wall_s like --profile does",
            "scenarios": {name: dict(buckets) for name, buckets in phase_profile.items()},
        }
    return report


def write_bench_report(
    path: str | Path,
    samples: Iterable[PerfSample],
    baseline: Mapping[str, Mapping[str, float]] | None = None,
    profile: Mapping | None = None,
    phase_profile: Mapping | None = None,
) -> dict:
    """Write :func:`build_bench_report` output to ``path`` and return it."""
    report = build_bench_report(samples, baseline, profile, phase_profile)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def profile_top_functions(profiler: cProfile.Profile, limit: int = 20) -> dict:
    """Summarize a profiler run as its top-``limit`` cumulative functions.

    Returns a JSON-serializable mapping embedded in ``BENCH_perf.json`` under
    ``"profile"``, so the report itself names the current hot spots (the
    functions the *next* perf PR should look at first).
    """
    stats = pstats.Stats(profiler)
    rows = []
    entries = sorted(stats.stats.items(), key=lambda item: item[1][3], reverse=True)
    for (filename, line, function), (cc, ncalls, tottime, cumtime, _callers) in entries[:limit]:
        rows.append(
            {
                "function": f"{filename}:{line}({function})",
                "ncalls": ncalls,
                "primitive_calls": cc,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    return {
        "note": "cProfile inflates wall time ~1.5-2x but ranks hot spots faithfully",
        "sorted_by": "cumulative",
        "top_functions": rows,
    }


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point: ``python -m repro.metrics.perf [--profile]``.

    Runs the scaling scenarios and writes ``BENCH_perf.json``.  With
    ``--profile``, the run executes under :mod:`cProfile` (wall times are
    inflated; throughput numbers from a profiled run are not comparable to
    unprofiled ones) and the report embeds the top-20 cumulative functions.
    """
    parser = argparse.ArgumentParser(description="Simulator scaling self-benchmark")
    parser.add_argument("--profile", action="store_true", help="embed cProfile top functions in the report")
    parser.add_argument(
        "--phase-profile", action="store_true",
        help="attach the subsystem phase profiler (wall time per engine-event "
             "bucket) and embed per-scenario attribution in the report",
    )
    parser.add_argument("--output", default="BENCH_perf.json", help="report path (default: ./BENCH_perf.json)")
    parser.add_argument(
        "--scenario",
        action="append",
        choices=[scenario.name for scenario in SCALING_SCENARIOS],
        help="run only the named scenario (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    selected = [s for s in SCALING_SCENARIOS if not args.scenario or s.name in args.scenario]

    profiler = cProfile.Profile() if args.profile else None
    samples = []
    phase_profiles: dict[str, dict] = {}
    for scenario in selected:
        phase_profiler = None
        if args.phase_profile:
            # Imported on demand: plain benchmark runs stay free of repro.obs.
            from repro.obs.profiler import PhaseProfiler

            phase_profiler = PhaseProfiler()
        if profiler is not None:
            profiler.enable()
        sample = run_perf_scenario(scenario, profiler=phase_profiler)
        if profiler is not None:
            profiler.disable()
        if phase_profiler is not None:
            phase_profiles[scenario.name] = phase_profiler.snapshot()
        samples.append(sample)
        print(
            f"{sample.scenario}: wall={sample.wall_s:.3f}s events/s={sample.events_per_s:,.0f} "
            f"requests/s={sample.requests_per_s:,.0f} coalesced={sample.events_coalesced}"
        )
    profile = profile_top_functions(profiler) if profiler is not None else None
    write_bench_report(args.output, samples, profile=profile, phase_profile=phase_profiles or None)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
