"""Request-level latency summaries and percentile helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.request import Request


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile ``q`` (0-100) of ``values`` using linear interpolation.

    Raises:
        ValueError: if ``values`` is empty or ``q`` is outside [0, 100].
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not isinstance(values, (Sequence, np.ndarray)):
        values = list(values)  # one-shot iterables (generators) stay accepted
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    return float(np.percentile(data, q))


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency metric (seconds).

    Attributes:
        count: Number of samples.
        mean: Arithmetic mean.
        p50: Median.
        p90: 90th percentile.
        p99: 99th percentile.
        max: Largest sample.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarize a non-empty sequence of latency samples.

        Accepts any sequence (including a numpy array) without an
        intermediate list copy; all five statistics come from one
        vectorized pass over the packed samples.
        """
        if not isinstance(values, (Sequence, np.ndarray)):
            values = list(values)  # one-shot iterables (generators) stay accepted
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            raise ValueError("cannot summarize an empty sequence")
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            p50=float(np.percentile(data, 50)),
            p90=float(np.percentile(data, 90)),
            p99=float(np.percentile(data, 99)),
            max=float(data.max()),
        )


@dataclass(frozen=True)
class RequestMetrics:
    """Latency summaries of a set of completed requests.

    Attributes:
        ttft: Time-to-first-token summary.
        tbt: Time-between-tokens summary (per-request mean TBT).
        e2e: End-to-end latency summary.
        throughput_rps: Completed requests per second of simulated time.
        completed: Number of completed requests included.
        total: Number of requests submitted (completed or not).
    """

    ttft: LatencySummary
    tbt: LatencySummary
    e2e: LatencySummary
    throughput_rps: float
    completed: int
    total: int

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests that completed."""
        return self.completed / self.total if self.total else 0.0


def summarize_requests(requests: Iterable[Request], duration_s: float | None = None) -> RequestMetrics:
    """Summarize completed requests into the paper's metric set.

    Args:
        requests: All requests submitted to a simulation.
        duration_s: Wall-clock span used for throughput; defaults to the last
            completion time observed.

    Raises:
        ValueError: if no request completed.
    """
    all_requests = list(requests)
    completed = [r for r in all_requests if r.is_complete]
    if not completed:
        raise ValueError("no completed requests to summarize")
    ttfts = [r.ttft for r in completed if r.ttft is not None]
    e2es = [r.e2e_latency for r in completed if r.e2e_latency is not None]
    # Requests that emit a single token have no TBT sample; skip them.
    tbts = [r.mean_tbt for r in completed if r.mean_tbt is not None]
    if not tbts:
        tbts = [0.0]
    if duration_s is None:
        duration_s = max(r.completion_time for r in completed if r.completion_time is not None)
    throughput = len(completed) / duration_s if duration_s and duration_s > 0 else 0.0
    return RequestMetrics(
        ttft=LatencySummary.from_values(ttfts),
        tbt=LatencySummary.from_values(tbts),
        e2e=LatencySummary.from_values(e2es),
        throughput_rps=throughput,
        completed=len(completed),
        total=len(all_requests),
    )
