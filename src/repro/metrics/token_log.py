"""Columnar service log for per-token telemetry.

The paper's cluster-scale evaluations (Table VI SLOs, the power/throughput
sweeps) only ever consume *aggregate* token-latency distributions, yet the
simulator used to record telemetry row-by-row: one Python-level
``array.append`` per generated token per request, ~4.5M appends per perf
scenario.  The :class:`TokenLog` turns that recording columnar:

* every machine owns one **timeline block** — a packed ``array('d')`` of the
  iteration-boundary timestamps at which it generated tokens, appended once
  per iteration instead of once per (iteration x batched request);
* requests do not copy timestamps at all.  They hold *segments*: compact
  references into the blocks describing which boundaries produced their
  tokens.  A segment is appended once per coalesced decode run or rotation
  service run, not once per token;
* ``Request.token_times`` inverts the segments into the legacy packed array
  lazily, on first observation, reproducing the per-token recording
  **bit-for-bit** (segments store references to the exact floats the event
  clock produced — nothing is recomputed).

Segment encoding (plain tuples, discriminated by arity):

``(time,)``
    A single scalar timestamp (manual ``generate_token`` calls, prompt-phase
    first tokens recorded before any block exists).
``(block, start, stop)``
    A contiguous slice ``block[start:stop]`` — decode fast-forward runs
    reference their precomputed boundary series directly, and per-iteration
    stepping coalesces consecutive services on one machine into one slice.
``(block, indices, start, stop)``
    A gather: ``block[indices[start:stop]]`` with ``indices`` a packed
    ``array('q')`` of boundary positions — rotation service runs share one
    index column per :class:`~repro.batching.rotation.RotationRun`, so a
    request serviced by the run for fifty iterations costs one 4-tuple.

Materialization is numpy-backed: blocks are viewed zero-copy with
``np.frombuffer`` and slices/gathers are copied out with C-level memory
moves.  The views are transient — they must not outlive the materialization
call, because an exported buffer would block further appends to the block.
"""

from __future__ import annotations

from array import array
from typing import Iterable

import numpy as np

__all__ = ["TokenLog", "materialize_into", "segment_token_count"]


def segment_token_count(segment: tuple) -> int:
    """Number of token timestamps a segment describes."""
    arity = len(segment)
    if arity == 3:
        return segment[2] - segment[1]
    if arity == 4:
        return segment[3] - segment[2]
    return 1


def materialize_into(times: array, segments: Iterable[tuple]) -> None:
    """Append the timestamps described by ``segments`` onto ``times`` in order.

    Bit-for-bit faithful: every value written is a memory copy of a float the
    simulator's event clock produced — slices and gathers move bytes, never
    recompute.  numpy buffer views created here are transient (dropped before
    returning) so the source blocks stay appendable.
    """
    for segment in segments:
        arity = len(segment)
        if arity == 3:
            block, start, stop = segment
            if stop > start:
                times.frombytes(memoryview(block).cast("B")[8 * start : 8 * stop])
        elif arity == 4:
            block, indices, start, stop = segment
            if stop > start:
                gathered = np.frombuffer(block)[np.frombuffer(indices, dtype=np.int64)[start:stop]]
                times.frombytes(gathered.tobytes())
        else:
            times.append(segment[0])


class TokenLog:
    """Registry of per-machine timeline blocks plus recording statistics.

    One log is owned by each :class:`~repro.metrics.collectors.MetricsCollector`
    (i.e. one per cluster, shared by a fleet's member clusters exactly as the
    collector is).  Machines obtain their timeline block once at construction;
    the block object itself is what request segments reference, so
    materialization never goes through the log.
    """

    __slots__ = ("_timelines", "_extra_blocks")

    def __init__(self) -> None:
        self._timelines: dict[str, array] = {}
        self._extra_blocks = 0

    def timeline(self, machine: str) -> array:
        """The machine's boundary-timestamp block (created on first use)."""
        block = self._timelines.get(machine)
        if block is None:
            block = self._timelines[machine] = array("d")
        return block

    def note_run_block(self, block: array) -> array:
        """Register an externally built block (a fast-forward boundary series).

        The log only counts it — segments reference the block object directly.
        """
        self._extra_blocks += 1
        return block

    def machines(self) -> list[str]:
        """Machines that requested a timeline, sorted."""
        return sorted(self._timelines)

    def boundaries_recorded(self) -> int:
        """Total iteration boundaries recorded across all machine timelines."""
        return sum(len(block) for block in self._timelines.values())

    def run_blocks_recorded(self) -> int:
        """Fast-forward boundary blocks registered via :meth:`note_run_block`."""
        return self._extra_blocks

    def as_dict(self) -> dict:
        """JSON-friendly recording statistics (introspection, docs, tests)."""
        return {
            "machines": len(self._timelines),
            "boundaries_recorded": self.boundaries_recorded(),
            "run_blocks_recorded": self._extra_blocks,
        }
