"""Service-level objectives (Table VI of the paper).

The paper expresses SLOs as *slowdowns* relative to the same request running
on a DGX-A100 with no contention: e.g. the P50 TTFT across all requests must
be within 2x of the uncontended TTFT, P90 within 3x, P99 within 6x, and
similarly for TBT and E2E.  All nine constraints must hold for a cluster
configuration to be considered as meeting its SLO at a given load.

For fleets serving several tenants, :func:`evaluate_slo_by_tenant` evaluates
the same machinery *per tenant* — each tenant may carry its own
:class:`SloPolicy` — and rolls the verdicts up into a fleet-level
:class:`TenantSloReport`.  A tenant that submitted requests but completed
none reports ``nan`` slowdowns (never a vacuous pass), mirroring the
empty-series semantics of the single-cluster evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.models.performance import PerformanceModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.request import Request


@dataclass(frozen=True)
class SloPolicy:
    """Percentile slowdown limits for TTFT, TBT, and E2E.

    Attributes map metric name to ``{percentile: max_slowdown}``.
    """

    ttft: Mapping[float, float] = field(default_factory=lambda: {50: 2.0, 90: 3.0, 99: 6.0})
    tbt: Mapping[float, float] = field(default_factory=lambda: {50: 1.25, 90: 1.5, 99: 5.0})
    e2e: Mapping[float, float] = field(default_factory=lambda: {50: 1.25, 90: 1.5, 99: 5.0})

    def limits(self) -> dict[tuple[str, float], float]:
        """Flatten into ``{(metric, percentile): max_slowdown}``."""
        flat: dict[tuple[str, float], float] = {}
        for metric, table in (("ttft", self.ttft), ("tbt", self.tbt), ("e2e", self.e2e)):
            for pct, limit in table.items():
                flat[(metric, float(pct))] = float(limit)
        return flat


#: The paper's Table VI SLO.
DEFAULT_SLO = SloPolicy()


@dataclass(frozen=True)
class SloReport:
    """Outcome of evaluating the SLO for one simulation run.

    Attributes:
        slowdowns: Achieved slowdown at each ``(metric, percentile)``.  A
            metric with no samples reports ``nan`` at every percentile — an
            unevaluable constraint is never treated as satisfied.
        limits: Allowed slowdown at each ``(metric, percentile)``.
        samples: Number of slowdown samples behind each metric's percentiles
            (guards against vacuous verdicts: a satisfied report with zero
            samples somewhere is impossible by construction).
    """

    slowdowns: Mapping[tuple[str, float], float]
    limits: Mapping[tuple[str, float], float]
    samples: Mapping[str, int] = field(default_factory=dict)

    @property
    def satisfied(self) -> bool:
        """True when every percentile slowdown is within its limit.

        A ``nan`` slowdown (metric with no samples) fails its comparison, so
        a report with a missing series is never satisfied.
        """
        return all(self.slowdowns[key] <= self.limits[key] for key in self.limits)

    def missing_series(self) -> list[str]:
        """Metrics that produced no slowdown samples (reported as ``nan``)."""
        missing = {metric for (metric, _), value in self.slowdowns.items() if np.isnan(value)}
        return sorted(missing)

    def violations(self) -> dict[tuple[str, float], float]:
        """Every (metric, percentile) whose limit is exceeded or unevaluable."""
        return {
            key: self.slowdowns[key]
            for key in self.limits
            if not self.slowdowns[key] <= self.limits[key]
        }

    def worst_margin(self) -> float:
        """Largest ratio of achieved slowdown to allowed slowdown (<=1 means pass).

        ``nan`` when any metric could not be evaluated.
        """
        ratios = [self.slowdowns[key] / self.limits[key] for key in self.limits]
        if any(np.isnan(ratio) for ratio in ratios):
            return float("nan")
        return max(ratios)


@dataclass(frozen=True)
class TenantSloReport:
    """Per-tenant SLO verdicts plus the fleet-level roll-up.

    Attributes:
        tenants: Each tenant's :class:`SloReport` (keyed by tenant tag).
            Every tenant that *submitted* a request appears here — a tenant
            with no completions gets an all-``nan`` report, which can never
            be satisfied.
        fleet: Roll-up report over every request regardless of tenant,
            evaluated against ``fleet_policy``.
        goodput: Fraction of each tenant's *submitted* requests that
            completed.  Distinct from SLO attainment: admission shedding,
            deadline expiry, and failures reduce goodput even when the
            requests that were served met every latency target.  Degraded
            completions count toward goodput — the request was answered,
            just shorter — with their share reported separately in
            ``degraded_goodput``.
        fleet_goodput: Completed fraction over all submitted requests
            (``nan`` when no requests were submitted).
        degraded_goodput: Fraction of each tenant's submitted requests that
            completed *degraded* (a subset of ``goodput``).
        fleet_degraded_goodput: Degraded-completed fraction over all
            submitted requests (0.0 when none were degraded).
        expired_by_tenant: Requests cancelled by the lifecycle layer
            (missed deadline or exhausted retry budget), per tenant.
    """

    tenants: Mapping[str, SloReport]
    fleet: SloReport
    goodput: Mapping[str, float] = field(default_factory=dict)
    fleet_goodput: float = float("nan")
    degraded_goodput: Mapping[str, float] = field(default_factory=dict)
    fleet_degraded_goodput: float = 0.0
    expired_by_tenant: Mapping[str, int] = field(default_factory=dict)

    @property
    def satisfied(self) -> bool:
        """True when every tenant's SLO holds (and at least one tenant exists)."""
        return bool(self.tenants) and all(report.satisfied for report in self.tenants.values())

    def unsatisfied_tenants(self) -> list[str]:
        """Tenants whose SLO is violated or unevaluable, sorted."""
        return sorted(t for t, report in self.tenants.items() if not report.satisfied)

    def samples_by_tenant(self) -> dict[str, dict[str, int]]:
        """Per-tenant sample counts behind each metric (vacuousness guard)."""
        return {tenant: dict(report.samples) for tenant, report in self.tenants.items()}

    def as_dict(self) -> dict:
        """JSON-friendly summary (used by the fleet CLI and CI smoke jobs)."""
        return {
            "satisfied": self.satisfied,
            "unsatisfied_tenants": self.unsatisfied_tenants(),
            "tenants": {
                tenant: {
                    "satisfied": report.satisfied,
                    "violations": len(report.violations()),
                    "samples": dict(report.samples),
                    "missing_series": report.missing_series(),
                    "goodput": self.goodput.get(tenant),
                    "degraded_goodput": self.degraded_goodput.get(tenant, 0.0),
                    "expired": self.expired_by_tenant.get(tenant, 0),
                }
                for tenant, report in self.tenants.items()
            },
            "fleet": {
                "satisfied": self.fleet.satisfied,
                "violations": len(self.fleet.violations()),
                "samples": dict(self.fleet.samples),
                "goodput": None if np.isnan(self.fleet_goodput) else self.fleet_goodput,
                "degraded_goodput": self.fleet_degraded_goodput,
                "expired": sum(self.expired_by_tenant.values()),
            },
        }


def empty_slo_report(policy: SloPolicy = DEFAULT_SLO) -> SloReport:
    """An all-``nan`` report for a request set with no completions.

    Used by the per-tenant evaluator for tenants that submitted requests but
    completed none: the report carries zero samples everywhere, every
    percentile is ``nan``, and :attr:`SloReport.satisfied` is ``False`` — an
    unevaluable SLO never passes.
    """
    limits = policy.limits()
    return SloReport(
        slowdowns={key: float("nan") for key in limits},
        limits=limits,
        samples={"ttft": 0, "tbt": 0, "e2e": 0},
    )


def evaluate_slo(
    requests: Iterable[Request],
    reference_model: PerformanceModel,
    policy: SloPolicy = DEFAULT_SLO,
    tbt_mode: str = "per-token",
) -> SloReport:
    """Evaluate the Table VI SLO over a set of completed requests.

    Each achieved TTFT/TBT/E2E is divided by the latency the same request
    would see on the reference machine with no contention (computed from
    ``reference_model``), giving slowdowns whose percentiles are compared
    against the policy.

    TBT percentiles follow the paper's Table VI and are taken over the
    pooled *per-token* inter-token-gap distribution by default — a P99 over
    per-request means would hide per-token stalls inside long requests.  Set
    ``tbt_mode="per-request-mean"`` for the coarser legacy definition.

    A metric with no samples (e.g. no request generated a second token, so
    there are no TBT gaps) reports ``nan`` at its percentiles and the report
    is never marked satisfied: an unevaluable SLO must not pass vacuously.

    Args:
        requests: Requests from a simulation (incomplete ones are ignored).
        reference_model: Performance model of the uncontended reference
            machine (the paper uses DGX-A100).
        policy: The SLO percentile limits.
        tbt_mode: ``"per-token"`` (paper-faithful pooled distribution) or
            ``"per-request-mean"``.

    Raises:
        ValueError: if no completed requests are supplied, or ``tbt_mode``
            is unknown.
    """
    if tbt_mode not in ("per-token", "per-request-mean"):
        raise ValueError(f"tbt_mode must be 'per-token' or 'per-request-mean', got {tbt_mode!r}")
    completed = [r for r in requests if r.is_complete]
    if not completed:
        raise ValueError("no completed requests to evaluate against the SLO")

    ttft_slowdowns: list[float] = []
    e2e_slowdowns: list[float] = []
    # Pooled per-token TBT slowdowns are the one genuinely large series
    # (every generated token contributes a gap): each request's interval
    # array is divided by its reference TBT in one vectorized operation —
    # identical float64 divisions to the old per-gap loop — and the pool is
    # a single concatenation instead of millions of list appends.
    tbt_parts: list[np.ndarray] = []
    tbt_means: list[float] = []
    per_token = tbt_mode == "per-token"
    for request in completed:
        ref_ttft = reference_model.ttft(request.prompt_tokens)
        ref_tbt = reference_model.tbt(1, request.prompt_tokens)
        ref_e2e = reference_model.e2e_latency(request.prompt_tokens, request.output_tokens)
        if request.ttft is not None and ref_ttft > 0:
            ttft_slowdowns.append(request.ttft / ref_ttft)
        if ref_tbt > 0:
            if per_token:
                gaps = request.token_intervals_np
                if gaps.size:
                    tbt_parts.append(gaps / ref_tbt)
            elif request.mean_tbt is not None:
                tbt_means.append(request.mean_tbt / ref_tbt)
        if request.e2e_latency is not None and ref_e2e > 0:
            e2e_slowdowns.append(request.e2e_latency / ref_e2e)

    if per_token:
        tbt_pool = np.concatenate(tbt_parts) if tbt_parts else np.empty(0, dtype=np.float64)
    else:
        tbt_pool = np.asarray(tbt_means, dtype=np.float64)
    series: dict[str, np.ndarray] = {
        "ttft": np.asarray(ttft_slowdowns, dtype=np.float64),
        "tbt": tbt_pool,
        "e2e": np.asarray(e2e_slowdowns, dtype=np.float64),
    }
    slowdowns: dict[tuple[str, float], float] = {}
    for (metric, pct), _limit in policy.limits().items():
        values = series[metric]
        slowdowns[(metric, pct)] = float(np.percentile(values, pct)) if values.size else float("nan")
    samples = {metric: int(values.size) for metric, values in series.items()}
    return SloReport(slowdowns=slowdowns, limits=policy.limits(), samples=samples)


def evaluate_slo_by_tenant(
    requests: Iterable[Request],
    reference_model: PerformanceModel,
    policies: Mapping[str, SloPolicy] | None = None,
    default_policy: SloPolicy = DEFAULT_SLO,
    fleet_policy: SloPolicy | None = None,
    tbt_mode: str = "per-token",
) -> TenantSloReport:
    """Evaluate the SLO separately for every tenant, plus a fleet roll-up.

    Requests are grouped by their ``tenant`` tag; each group is evaluated
    against that tenant's policy (``policies[tenant]``, falling back to
    ``default_policy``).  Tenants appear in the report whenever they
    *submitted* at least one request: a tenant whose requests all failed to
    complete gets the all-``nan`` :func:`empty_slo_report`, so a dropped
    tenant can never make the fleet look compliant.

    Attempt semantics: a retried or hedged request contributes exactly one
    sample — the fleet layer resolves every attempt back to its logical
    request before it reaches this function (hedge clones never enter the
    submitted list, and restarts reuse the original request object), so
    latencies are measured from the *original* arrival to the winning
    attempt's completion.

    Args:
        requests: Requests from a simulation (any mix of tenants).
        reference_model: Uncontended reference machine model.
        policies: Optional per-tenant SLO overrides.
        default_policy: Policy for tenants without an explicit entry.
        fleet_policy: Policy for the roll-up over all requests (defaults to
            ``default_policy``).
        tbt_mode: See :func:`evaluate_slo`.
    """
    policies = policies or {}
    all_requests = list(requests)
    by_tenant: dict[str, list[Request]] = {}
    for request in all_requests:
        by_tenant.setdefault(request.tenant, []).append(request)

    reports: dict[str, SloReport] = {}
    goodput: dict[str, float] = {}
    degraded_goodput: dict[str, float] = {}
    expired_by_tenant: dict[str, int] = {}
    for tenant in sorted(by_tenant):
        policy = policies.get(tenant, default_policy)
        group = by_tenant[tenant]
        completed = sum(1 for r in group if r.is_complete)
        goodput[tenant] = completed / len(group)
        degraded = sum(1 for r in group if r.is_complete and getattr(r, "degraded", False))
        if degraded:
            degraded_goodput[tenant] = degraded / len(group)
        expired = sum(1 for r in group if getattr(r, "expired", False))
        if expired:
            expired_by_tenant[tenant] = expired
        if completed:
            reports[tenant] = evaluate_slo(group, reference_model, policy, tbt_mode=tbt_mode)
        else:
            reports[tenant] = empty_slo_report(policy)

    roll_up_policy = fleet_policy or default_policy
    fleet_completed = sum(1 for r in all_requests if r.is_complete)
    if fleet_completed:
        fleet = evaluate_slo(all_requests, reference_model, roll_up_policy, tbt_mode=tbt_mode)
    else:
        fleet = empty_slo_report(roll_up_policy)
    fleet_goodput = fleet_completed / len(all_requests) if all_requests else float("nan")
    fleet_degraded = sum(
        1 for r in all_requests if r.is_complete and getattr(r, "degraded", False)
    )
    fleet_degraded_goodput = fleet_degraded / len(all_requests) if all_requests else 0.0
    return TenantSloReport(
        tenants=reports,
        fleet=fleet,
        goodput=goodput,
        fleet_goodput=fleet_goodput,
        degraded_goodput=degraded_goodput,
        fleet_degraded_goodput=fleet_degraded_goodput,
        expired_by_tenant=expired_by_tenant,
    )
