"""Service-level objectives (Table VI of the paper).

The paper expresses SLOs as *slowdowns* relative to the same request running
on a DGX-A100 with no contention: e.g. the P50 TTFT across all requests must
be within 2x of the uncontended TTFT, P90 within 3x, P99 within 6x, and
similarly for TBT and E2E.  All nine constraints must hold for a cluster
configuration to be considered as meeting its SLO at a given load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.models.performance import PerformanceModel
from repro.simulation.request import Request


@dataclass(frozen=True)
class SloPolicy:
    """Percentile slowdown limits for TTFT, TBT, and E2E.

    Attributes map metric name to ``{percentile: max_slowdown}``.
    """

    ttft: Mapping[float, float] = field(default_factory=lambda: {50: 2.0, 90: 3.0, 99: 6.0})
    tbt: Mapping[float, float] = field(default_factory=lambda: {50: 1.25, 90: 1.5, 99: 5.0})
    e2e: Mapping[float, float] = field(default_factory=lambda: {50: 1.25, 90: 1.5, 99: 5.0})

    def limits(self) -> dict[tuple[str, float], float]:
        """Flatten into ``{(metric, percentile): max_slowdown}``."""
        flat: dict[tuple[str, float], float] = {}
        for metric, table in (("ttft", self.ttft), ("tbt", self.tbt), ("e2e", self.e2e)):
            for pct, limit in table.items():
                flat[(metric, float(pct))] = float(limit)
        return flat


#: The paper's Table VI SLO.
DEFAULT_SLO = SloPolicy()


@dataclass(frozen=True)
class SloReport:
    """Outcome of evaluating the SLO for one simulation run.

    Attributes:
        slowdowns: Achieved slowdown at each ``(metric, percentile)``.
        limits: Allowed slowdown at each ``(metric, percentile)``.
    """

    slowdowns: Mapping[tuple[str, float], float]
    limits: Mapping[tuple[str, float], float]

    @property
    def satisfied(self) -> bool:
        """True when every percentile slowdown is within its limit."""
        return all(self.slowdowns[key] <= self.limits[key] for key in self.limits)

    def violations(self) -> dict[tuple[str, float], float]:
        """The subset of (metric, percentile) keys that exceed their limit."""
        return {
            key: self.slowdowns[key]
            for key in self.limits
            if self.slowdowns[key] > self.limits[key]
        }

    def worst_margin(self) -> float:
        """Largest ratio of achieved slowdown to allowed slowdown (<=1 means pass)."""
        return max(self.slowdowns[key] / self.limits[key] for key in self.limits)


def evaluate_slo(
    requests: Iterable[Request],
    reference_model: PerformanceModel,
    policy: SloPolicy = DEFAULT_SLO,
) -> SloReport:
    """Evaluate the Table VI SLO over a set of completed requests.

    Each request's achieved TTFT/TBT/E2E is divided by the latency the same
    request would see on the reference machine with no contention (computed
    from ``reference_model``), giving per-request slowdowns whose percentiles
    are compared against the policy.

    Args:
        requests: Requests from a simulation (incomplete ones are ignored).
        reference_model: Performance model of the uncontended reference
            machine (the paper uses DGX-A100).
        policy: The SLO percentile limits.

    Raises:
        ValueError: if no completed requests are supplied.
    """
    completed = [r for r in requests if r.is_complete]
    if not completed:
        raise ValueError("no completed requests to evaluate against the SLO")

    ttft_slowdowns: list[float] = []
    tbt_slowdowns: list[float] = []
    e2e_slowdowns: list[float] = []
    for request in completed:
        ref_ttft = reference_model.ttft(request.prompt_tokens)
        ref_tbt = reference_model.tbt(1, request.prompt_tokens)
        ref_e2e = reference_model.e2e_latency(request.prompt_tokens, request.output_tokens)
        if request.ttft is not None and ref_ttft > 0:
            ttft_slowdowns.append(request.ttft / ref_ttft)
        if request.mean_tbt is not None and ref_tbt > 0:
            tbt_slowdowns.append(request.mean_tbt / ref_tbt)
        if request.e2e_latency is not None and ref_e2e > 0:
            e2e_slowdowns.append(request.e2e_latency / ref_e2e)

    series = {"ttft": ttft_slowdowns, "tbt": tbt_slowdowns or [0.0], "e2e": e2e_slowdowns}
    slowdowns: dict[tuple[str, float], float] = {}
    for (metric, pct), _limit in policy.limits().items():
        values = series[metric]
        slowdowns[(metric, pct)] = float(np.percentile(np.asarray(values), pct)) if values else 0.0
    return SloReport(slowdowns=slowdowns, limits=policy.limits())
