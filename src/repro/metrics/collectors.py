"""Cluster-level metric collection.

Two collectors are provided:

* :class:`BatchOccupancyTracker` — accumulates the time a machine spends
  executing each active-batched-token count, producing the CDFs of Fig. 4
  and Fig. 17.
* :class:`MetricsCollector` — cluster-wide aggregation: per-machine busy
  time, energy, and the batch occupancy of every machine, plus helpers to
  derive utilization and the weighted occupancy distribution over machine
  groups (e.g. "all Splitwise-HH prompt machines").

:func:`request_outcomes` classifies a request population by lifecycle
outcome (completed / degraded / expired / shed) — the census surface used
by the reliability smoke checks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.metrics.token_log import TokenLog


def request_outcomes(requests: Iterable) -> dict[str, int]:
    """Count requests by lifecycle outcome.

    Returns a dict with keys ``total``, ``completed``, ``degraded``
    (completed with a truncated output budget — a subset of ``completed``),
    ``expired`` (cancelled by a deadline or exhausted retry budget),
    ``shed`` (rejected by admission control), and ``in_flight`` (none of
    the above — nonzero only for runs cut off by a horizon).

    The census invariant of a drained run is
    ``completed + expired + shed == total``.
    """
    total = completed = degraded = expired = shed = 0
    for request in requests:
        total += 1
        if request.is_complete:
            completed += 1
            if getattr(request, "degraded", False):
                degraded += 1
        elif getattr(request, "expired", False):
            expired += 1
        elif getattr(request, "shed", False):
            shed += 1
    return {
        "total": total,
        "completed": completed,
        "degraded": degraded,
        "expired": expired,
        "shed": shed,
        "in_flight": total - completed - expired - shed,
    }


class BatchOccupancyTracker:
    """Accumulates time spent at each active-batched-token count.

    "Active tokens" follows the paper's Fig. 4 definition: a request in its
    prompt phase contributes its full prompt size; a request in its token
    phase contributes one.
    """

    def __init__(self) -> None:
        self._durations: dict[int, float] = defaultdict(float)

    def record(self, active_tokens: int, duration_s: float) -> None:
        """Add ``duration_s`` seconds spent running ``active_tokens`` tokens."""
        if active_tokens < 0:
            raise ValueError(f"active_tokens must be non-negative, got {active_tokens}")
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        if duration_s > 0:
            self._durations[active_tokens] += duration_s

    def record_bulk(self, active_tokens: int, durations_s: Sequence[float]) -> None:
        """Accumulate many same-occupancy samples in one call.

        Bit-identical to calling :meth:`record` once per duration — the
        samples are added to the bucket sequentially, in order, and
        non-positive samples are skipped exactly as :meth:`record` skips them
        (no bucket is created for them either) — with a single dict access
        for the whole run.
        """
        if active_tokens < 0:
            raise ValueError(f"active_tokens must be non-negative, got {active_tokens}")
        if not durations_s:
            return
        total = self._durations.get(active_tokens, 0.0)
        recorded = False
        for duration_s in durations_s:
            if duration_s > 0:
                total += duration_s
                recorded = True
        if recorded:
            self._durations[active_tokens] = total

    @property
    def total_time(self) -> float:
        """Total recorded time in seconds."""
        return sum(self._durations.values())

    def as_mapping(self) -> dict[int, float]:
        """Copy of the raw (active_tokens -> seconds) mapping."""
        return dict(self._durations)

    def merge(self, other: "BatchOccupancyTracker") -> None:
        """Fold another tracker's samples into this one."""
        for tokens, duration in other._durations.items():
            self._durations[tokens] += duration

    def cdf(self) -> list[tuple[int, float]]:
        """Cumulative distribution of time vs active tokens.

        Returns ``(active_tokens, cumulative_fraction)`` pairs sorted by
        token count — directly plottable as Fig. 4 / Fig. 17.  Vectorized:
        one ``np.cumsum`` over the sorted buckets replaces the Python
        accumulation loop (``np.cumsum`` accumulates sequentially, so the
        running totals carry the same left-to-right float additions).
        """
        total = self.total_time
        if total == 0:
            return []
        tokens = sorted(self._durations)
        durations = np.asarray([self._durations[t] for t in tokens], dtype=np.float64)
        fractions = np.cumsum(durations) / total
        return list(zip(tokens, fractions.tolist()))

    def fraction_at_or_below(self, active_tokens: int) -> float:
        """Fraction of time spent at or below ``active_tokens`` active tokens."""
        total = self.total_time
        if total == 0:
            return 0.0
        below = sum(d for t, d in self._durations.items() if t <= active_tokens)
        return below / total


@dataclass(slots=True)
class MachineStats:
    """Aggregated statistics for one simulated machine.

    A slotted dataclass: ``record_iteration`` runs once per simulated
    iteration across the whole cluster, and slot access keeps that hot path
    free of per-instance ``__dict__`` lookups.

    Attributes:
        busy_time_s: Time spent executing non-empty iterations.
        idle_time_s: Time spent with no work (derived at report time).
        energy_wh: GPU energy consumed across all iterations.
        iterations: Number of iterations executed.
        prompt_tokens_processed: Total prompt tokens processed.
        tokens_generated: Total output tokens generated.
        occupancy: Batch-occupancy tracker for this machine.
    """

    busy_time_s: float = 0.0
    idle_time_s: float = 0.0
    energy_wh: float = 0.0
    iterations: int = 0
    prompt_tokens_processed: int = 0
    tokens_generated: int = 0
    occupancy: BatchOccupancyTracker = field(default_factory=BatchOccupancyTracker)

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction of the machine over ``horizon_s`` seconds."""
        if horizon_s <= 0:
            return 0.0
        return min(1.0, self.busy_time_s / horizon_s)

    def add_iteration(
        self,
        duration_s: float,
        active_tokens: int,
        energy_wh: float,
        prompt_tokens: int,
        tokens_generated: int,
    ) -> None:
        """Accumulate one executed iteration (the single write point).

        Machines that hold their stats row call this directly on their
        per-iteration hot path; :meth:`MetricsCollector.record_iteration`
        delegates here after its name lookup.
        """
        self.busy_time_s += duration_s
        self.energy_wh += energy_wh
        self.iterations += 1
        self.prompt_tokens_processed += prompt_tokens
        self.tokens_generated += tokens_generated
        self.occupancy.record(active_tokens, duration_s)


class MetricsCollector:
    """Cluster-wide metric aggregation keyed by machine name.

    Also owns the cluster's columnar :class:`~repro.metrics.token_log.TokenLog`:
    machines obtain their timeline blocks from it at construction, and
    post-run telemetry readers can inspect its recording statistics.
    """

    def __init__(self) -> None:
        self._machines: dict[str, MachineStats] = defaultdict(MachineStats)
        self.token_log = TokenLog()

    def record_iteration(
        self,
        machine: str,
        duration_s: float,
        active_tokens: int,
        energy_wh: float = 0.0,
        prompt_tokens: int = 0,
        tokens_generated: int = 0,
    ) -> None:
        """Record one executed iteration on ``machine``.

        Hot path: callers on the simulator's iteration loop should pass
        arguments positionally (no keyword-dict churn per call).
        """
        self._machines[machine].add_iteration(
            duration_s, active_tokens, energy_wh, prompt_tokens, tokens_generated
        )

    def record_coalesced(
        self,
        machine: str,
        count: int,
        active_tokens: int,
        durations_s: Sequence[float],
        energies_wh: Sequence[float],
        tokens_per_iteration: int,
    ) -> None:
        """Record ``count`` coalesced decode iterations in one call.

        Equivalent — including float accumulation order — to ``count``
        successive :meth:`record_iteration` calls with the given per-iteration
        durations and energies, all at ``active_tokens`` occupancy with
        ``tokens_per_iteration`` tokens generated each.  Used by the decode
        fast-forward engine to commit a macro-iteration without per-iteration
        collector overhead.
        """
        if count <= 0:
            return
        stats = self._machines[machine]
        busy = stats.busy_time_s
        for duration_s in durations_s:
            busy += duration_s
        stats.busy_time_s = busy
        energy = stats.energy_wh
        for energy_wh in energies_wh:
            energy += energy_wh
        stats.energy_wh = energy
        stats.iterations += count
        stats.tokens_generated += count * tokens_per_iteration
        stats.occupancy.record_bulk(active_tokens, durations_s)

    def machine_stats(self, machine: str) -> MachineStats:
        """Stats for one machine (empty stats if it never ran).

        Machines pre-register their stats row at construction (holding the
        row skips a name lookup per recorded iteration), so a row's mere
        existence does not mean the machine ever ran — activity-filtered
        views use the iteration count.
        """
        return self._machines[machine]

    def machines(self) -> list[str]:
        """Names of all machines with recorded activity."""
        return sorted(name for name, stats in self._machines.items() if stats.iterations)

    # -- shard transfer ------------------------------------------------------------

    def export_machine_stats(self) -> dict[str, dict]:
        """Serialize per-machine stats as plain picklable dicts.

        Used by the sharded fleet runner: shard workers export their
        collectors' rows, the coordinator absorbs them via
        :meth:`absorb_machine_stats`.  Insertion (registration) order is
        preserved so a round trip is deterministic.
        """
        return {
            name: {
                "busy_time_s": stats.busy_time_s,
                "idle_time_s": stats.idle_time_s,
                "energy_wh": stats.energy_wh,
                "iterations": stats.iterations,
                "prompt_tokens_processed": stats.prompt_tokens_processed,
                "tokens_generated": stats.tokens_generated,
                "occupancy": stats.occupancy.as_mapping(),
            }
            for name, stats in self._machines.items()
        }

    def absorb_machine_stats(self, exported: Mapping[str, Mapping]) -> None:
        """Overwrite per-machine rows from :meth:`export_machine_stats` output.

        Rows are assigned, not accumulated: the coordinator's collector holds
        pre-registered empty rows for machines simulated remotely, and the
        shard's exported row replaces each wholesale.
        """
        for name, row in exported.items():
            stats = self._machines[name]
            stats.busy_time_s = row["busy_time_s"]
            stats.idle_time_s = row["idle_time_s"]
            stats.energy_wh = row["energy_wh"]
            stats.iterations = row["iterations"]
            stats.prompt_tokens_processed = row["prompt_tokens_processed"]
            stats.tokens_generated = row["tokens_generated"]
            occupancy = BatchOccupancyTracker()
            for tokens, duration in row["occupancy"].items():
                occupancy._durations[tokens] = duration
            stats.occupancy = occupancy

    # -- aggregation ---------------------------------------------------------------

    def total_energy_wh(self) -> float:
        """Total GPU energy across the cluster in watt-hours."""
        return sum(s.energy_wh for s in self._machines.values())

    def total_busy_time_s(self) -> float:
        """Sum of busy time across machines (machine-seconds)."""
        return sum(s.busy_time_s for s in self._machines.values())

    def mean_utilization(self, horizon_s: float, machines: Iterable[str] | None = None) -> float:
        """Average busy fraction over a set of machines (default: all)."""
        names = list(machines) if machines is not None else self.machines()
        if not names:
            return 0.0
        return float(np.mean([self._machines[name].utilization(horizon_s) for name in names]))

    def group_occupancy(self, machines: Iterable[str]) -> BatchOccupancyTracker:
        """Merge the occupancy trackers of a group of machines (Fig. 17)."""
        merged = BatchOccupancyTracker()
        for name in machines:
            merged.merge(self._machines[name].occupancy)
        return merged

    def as_dict(self, horizon_s: float) -> Mapping[str, dict]:
        """Plain-dict summary keyed by machine name (for reports/serialization).

        Only machines with recorded activity appear (pre-registered rows of
        machines that never iterated are skipped).
        """
        return {
            name: {
                "busy_time_s": stats.busy_time_s,
                "utilization": stats.utilization(horizon_s),
                "energy_wh": stats.energy_wh,
                "iterations": stats.iterations,
                "prompt_tokens_processed": stats.prompt_tokens_processed,
                "tokens_generated": stats.tokens_generated,
            }
            for name, stats in sorted(self._machines.items())
            if stats.iterations
        }
