"""Latency (performance) models for LLM inference iterations.

The Splitwise simulator is driven by a performance model that answers one
question: *how long does one forward-pass iteration take for a given batch
composition on a given machine?*  The paper builds a piecewise-linear model
fitted to hardware profiles (validated to <3% MAPE, Section V-B).  We provide
two interchangeable implementations:

* :class:`AnalyticalPerformanceModel` — closed-form latency curves calibrated
  to the paper's published characterization (Fig. 5a/5b, Fig. 6, Table IV).
  This is the reference model used by the cluster experiments.
* :class:`ProfiledPerformanceModel` — piecewise-linear interpolation over a
  profile table, mirroring the paper's methodology.  It can be fitted to any
  other model (or to user-supplied measurements) and is validated against the
  analytical model with a MAPE check in the test suite.

Latency is always returned in **seconds**; calibration constants are stored
in milliseconds because that is how the paper reports them.

Batch composition is described by :class:`BatchSpec`: an iteration may
process prompt tokens (prefill), token-phase requests (decode), or both
(mixed batching).  Mixed iterations are modeled additively — the prompt work
and the token work share the machine serially within an iteration — which is
what makes mixed batching inflate TBT in the paper's Fig. 2(c).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hardware.machine import MachineSpec
from repro.models.llm import ModelSpec
from repro.models.power import PowerModel

#: Memory-bandwidth efficiency achieved by the decode kernels when streaming
#: KV-cache from HBM.
KV_READ_EFFICIENCY = 0.8

#: Reference context length per request used when profiling decode latency.
DEFAULT_REFERENCE_CONTEXT = 1024


@dataclass(frozen=True)
class BatchSpec:
    """Composition of a single forward-pass iteration.

    Attributes:
        prompt_tokens: Total prompt tokens processed this iteration (the sum
            over all requests currently in their prompt phase).
        token_requests: Number of requests in their token-generation phase
            batched into this iteration (each contributes one active token).
        context_tokens: Total cached context tokens (KV-cache entries) read
            by the token-phase requests in this iteration.
    """

    prompt_tokens: int = 0
    token_requests: int = 0
    context_tokens: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0:
            raise ValueError(f"prompt_tokens must be non-negative, got {self.prompt_tokens}")
        if self.token_requests < 0:
            raise ValueError(f"token_requests must be non-negative, got {self.token_requests}")
        if self.context_tokens < 0:
            raise ValueError(f"context_tokens must be non-negative, got {self.context_tokens}")
        if self.token_requests == 0 and self.context_tokens > 0:
            raise ValueError("context_tokens requires token_requests > 0")

    @property
    def is_empty(self) -> bool:
        """True when the iteration has no work."""
        return self.prompt_tokens == 0 and self.token_requests == 0

    @property
    def is_mixed(self) -> bool:
        """True when prompt and token work share the iteration."""
        return self.prompt_tokens > 0 and self.token_requests > 0

    @property
    def active_tokens(self) -> int:
        """Active tokens as defined in Fig. 4: prompt tokens plus one per decoding request."""
        return self.prompt_tokens + self.token_requests


class PerformanceModel(ABC):
    """Interface every performance model implements."""

    model: ModelSpec
    machine: MachineSpec

    #: Multiplicative straggler slowdown applied to every latency this model
    #: produces (1.0 = healthy hardware; the fault plane sets it via
    #: :meth:`set_slowdown`).  Distinct from power-cap inflation: a power cap
    #: is a reversible operator policy, a straggler is degraded hardware.
    slowdown_factor: float = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Set the straggler slowdown factor and drop memoized latencies.

        Raises:
            ValueError: if ``factor`` is not positive.
        """
        if factor <= 0.0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self.slowdown_factor = factor
        self.invalidate_caches()

    @abstractmethod
    def prompt_latency(self, prompt_tokens: int) -> float:
        """Seconds for a prompt-only iteration over ``prompt_tokens`` tokens."""

    @abstractmethod
    def token_latency(self, token_requests: int, context_tokens: int | None = None) -> float:
        """Seconds for a decode iteration of ``token_requests`` requests.

        Args:
            token_requests: Number of batched decoding requests.
            context_tokens: Total cached context read; defaults to
                ``token_requests * DEFAULT_REFERENCE_CONTEXT``.
        """

    def token_latency_series(
        self, token_requests: int, context_start: int, context_step: int, count: int
    ) -> Sequence[float]:
        """Latencies of ``count`` consecutive decode iterations of a fixed batch.

        The batched context starts at ``context_start`` tokens and grows by
        ``context_step`` per iteration (one token per decoding request).  The
        default implementation calls :meth:`token_latency` once per iteration,
        so subclasses that vectorize or inline the computation must stay
        bit-identical to that reference — the decode fast-forward engine
        relies on it to coalesce iterations without drifting the simulation.
        """
        latency = self.token_latency
        return [latency(token_requests, context_start + i * context_step) for i in range(count)]

    def token_latency_uncached(self, token_requests: int, context_tokens: int) -> float:
        """:meth:`token_latency` for a one-shot key, bypassing any memo table.

        Rotating batches query a fresh ``(token_requests, context_tokens)``
        key every iteration (the context grows each service), so memoizing
        those lookups only churns the table.  Must be bit-identical to
        :meth:`token_latency`; the base implementation simply delegates.
        """
        return self.token_latency(token_requests, context_tokens)

    def invalidate_caches(self) -> None:
        """Drop memoized latency entries (call after a power-cap change).

        The base implementation keeps no caches; memoizing subclasses
        override this.
        """

    # -- derived quantities ------------------------------------------------------

    def iteration_latency(self, batch: BatchSpec) -> float:
        """Seconds for an iteration with the given (possibly mixed) composition."""
        if batch.is_empty:
            return 0.0
        latency = 0.0
        if batch.prompt_tokens > 0:
            latency += self.prompt_latency(batch.prompt_tokens)
        if batch.token_requests > 0:
            latency += self.token_latency(batch.token_requests, batch.context_tokens)
        return latency

    def ttft(self, prompt_tokens: int) -> float:
        """Time to first token for an unbatched request (Fig. 5a)."""
        return self.prompt_latency(prompt_tokens)

    def tbt(self, batch_size: int = 1, context_tokens: int | None = None) -> float:
        """Time between tokens at a given decode batch size (Fig. 5b)."""
        return self.token_latency(batch_size, context_tokens)

    def e2e_latency(self, prompt_tokens: int, output_tokens: int) -> float:
        """End-to-end latency of one request run alone (no batching, Fig. 5c).

        The first output token comes from the prompt phase; the remaining
        ``output_tokens - 1`` each take one decode iteration whose context
        grows as tokens accumulate.
        """
        if output_tokens < 1:
            raise ValueError(f"output_tokens must be >= 1, got {output_tokens}")
        total = self.prompt_latency(prompt_tokens)
        for i in range(1, output_tokens):
            total += self.token_latency(1, prompt_tokens + i)
        return total

    def prompt_throughput(self, prompt_tokens: int) -> float:
        """Prompt tokens processed per second at the given batch size (Fig. 6a)."""
        latency = self.prompt_latency(prompt_tokens)
        return prompt_tokens / latency if latency > 0 else 0.0

    def token_throughput(self, batch_size: int, context_tokens: int | None = None) -> float:
        """Generated tokens per second at the given decode batch size (Fig. 6b)."""
        latency = self.token_latency(batch_size, context_tokens)
        return batch_size / latency if latency > 0 else 0.0


# ---------------------------------------------------------------------------
# Calibration tables
# ---------------------------------------------------------------------------
# Prompt-phase latency in milliseconds:  t(n) = c0 + c1 * n + c2 * n^2
# where n is the number of batched prompt tokens.  The quadratic term captures
# attention cost and reproduces the throughput roll-off past ~2048 tokens that
# motivates the paper's 2048-token prompt batching limit (Fig. 6a).
_PROMPT_COEFFS_MS: dict[tuple[str, str], tuple[float, float, float]] = {
    ("Llama2-70B", "H100"): (60.0, 0.013, 8.0e-6),
    ("Llama2-70B", "A100"): (110.0, 0.027, 1.65e-5),
    ("BLOOM-176B", "H100"): (60.0, 0.060, 2.0e-5),
    ("BLOOM-176B", "A100"): (110.0, 0.120, 4.0e-5),
}

# Token-phase latency in milliseconds: t(b) = d0 + d1 * b  (+ KV read time),
# where b is the decode batch size.  The shallow slope reproduces the paper's
# observation that batch 64 only doubles TBT (Fig. 5b).
_TOKEN_COEFFS_MS: dict[tuple[str, str], tuple[float, float]] = {
    ("Llama2-70B", "H100"): (27.5, 0.35),
    ("Llama2-70B", "A100"): (39.0, 0.50),
    ("BLOOM-176B", "H100"): (36.0, 0.30),
    ("BLOOM-176B", "A100"): (51.0, 0.43),
}

_REFERENCE_MODEL = "Llama2-70B"
_REFERENCE_GPU = "H100"

#: Memoized latency tables are cleared wholesale once they reach this many
#: entries, bounding memory on million-token traces whose coalesced decode
#: runs touch a long tail of unique (batch, context) keys.
_MAX_MEMO_ENTRIES = 1 << 16


def _gpu_family(machine: MachineSpec) -> str:
    """Map a machine to the GPU family used in the calibration tables."""
    name = machine.gpu.name.upper()
    if "H100" in name:
        return "H100"
    if "A100" in name:
        return "A100"
    return name


class AnalyticalPerformanceModel(PerformanceModel):
    """Closed-form latency model calibrated to the paper's characterization.

    Calibration anchors (all P50, Llama2-70B unless noted):

    * TTFT on DGX-H100 ~84 ms at 1020 prompt tokens and ~95 ms at 1500
      (Table IV); A100 roughly 2x slower (TTFT ratio 0.51).
    * TBT on DGX-H100 ~28 ms unbatched, ~2x at decode batch 64 (Fig. 5b);
      A100/H100 TBT ratio 0.70 (Table IV).
    * Prompt throughput peaks near 2048 batched tokens then declines
      (Fig. 6a); token throughput keeps scaling to batch 64 (Fig. 6b).
    * BLOOM-176B: a 1500-token prompt costs roughly as much as six decode
      iterations (Insight III).

    Unknown (model, GPU) pairs are extrapolated from the Llama2-70B / H100
    reference by parameter count and by the FLOPs / HBM-bandwidth ratios of
    the GPU, so user-defined models remain usable.

    Latencies are pure functions of the batch composition, so they are
    memoized on exact ``prompt_tokens`` / ``(token_requests, context_tokens)``
    keys — exact keys, not rounded buckets, so cached and freshly computed
    values are bit-identical.  Call :meth:`invalidate_caches` after changing
    the machine's power cap.

    Args:
        model: LLM being served.
        machine: Machine serving it (tensor-parallel across all its GPUs).
        apply_power_cap: Whether to inflate latencies according to the
            machine's GPU power cap (Fig. 9).
    """

    def __init__(self, model: ModelSpec, machine: MachineSpec, apply_power_cap: bool = True) -> None:
        self.model = model
        self.machine = machine
        self.apply_power_cap = apply_power_cap
        self._power = PowerModel(model, machine)
        self._prompt_coeffs = self._resolve_prompt_coeffs()
        self._token_coeffs = self._resolve_token_coeffs()
        self._prompt_cache: dict[int, float] = {}
        self._token_cache: dict[tuple[int, int], float] = {}

    def invalidate_caches(self) -> None:
        """Drop every memoized latency entry and the power model's tables."""
        self._prompt_cache.clear()
        self._token_cache.clear()
        self._power.invalidate_caches()

    # -- calibration resolution ---------------------------------------------------

    def _resolve_prompt_coeffs(self) -> tuple[float, float, float]:
        key = (self.model.name, _gpu_family(self.machine))
        if key in _PROMPT_COEFFS_MS:
            return _PROMPT_COEFFS_MS[key]
        return self._scale_prompt_reference()

    def _resolve_token_coeffs(self) -> tuple[float, float]:
        key = (self.model.name, _gpu_family(self.machine))
        if key in _TOKEN_COEFFS_MS:
            return _TOKEN_COEFFS_MS[key]
        return self._scale_token_reference()

    def _scale_prompt_reference(self) -> tuple[float, float, float]:
        from repro.hardware.gpu import GPU_H100
        from repro.models.llm import LLAMA2_70B

        c0, c1, c2 = _PROMPT_COEFFS_MS[(_REFERENCE_MODEL, _REFERENCE_GPU)]
        size_ratio = self.model.num_parameters / LLAMA2_70B.num_parameters
        compute_ratio = (GPU_H100.fp16_tflops * 8) / (self.machine.gpu.fp16_tflops * self.machine.num_gpus)
        scale = size_ratio * compute_ratio
        return (c0 * compute_ratio, c1 * scale, c2 * scale)

    def _scale_token_reference(self) -> tuple[float, float]:
        from repro.hardware.gpu import GPU_H100
        from repro.models.llm import LLAMA2_70B

        d0, d1 = _TOKEN_COEFFS_MS[(_REFERENCE_MODEL, _REFERENCE_GPU)]
        size_ratio = self.model.num_parameters / LLAMA2_70B.num_parameters
        bandwidth_ratio = (GPU_H100.hbm_bandwidth_gbps * 8) / (
            self.machine.gpu.hbm_bandwidth_gbps * self.machine.num_gpus
        )
        scale = size_ratio * bandwidth_ratio
        return (d0 * scale, d1 * scale)

    # -- latency -------------------------------------------------------------------

    def prompt_latency(self, prompt_tokens: int) -> float:
        cached = self._prompt_cache.get(prompt_tokens)
        if cached is not None:
            return cached
        if prompt_tokens < 0:
            raise ValueError(f"prompt_tokens must be non-negative, got {prompt_tokens}")
        if prompt_tokens == 0:
            return 0.0
        c0, c1, c2 = self._prompt_coeffs
        latency_ms = c0 + c1 * prompt_tokens + c2 * prompt_tokens**2
        if self.apply_power_cap:
            latency_ms *= self._power.prompt_cap_slowdown(prompt_tokens)
        if self.slowdown_factor != 1.0:
            latency_ms *= self.slowdown_factor
        latency = latency_ms / 1e3
        cache = self._prompt_cache
        if len(cache) >= _MAX_MEMO_ENTRIES:
            cache.clear()
        cache[prompt_tokens] = latency
        return latency

    def token_latency(self, token_requests: int, context_tokens: int | None = None) -> float:
        if context_tokens is None:
            context_tokens = token_requests * DEFAULT_REFERENCE_CONTEXT
        key = (token_requests, context_tokens)
        cached = self._token_cache.get(key)
        if cached is not None:
            return cached
        if token_requests < 0:
            raise ValueError(f"token_requests must be non-negative, got {token_requests}")
        latency = self.token_latency_uncached(token_requests, context_tokens)
        cache = self._token_cache
        if len(cache) >= _MAX_MEMO_ENTRIES:
            cache.clear()
        cache[key] = latency
        return latency

    def token_latency_uncached(self, token_requests: int, context_tokens: int) -> float:
        """Decode latency for a transient key, skipping the memo table.

        The single copy of the decode-latency formula: :meth:`token_latency`
        is the memo wrapper around it, and rotating batches — which never
        repeat a ``(token_requests, context_tokens)`` key — call it directly
        so the table doesn't churn.
        """
        if token_requests <= 0:
            return 0.0
        d0, d1 = self._token_coeffs
        latency_ms = d0 + d1 * token_requests + self._kv_read_ms(context_tokens)
        if self.apply_power_cap:
            latency_ms *= self._power.token_cap_slowdown(token_requests)
        if self.slowdown_factor != 1.0:
            latency_ms *= self.slowdown_factor
        return latency_ms / 1e3

    def token_latency_series(
        self, token_requests: int, context_start: int, context_step: int, count: int
    ) -> array:
        """Inlined decode-latency series for a coalesced run.

        Reproduces :meth:`token_latency` operation-for-operation (same float
        order) but skips the memo table — the growing-context keys of a
        coalesced run are transient and would only churn the cache.
        """
        if token_requests < 0:
            raise ValueError(f"token_requests must be non-negative, got {token_requests}")
        latencies = array("d")
        if count <= 0 or token_requests == 0:
            return latencies
        d0, d1 = self._token_coeffs
        base_ms = d0 + d1 * token_requests
        apply_cap = self.apply_power_cap
        slowdown = self._power.token_cap_slowdown(token_requests) if apply_cap else 1.0
        straggler = self.slowdown_factor
        apply_straggler = straggler != 1.0
        kv_read_ms = self._kv_read_ms
        append = latencies.append
        context = context_start
        for _ in range(count):
            latency_ms = base_ms + kv_read_ms(context)
            if apply_cap:
                latency_ms *= slowdown
            if apply_straggler:
                latency_ms *= straggler
            append(latency_ms / 1e3)
            context += context_step
        return latencies

    def _kv_read_ms(self, context_tokens: int | float) -> float:
        """Milliseconds spent streaming the batched KV-cache from HBM."""
        kv_bytes = self.model.kv_cache_bytes(context_tokens)
        bandwidth = self.machine.total_hbm_bandwidth_gbps * 1e9 * KV_READ_EFFICIENCY
        return kv_bytes / bandwidth * 1e3


class ProfiledPerformanceModel(PerformanceModel):
    """Piecewise-linear performance model interpolated from profile points.

    This mirrors the paper's methodology: profile the model on the target
    hardware at a grid of prompt sizes and decode batch sizes, then
    interpolate linearly between profile points (extrapolating linearly past
    the last point).

    Args:
        model: LLM being served.
        machine: Machine serving it.
        prompt_profile: Sequence of ``(prompt_tokens, latency_s)`` points.
        token_profile: Sequence of ``(batch_size, latency_s)`` points taken at
            ``reference_context`` cached tokens per request.
        reference_context: Context per request the token profile was taken at.
    """

    def __init__(
        self,
        model: ModelSpec,
        machine: MachineSpec,
        prompt_profile: Sequence[tuple[float, float]],
        token_profile: Sequence[tuple[float, float]],
        reference_context: int = DEFAULT_REFERENCE_CONTEXT,
    ) -> None:
        if len(prompt_profile) < 2 or len(token_profile) < 2:
            raise ValueError("profiles need at least two points each")
        self.model = model
        self.machine = machine
        self.reference_context = reference_context
        self._prompt_x, self._prompt_y = self._sorted_arrays(prompt_profile, "prompt_profile")
        self._token_x, self._token_y = self._sorted_arrays(token_profile, "token_profile")
        self._kv_read_per_token_s = model.kv_bytes_per_token / (
            machine.total_hbm_bandwidth_gbps * 1e9 * KV_READ_EFFICIENCY
        )

    @staticmethod
    def _sorted_arrays(profile: Sequence[tuple[float, float]], name: str) -> tuple[np.ndarray, np.ndarray]:
        points = sorted(profile)
        x = np.asarray([p[0] for p in points], dtype=float)
        y = np.asarray([p[1] for p in points], dtype=float)
        if np.any(x < 0) or np.any(y < 0):
            raise ValueError(f"{name} points must be non-negative")
        if np.any(np.diff(x) == 0):
            raise ValueError(f"{name} has duplicate x values")
        return x, y

    @classmethod
    def from_model(
        cls,
        reference: PerformanceModel,
        prompt_grid: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096, 8192),
        batch_grid: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
        reference_context: int = DEFAULT_REFERENCE_CONTEXT,
    ) -> "ProfiledPerformanceModel":
        """Profile another model over a grid and build an interpolated model."""
        prompt_profile = [(n, reference.prompt_latency(n)) for n in prompt_grid]
        token_profile = [(b, reference.token_latency(b, b * reference_context)) for b in batch_grid]
        return cls(reference.model, reference.machine, prompt_profile, token_profile, reference_context)

    @staticmethod
    def _interp(x: float | np.ndarray, xs: np.ndarray, ys: np.ndarray):
        """Linear interpolation with linear extrapolation beyond the ends.

        Accepts a scalar (returns ``float``) or an array of query points
        (returns an ``ndarray``): batch evaluation runs one vectorized
        ``np.interp`` over the breakpoint arrays plus masked extrapolation
        fix-ups instead of a Python-level loop.
        """
        if np.ndim(x) == 0:
            if x <= xs[0]:
                slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
                return float(max(0.0, ys[0] + slope * (x - xs[0])))
            if x >= xs[-1]:
                slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
                return float(ys[-1] + slope * (x - xs[-1]))
            return float(np.interp(x, xs, ys))
        queries = np.asarray(x, dtype=float)
        values = np.interp(queries, xs, ys)
        below = queries <= xs[0]
        if below.any():
            slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
            values[below] = np.maximum(0.0, ys[0] + slope * (queries[below] - xs[0]))
        above = queries >= xs[-1]
        if above.any():
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            values[above] = ys[-1] + slope * (queries[above] - xs[-1])
        return values

    def prompt_latency(self, prompt_tokens: int) -> float:
        if prompt_tokens < 0:
            raise ValueError(f"prompt_tokens must be non-negative, got {prompt_tokens}")
        if prompt_tokens == 0:
            return 0.0
        latency = self._interp(float(prompt_tokens), self._prompt_x, self._prompt_y)
        if self.slowdown_factor != 1.0:
            latency *= self.slowdown_factor
        return latency

    def token_latency(self, token_requests: int, context_tokens: int | None = None) -> float:
        if token_requests < 0:
            raise ValueError(f"token_requests must be non-negative, got {token_requests}")
        if token_requests == 0:
            return 0.0
        base = self._interp(float(token_requests), self._token_x, self._token_y)
        if context_tokens is not None:
            # Correct for contexts that differ from the profiling reference.
            delta_tokens = context_tokens - token_requests * self.reference_context
            base = max(0.0, base + delta_tokens * self._kv_read_per_token_s)
        if self.slowdown_factor != 1.0:
            base *= self.slowdown_factor
        return base

    def token_latency_series(
        self, token_requests: int, context_start: int, context_step: int, count: int
    ) -> array:
        """Vectorized decode-latency series for a coalesced run.

        The interpolated base latency is constant across the run (fixed batch
        size); only the KV-read correction varies, so the whole series is one
        numpy expression.  Element-wise IEEE operations match the scalar
        :meth:`token_latency` exactly.
        """
        if token_requests < 0:
            raise ValueError(f"token_requests must be non-negative, got {token_requests}")
        if count <= 0 or token_requests == 0:
            return array("d")
        base = self._interp(float(token_requests), self._token_x, self._token_y)
        deltas = (context_start - token_requests * self.reference_context) + context_step * np.arange(
            count, dtype=np.int64
        )
        values = base + deltas * self._kv_read_per_token_s
        np.maximum(values, 0.0, out=values)
        if self.slowdown_factor != 1.0:
            # Element-wise IEEE multiply: bit-identical to the scalar path.
            values *= self.slowdown_factor
        latencies = array("d")
        latencies.frombytes(values.tobytes())
        return latencies


def mean_absolute_percentage_error(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """MAPE between two latency series, as used to validate the paper's model.

    Returns a fraction (0.03 means 3%).

    Raises:
        ValueError: if the series differ in length, are empty, or ``actual``
            contains zeros.
    """
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {p.shape}")
    if a.size == 0:
        raise ValueError("cannot compute MAPE of empty series")
    if np.any(a == 0):
        raise ValueError("actual values must be non-zero for MAPE")
    return float(np.mean(np.abs((a - p) / a)))
