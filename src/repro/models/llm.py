"""LLM model descriptions (Table III of the Splitwise paper).

The paper evaluates two production-class open models:

=============  =======  ===========  =======
Model          #Layers  Hidden size  #Heads
=============  =======  ===========  =======
Llama2-70B     80       8192         64 (8 KV)
BLOOM-176B     70       14336        112
=============  =======  ===========  =======

(The paper's Table III prints 32 heads for Llama2-70B; the architectural
fact that matters for Splitwise is the KV-cache size per token, which is
driven by the number of **KV heads** — Llama2-70B uses grouped-query
attention with 8 KV heads, which is what makes its KV-cache ~12x smaller
per token than BLOOM's.)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a decoder-only transformer LLM.

    Attributes:
        name: Identifier, e.g. ``"Llama2-70B"``.
        num_parameters: Total parameter count.
        num_layers: Number of transformer layers.
        hidden_size: Model (embedding) dimension.
        num_heads: Number of attention (query) heads.
        num_kv_heads: Number of key/value heads (``num_heads`` for classic
            multi-head attention, fewer for grouped-query attention).
        bytes_per_param: Storage per weight (2 for FP16/BF16 inference).
        bytes_per_kv_scalar: Storage per KV-cache element (2 for FP16).
    """

    name: str
    num_parameters: float
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    bytes_per_param: int = 2
    bytes_per_kv_scalar: int = 2

    def __post_init__(self) -> None:
        if self.num_parameters <= 0:
            raise ValueError(f"num_parameters must be positive, got {self.num_parameters}")
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.num_heads <= 0:
            raise ValueError(f"num_heads must be positive, got {self.num_heads}")
        if not 0 < self.num_kv_heads <= self.num_heads:
            raise ValueError(
                f"num_kv_heads must be in [1, num_heads]; got {self.num_kv_heads} with {self.num_heads} heads"
            )
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by num_heads ({self.num_heads})"
            )

    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.hidden_size // self.num_heads

    @property
    def weight_bytes(self) -> float:
        """Bytes needed to store the model weights."""
        return self.num_parameters * self.bytes_per_param

    @property
    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes generated per token of context.

        Each layer stores a key and a value vector of size
        ``num_kv_heads * head_dim`` per token.
        """
        per_layer = 2 * self.num_kv_heads * self.head_dim * self.bytes_per_kv_scalar
        return float(per_layer * self.num_layers)

    def kv_cache_bytes(self, num_tokens: int | float) -> float:
        """Total KV-cache bytes for ``num_tokens`` of cached context."""
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be non-negative, got {num_tokens}")
        return self.kv_bytes_per_token * num_tokens

    def flops_per_token(self) -> float:
        """Approximate forward-pass FLOPs per token (2 x parameters)."""
        return 2.0 * self.num_parameters


#: Llama2-70B: 80 layers, 8192 hidden, 64 query heads, 8 KV heads (GQA).
LLAMA2_70B = ModelSpec(
    name="Llama2-70B",
    num_parameters=70e9,
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
)

#: BLOOM-176B: 70 layers, 14336 hidden, 112 heads, full multi-head attention.
BLOOM_176B = ModelSpec(
    name="BLOOM-176B",
    num_parameters=176e9,
    num_layers=70,
    hidden_size=14336,
    num_heads=112,
    num_kv_heads=112,
)

_REGISTRY: dict[str, ModelSpec] = {
    "LLAMA2-70B": LLAMA2_70B,
    "BLOOM-176B": BLOOM_176B,
}


def registered_models() -> dict[str, ModelSpec]:
    """Return a copy of the registry of known model specs keyed by name."""
    return dict(_REGISTRY)


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive).

    Raises:
        KeyError: if the model is not registered.
    """
    key = name.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"Unknown model {name!r}; known models: {known}")
    return _REGISTRY[key]
