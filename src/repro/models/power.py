"""GPU power-draw and power-capping models (Figs. 8 and 9 of the paper).

Characterization findings the model reproduces:

* **Fig. 8a** — prompt-phase power grows with the number of batched tokens,
  approaching the GPU TDP for large batches (the phase is compute bound).
* **Fig. 8b** — token-phase power is roughly flat at about half of TDP
  regardless of batch size (the phase is memory bound).
* **Fig. 9a** — capping power sharply increases prompt latency once the cap
  falls below what the phase wants to draw.
* **Fig. 9b** — the token phase tolerates a cap of ~50% of TDP with almost no
  latency impact (Insight VI), which motivates Splitwise-HHcap.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable

from repro.hardware.machine import MachineSpec
from repro.models.llm import ModelSpec

#: Idle/base draw of a busy GPU as a fraction of TDP.
PROMPT_BASE_FRACTION = 0.60
#: Additional fraction of TDP the prompt phase draws as the batch saturates.
PROMPT_SLOPE_FRACTION = 0.40
#: Batched token count at which the prompt phase reaches full TDP draw.
PROMPT_SATURATION_TOKENS = 4096

#: Token-phase draw as a fraction of TDP (flat across batch sizes).
TOKEN_BASE_FRACTION = 0.45
TOKEN_SLOPE_FRACTION = 0.05
TOKEN_SATURATION_BATCH = 16

#: Machine idle power as a fraction of GPU TDP (no active batch).
IDLE_FRACTION = 0.12


@dataclass(frozen=True)
class PhasePower:
    """Power draw of a machine while executing one phase.

    Attributes:
        gpu_watts: Total GPU power draw in watts.
        fraction_of_tdp: Draw as a fraction of the total (uncapped) GPU TDP.
    """

    gpu_watts: float
    fraction_of_tdp: float


class PowerModel:
    """Power model for one (model, machine) pair.

    The model exposes per-phase draw (for Fig. 8 and for energy accounting)
    and cap-induced latency multipliers (for Fig. 9 and the HHcap design).

    Args:
        model: The LLM being served (power draw is model-size insensitive at
            the fidelity of the paper's figures; the spec is kept for
            interface symmetry and future refinement).
        machine: The machine whose GPUs draw the power.

    Per-phase draw and default-cap slowdowns are pure functions of the batch
    composition, and the simulator evaluates them once per iteration, so they
    are memoized on exact batch keys.  Call :meth:`invalidate_caches` after
    changing the machine's power cap.
    """

    def __init__(self, model: ModelSpec, machine: MachineSpec) -> None:
        self.model = model
        self.machine = machine
        self._prompt_power_cache: dict[int | float, PhasePower] = {}
        self._token_power_cache: dict[int, PhasePower] = {}
        self._prompt_slowdown_cache: dict[int | float, float] = {}
        self._token_slowdown_cache: dict[int, float] = {}

    def invalidate_caches(self) -> None:
        """Drop every memoized draw/slowdown entry (call after a cap change)."""
        self._prompt_power_cache.clear()
        self._token_power_cache.clear()
        self._prompt_slowdown_cache.clear()
        self._token_slowdown_cache.clear()

    # -- draw ------------------------------------------------------------------

    def prompt_power_fraction(self, batched_tokens: int | float) -> float:
        """Prompt-phase draw as a fraction of TDP for ``batched_tokens``."""
        if batched_tokens < 0:
            raise ValueError(f"batched_tokens must be non-negative, got {batched_tokens}")
        if batched_tokens == 0:
            return IDLE_FRACTION
        saturation = min(1.0, batched_tokens / PROMPT_SATURATION_TOKENS)
        uncapped = PROMPT_BASE_FRACTION + PROMPT_SLOPE_FRACTION * saturation
        return min(uncapped, self.machine.gpu.power_cap_fraction)

    def token_power_fraction(self, batch_size: int) -> float:
        """Token-phase draw as a fraction of TDP for ``batch_size`` requests."""
        if batch_size < 0:
            raise ValueError(f"batch_size must be non-negative, got {batch_size}")
        if batch_size == 0:
            return IDLE_FRACTION
        saturation = min(1.0, batch_size / TOKEN_SATURATION_BATCH)
        uncapped = TOKEN_BASE_FRACTION + TOKEN_SLOPE_FRACTION * saturation
        return min(uncapped, self.machine.gpu.power_cap_fraction)

    def prompt_power(self, batched_tokens: int | float) -> PhasePower:
        """Prompt-phase draw in watts (all GPUs); memoized per batch size."""
        cached = self._prompt_power_cache.get(batched_tokens)
        if cached is not None:
            return cached
        fraction = self.prompt_power_fraction(batched_tokens)
        power = PhasePower(gpu_watts=fraction * self.machine.gpu_tdp_watts, fraction_of_tdp=fraction)
        self._prompt_power_cache[batched_tokens] = power
        return power

    def token_power(self, batch_size: int) -> PhasePower:
        """Token-phase draw in watts (all GPUs); memoized per batch size."""
        cached = self._token_power_cache.get(batch_size)
        if cached is not None:
            return cached
        fraction = self.token_power_fraction(batch_size)
        power = PhasePower(gpu_watts=fraction * self.machine.gpu_tdp_watts, fraction_of_tdp=fraction)
        self._token_power_cache[batch_size] = power
        return power

    def idle_power_watts(self) -> float:
        """GPU draw of an idle (loaded but not executing) machine in watts."""
        return IDLE_FRACTION * self.machine.gpu_tdp_watts

    # -- power capping ----------------------------------------------------------

    def prompt_cap_slowdown(self, batched_tokens: int | float, cap_fraction: float | None = None) -> float:
        """Latency multiplier the prompt phase suffers under a power cap.

        When the cap is below the draw the phase wants, throughput degrades
        roughly proportionally to the missing power (Fig. 9a shows TTFT
        roughly doubling when the cap is halved at full batch).

        Args:
            batched_tokens: Batched prompt tokens in the iteration.
            cap_fraction: Cap as a fraction of TDP; defaults to the machine's
                configured cap.  Only the default-cap path is memoized.
        """
        if cap_fraction is None:
            cached = self._prompt_slowdown_cache.get(batched_tokens)
            if cached is not None:
                return cached
        cap = self._resolve_cap(cap_fraction)
        saturation = min(1.0, max(batched_tokens, 1) / PROMPT_SATURATION_TOKENS)
        wanted = PROMPT_BASE_FRACTION + PROMPT_SLOPE_FRACTION * saturation
        slowdown = 1.0 if cap >= wanted else wanted / cap
        if cap_fraction is None:
            self._prompt_slowdown_cache[batched_tokens] = slowdown
        return slowdown

    def token_cap_slowdown(self, batch_size: int, cap_fraction: float | None = None) -> float:
        """Latency multiplier the token phase suffers under a power cap.

        Flat at 1.0 down to roughly half of TDP (Fig. 9b), then degrading
        like the prompt phase below that.
        """
        if cap_fraction is None:
            cached = self._token_slowdown_cache.get(batch_size)
            if cached is not None:
                return cached
        cap = self._resolve_cap(cap_fraction)
        saturation = min(1.0, max(batch_size, 1) / TOKEN_SATURATION_BATCH)
        wanted = TOKEN_BASE_FRACTION + TOKEN_SLOPE_FRACTION * saturation
        slowdown = 1.0 if cap >= wanted else wanted / cap
        if cap_fraction is None:
            self._token_slowdown_cache[batch_size] = slowdown
        return slowdown

    def _resolve_cap(self, cap_fraction: float | None) -> float:
        cap = self.machine.gpu.power_cap_fraction if cap_fraction is None else cap_fraction
        if not 0 < cap <= 1:
            raise ValueError(f"cap_fraction must be in (0, 1], got {cap}")
        return cap

    # -- energy -----------------------------------------------------------------

    def prompt_energy_wh(self, batched_tokens: int | float, duration_s: float) -> float:
        """Energy in watt-hours consumed by a prompt iteration of ``duration_s``."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        return self.prompt_power(batched_tokens).gpu_watts * duration_s / 3600.0

    def token_energy_wh(self, batch_size: int, duration_s: float) -> float:
        """Energy in watt-hours consumed by a token iteration of ``duration_s``."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        return self.token_power(batch_size).gpu_watts * duration_s / 3600.0

    def token_energy_series(self, batch_size: int, durations_s: Iterable[float]) -> array:
        """Per-iteration energies of a coalesced decode run.

        Bit-identical to calling :meth:`token_energy_wh` once per duration
        (same operations in the same order), with the wattage lookup hoisted
        out of the loop.  Durations must be non-negative (the caller produces
        them from a latency model, which already guarantees it).
        """
        watts = self.token_power(batch_size).gpu_watts
        energies = array("d")
        append = energies.append
        for duration_s in durations_s:
            append(watts * duration_s / 3600.0)
        return energies
