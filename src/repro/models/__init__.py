"""Model descriptions and analytical models calibrated to the paper.

Contents:

* :mod:`repro.models.llm` — static descriptions of the LLMs evaluated in the
  paper (Llama2-70B and BLOOM-176B, Table III) plus KV-cache geometry.
* :mod:`repro.models.memory` — GPU memory accounting for weights and KV-cache
  (Fig. 7), including the maximum batch capacity of a machine.
* :mod:`repro.models.performance` — latency models for the prompt and token
  phases (Figs. 5, 6; Table IV), both analytical and profile-interpolated,
  mirroring the piecewise-linear model the paper's simulator uses.
* :mod:`repro.models.power` — power-draw and power-capping models
  (Figs. 8, 9).
"""

from repro.models.llm import BLOOM_176B, LLAMA2_70B, ModelSpec, get_model, registered_models
from repro.models.memory import MemoryModel, MemoryUsage
from repro.models.performance import (
    AnalyticalPerformanceModel,
    BatchSpec,
    PerformanceModel,
    ProfiledPerformanceModel,
    mean_absolute_percentage_error,
)
from repro.models.power import PowerModel

__all__ = [
    "ModelSpec",
    "LLAMA2_70B",
    "BLOOM_176B",
    "get_model",
    "registered_models",
    "MemoryModel",
    "MemoryUsage",
    "BatchSpec",
    "PerformanceModel",
    "AnalyticalPerformanceModel",
    "ProfiledPerformanceModel",
    "mean_absolute_percentage_error",
    "PowerModel",
]
