"""GPU memory accounting for LLM inference (Fig. 7 of the paper).

During inference, machine HBM holds three things: the model weights, a
working set of activations, and the KV-cache of every active request.  The
prompt phase writes KV-cache entries for all prompt tokens; the token phase
reads the entire cached context of each batched request and appends one entry
per generated token.

This module answers the questions the machine-level scheduler needs:

* How much memory does a given batch composition require? (Fig. 7)
* How many KV-cache tokens fit on a machine, i.e. when must the scheduler
  start queueing token-phase requests? (Insight V)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.machine import MachineSpec
from repro.models.llm import ModelSpec

GB = 1024.0**3

#: Fraction of HBM usable for weights + KV-cache (the rest is reserved for
#: fragmentation, CUDA context, and framework overheads).
DEFAULT_USABLE_FRACTION = 0.92

#: Activation working-set reserve per machine, in bytes.  The prompt phase
#: keeps per-token activations live for one layer at a time; a flat reserve
#: models this (vLLM pre-allocates a similar buffer).
DEFAULT_ACTIVATION_RESERVE_BYTES = 12 * GB


@dataclass(frozen=True)
class MemoryUsage:
    """Breakdown of machine memory usage for one batch composition.

    Attributes:
        weight_bytes: Bytes used by the model weights.
        activation_bytes: Bytes reserved for activations.
        kv_cache_bytes: Bytes used by KV-cache entries.
    """

    weight_bytes: float
    activation_bytes: float
    kv_cache_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total bytes across all components."""
        return self.weight_bytes + self.activation_bytes + self.kv_cache_bytes

    @property
    def total_gb(self) -> float:
        """Total usage in GB."""
        return self.total_bytes / GB


class MemoryModel:
    """Memory capacity model for one (model, machine) pair.

    Args:
        model: The LLM being served.
        machine: The machine serving it.
        usable_fraction: Fraction of HBM capacity usable by the server.
        activation_reserve_bytes: Flat activation reserve.

    Raises:
        ValueError: if the model weights do not fit on the machine at all.
    """

    def __init__(
        self,
        model: ModelSpec,
        machine: MachineSpec,
        usable_fraction: float = DEFAULT_USABLE_FRACTION,
        activation_reserve_bytes: float = DEFAULT_ACTIVATION_RESERVE_BYTES,
    ) -> None:
        if not 0 < usable_fraction <= 1:
            raise ValueError(f"usable_fraction must be in (0, 1], got {usable_fraction}")
        if activation_reserve_bytes < 0:
            raise ValueError("activation_reserve_bytes must be non-negative")
        self.model = model
        self.machine = machine
        self.usable_fraction = usable_fraction
        self.activation_reserve_bytes = activation_reserve_bytes
        capacity = machine.total_hbm_capacity_gb * GB * usable_fraction
        budget = capacity - model.weight_bytes - activation_reserve_bytes
        if budget <= 0:
            raise ValueError(
                f"Model {model.name} ({model.weight_bytes / GB:.0f} GB weights) does not fit on "
                f"{machine.name} ({machine.total_hbm_capacity_gb:.0f} GB HBM)"
            )
        self._kv_budget_bytes = budget

    @property
    def capacity_bytes(self) -> float:
        """Usable HBM capacity of the machine in bytes."""
        return self.machine.total_hbm_capacity_gb * GB * self.usable_fraction

    @property
    def kv_budget_bytes(self) -> float:
        """Bytes available for KV-cache after weights and activations."""
        return self._kv_budget_bytes

    @property
    def max_kv_tokens(self) -> int:
        """Maximum number of cached context tokens the machine can hold."""
        return int(self._kv_budget_bytes // self.model.kv_bytes_per_token)

    def usage(self, cached_tokens: int | float) -> MemoryUsage:
        """Memory usage for ``cached_tokens`` tokens of live KV-cache.

        This is the quantity plotted in Fig. 7: in the prompt phase the
        cached tokens are the batched prompt tokens; in the token phase they
        are the full contexts of all batched requests.
        """
        if cached_tokens < 0:
            raise ValueError(f"cached_tokens must be non-negative, got {cached_tokens}")
        return MemoryUsage(
            weight_bytes=self.model.weight_bytes,
            activation_bytes=self.activation_reserve_bytes,
            kv_cache_bytes=self.model.kv_cache_bytes(cached_tokens),
        )

    def fits(self, cached_tokens: int | float) -> bool:
        """Whether ``cached_tokens`` of KV-cache fit within the budget."""
        return self.model.kv_cache_bytes(cached_tokens) <= self._kv_budget_bytes

    def remaining_tokens(self, cached_tokens: int | float) -> int:
        """How many more KV tokens fit given ``cached_tokens`` already cached."""
        remaining_bytes = self._kv_budget_bytes - self.model.kv_cache_bytes(cached_tokens)
        return max(0, int(remaining_bytes // self.model.kv_bytes_per_token))
