"""Batching policies that decide the composition of each forward-pass iteration.

A policy receives the machine's pending prompt queue and the set of requests
currently in their token phase, plus the machine's constraints (prompt token
budget, maximum batch size, KV-cache memory headroom), and returns a
:class:`BatchPlan` for the next iteration.

The three policies mirror Fig. 2 of the paper.  All policies respect the
same constraints; they differ only in *when* requests are admitted and
whether prompt and token work may share an iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.models.performance import BatchSpec
from repro.simulation.request import Request

#: Default cap on batched prompt tokens per iteration (Insight IV / §IV-B:
#: prompt throughput degrades past ~2048 batched tokens).
DEFAULT_MAX_PROMPT_TOKENS = 2048

#: Default cap on the number of requests decoded together in one iteration.
DEFAULT_MAX_BATCH_SIZE = 64

#: Sentinel KV budget used when a machine has no configured memory model
#: (``max_kv_tokens == 0`` means "unlimited").
_UNBOUNDED_KV_TOKENS = 2**62


def priority_key(request: "Request") -> tuple[float, float, int]:
    """Scheduling order of the token pool: aged first, then FCFS.

    The ``request_id`` component makes the key a total order, so any two
    orderings produced with it are identical — the basis for maintaining the
    order incrementally instead of re-sorting every iteration.
    """
    return (-request.priority_boost, request.arrival_time, request.request_id)


class PriorityOrderedView(list):
    """A token pool whose owner guarantees :func:`priority_key` order.

    Policies treat this as pre-sorted and skip their ordering pass entirely;
    a machine maintains the invariant incrementally (binary-search inserts on
    admission, binary-search removals, and a two-run merge after each aging
    pass).  Plain lists keep the legacy check-then-sort behavior.
    """

    __slots__ = ()


@dataclass(frozen=True)
class BatchConstraints:
    """Limits the scheduler must respect when composing an iteration.

    Attributes:
        max_prompt_tokens: Maximum batched prompt tokens per iteration.
        max_batch_size: Maximum number of requests (prompt + token) batched.
        max_kv_tokens: KV-cache capacity of the machine in tokens; requests
            whose combined context would exceed it cannot all be batched.
            ``0`` means the memory model is unconfigured and the KV-cache is
            treated as unlimited.
    """

    max_prompt_tokens: int = DEFAULT_MAX_PROMPT_TOKENS
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    max_kv_tokens: int = 10_000_000

    def __post_init__(self) -> None:
        if self.max_prompt_tokens < 1:
            raise ValueError(f"max_prompt_tokens must be >= 1, got {self.max_prompt_tokens}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_kv_tokens < 0:
            raise ValueError(f"max_kv_tokens must be >= 0, got {self.max_kv_tokens}")

    @property
    def kv_capacity(self) -> int:
        """Effective KV budget in tokens (``max_kv_tokens`` with 0 = unlimited)."""
        return self.max_kv_tokens or _UNBOUNDED_KV_TOKENS


@dataclass
class BatchPlan:
    """The composition of one iteration.

    The token totals are computed once at construction time: a plan is
    immutable after the policy returns it, and the simulator reads
    ``prompt_tokens`` on every queue probe of the owning machine, so eager
    totals keep those probes O(1).

    Attributes:
        prompt_requests: Requests whose prompt phase runs this iteration.
        token_requests: Requests that generate one token this iteration.
        prompt_tokens: Total prompt tokens processed this iteration.
        context_tokens: Total cached context read by token-phase requests
            this iteration (snapshot at planning time).
    """

    prompt_requests: list[Request] = field(default_factory=list)
    token_requests: list[Request] = field(default_factory=list)
    #: Totals may be passed by policies that already accumulated them during
    #: selection; negative sentinels trigger a recount for direct construction.
    prompt_tokens: int = -1
    context_tokens: int = -1

    def __post_init__(self) -> None:
        if self.prompt_tokens < 0:
            self.prompt_tokens = sum(r.prompt_tokens for r in self.prompt_requests)
        if self.context_tokens < 0:
            self.context_tokens = sum(r.prompt_tokens + r.generated_tokens for r in self.token_requests)

    @property
    def is_empty(self) -> bool:
        """True when the iteration has no work."""
        return not self.prompt_requests and not self.token_requests

    @property
    def active_tokens(self) -> int:
        """Active tokens as defined in Fig. 4."""
        return self.prompt_tokens + len(self.token_requests)

    def to_batch_spec(self) -> BatchSpec:
        """Convert to the performance-model batch description."""
        return BatchSpec(
            prompt_tokens=self.prompt_tokens,
            token_requests=len(self.token_requests),
            context_tokens=self.context_tokens,
        )


class BatchingPolicy(ABC):
    """Decides which requests run in the next iteration of one machine."""

    name: str = "abstract"

    #: True when, given an empty prompt queue, the policy's token selection is
    #: exactly the first ``max_batch_size`` pool members in priority order
    #: (skipping only over-budget members).  The steady-state rotation engine
    #: relies on this to reproduce the selection without invoking the policy.
    prefix_token_selection: bool = False

    #: True when, with prompts queued, the policy composes an iteration as
    #: FCFS prompt admission followed by prefix token selection over the
    #: remaining slots (the mixed continuous shape).  Lets the rotation engine
    #: keep stepping through prompt arrivals instead of bailing out.
    prefix_mixed_composition: bool = False

    @abstractmethod
    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
        pool_context_tokens: int | None = None,
    ) -> BatchPlan:
        """Compose the next iteration.

        Args:
            pending_prompts: FCFS queue of requests waiting for their prompt
                phase.  The policy pops the requests it admits.
            token_pool: Requests currently in their token-generation phase on
                this machine (never popped; the policy selects a subset).
            constraints: Machine limits.
            pool_context_tokens: Optional exact total context (KV tokens) of
                ``token_pool``, supplied by owners that track it incrementally.
                Enables an O(1) whole-pool selection when the pool trivially
                fits the batch (the common steady-decode case); selection
                semantics are unchanged.
        """

    @staticmethod
    def _priority_order(token_pool: Iterable[Request]) -> Iterable[Request]:
        """The pool in ``(-priority_boost, arrival_time, request_id)`` order.

        A :class:`PriorityOrderedView` is returned as-is (its owner maintains
        the order incrementally, making this O(1)).  Any other sequence is
        checked in one O(n) scan — machines admit token requests roughly FCFS,
        so an unboosted pool is often already ordered — and re-sorted only
        when the scan finds a violation.
        """
        if isinstance(token_pool, PriorityOrderedView):
            return token_pool
        previous: tuple[float, float, int] | None = None
        for request in token_pool:
            key = priority_key(request)
            if previous is not None and key < previous:
                break
            previous = key
        else:
            return token_pool
        return sorted(token_pool, key=priority_key)

    @staticmethod
    def _select_tokens_with_total(
        token_pool: Iterable[Request],
        constraints: BatchConstraints,
        slots: int,
        kv_budget: int,
        pool_context_tokens: int | None = None,
    ) -> tuple[list[Request], int]:
        """Pick token-phase requests FCFS by arrival, respecting slots and memory.

        Returns the selection plus its total context tokens (accumulated while
        selecting, so the batch plan never recounts it).
        """
        selected: list[Request] = []
        if slots <= 0:
            return selected, 0
        if (
            pool_context_tokens is not None
            and isinstance(token_pool, PriorityOrderedView)
            and len(token_pool) <= slots
            and pool_context_tokens <= kv_budget
        ):
            # Whole pool fits: the scan below would admit every member in
            # view order with this exact context total, so skip it.
            return list(token_pool), pool_context_tokens
        pool = token_pool if isinstance(token_pool, list) else list(token_pool)
        used_kv = 0
        append = selected.append
        for request in BatchingPolicy._priority_order(pool):
            context = request.prompt_tokens + request.generated_tokens
            if used_kv + context > kv_budget:
                continue
            append(request)
            used_kv += context
            slots -= 1
            if slots <= 0:
                break
        return selected, used_kv

    @staticmethod
    def _select_prompts_with_total(
        pending_prompts: deque[Request], constraints: BatchConstraints, slots: int
    ) -> tuple[list[Request], int]:
        """Pop prompts FCFS until the token budget or slot budget is exhausted.

        The first prompt is always admitted even if it alone exceeds the token
        budget (a single oversized prompt must still run).  Returns the
        selection plus its total prompt tokens.
        """
        selected: list[Request] = []
        used_tokens = 0
        max_prompt_tokens = constraints.max_prompt_tokens
        while pending_prompts and len(selected) < slots:
            candidate = pending_prompts[0]
            if selected and used_tokens + candidate.prompt_tokens > max_prompt_tokens:
                break
            selected.append(pending_prompts.popleft())
            used_tokens += candidate.prompt_tokens
        return selected, used_tokens


class MixedContinuousBatching(BatchingPolicy):
    """Prompts and token generation share each iteration (Fig. 2c).

    Prompts are admitted first (they gate TTFT and are considered more
    important, §IV-B); remaining batch slots and KV-cache headroom go to
    token-phase requests.  Token requests that do not fit are effectively
    preempted for this iteration.
    """

    name = "mixed-continuous"
    prefix_token_selection = True
    prefix_mixed_composition = True

    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
        pool_context_tokens: int | None = None,
    ) -> BatchPlan:
        prompts, prompt_tokens = self._select_prompts_with_total(
            pending_prompts, constraints, constraints.max_batch_size
        )
        remaining_slots = constraints.max_batch_size - len(prompts)
        kv_budget = constraints.kv_capacity - prompt_tokens
        tokens, context_tokens = self._select_tokens_with_total(
            token_pool, constraints, remaining_slots, max(0, kv_budget), pool_context_tokens
        )
        return BatchPlan(
            prompt_requests=prompts,
            token_requests=tokens,
            prompt_tokens=prompt_tokens,
            context_tokens=context_tokens,
        )


class ContinuousBatching(BatchingPolicy):
    """Iteration-level batching with phase-exclusive batches (Fig. 2b).

    Scheduling decisions happen every iteration, but an iteration holds either
    only prompt-phase requests or only token-phase requests.  Waiting prompts
    preempt token generation, which shortens TTFT but inflates tail TBT.
    """

    name = "continuous"
    prefix_token_selection = True

    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
        pool_context_tokens: int | None = None,
    ) -> BatchPlan:
        if pending_prompts:
            prompts, prompt_tokens = self._select_prompts_with_total(
                pending_prompts, constraints, constraints.max_batch_size
            )
            return BatchPlan(prompt_requests=prompts, prompt_tokens=prompt_tokens, context_tokens=0)
        tokens, context_tokens = self._select_tokens_with_total(
            token_pool, constraints, constraints.max_batch_size, constraints.kv_capacity, pool_context_tokens
        )
        return BatchPlan(token_requests=tokens, prompt_tokens=0, context_tokens=context_tokens)


class RequestLevelBatching(BatchingPolicy):
    """Classic request-level batching (Fig. 2a).

    A batch is formed from the pending queue and runs — prompt phase then all
    token iterations — until every request in it completes; only then is the
    next batch admitted.  Requests arriving in between wait, which is what
    produces the long TTFT tail in the paper's comparison.

    The policy is stateful (it tracks the in-flight batch), so use one
    instance per machine.
    """

    name = "request-level"

    def __init__(self) -> None:
        self._current_batch: list[Request] = []

    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
        pool_context_tokens: int | None = None,
    ) -> BatchPlan:
        # The in-flight batch may be a strict subset of the pool, so the
        # whole-pool context hint does not apply here.
        del pool_context_tokens
        self._current_batch = [r for r in self._current_batch if not r.is_complete]
        if not self._current_batch:
            # Admit a new batch: all its prompts run in the first iteration.
            admitted, prompt_tokens = self._select_prompts_with_total(
                pending_prompts, constraints, constraints.max_batch_size
            )
            self._current_batch = admitted
            return BatchPlan(prompt_requests=admitted, prompt_tokens=prompt_tokens, context_tokens=0)
        # Continue decoding only the members of the in-flight batch.
        in_flight = [r for r in token_pool if r in self._current_batch]
        tokens, context_tokens = self._select_tokens_with_total(
            in_flight, constraints, constraints.max_batch_size, constraints.kv_capacity
        )
        return BatchPlan(token_requests=tokens, prompt_tokens=0, context_tokens=context_tokens)


_POLICIES = {
    "request-level": RequestLevelBatching,
    "continuous": ContinuousBatching,
    "mixed-continuous": MixedContinuousBatching,
    "mixed": MixedContinuousBatching,
}


def make_policy(name: str) -> BatchingPolicy:
    """Instantiate a batching policy by name.

    Raises:
        KeyError: if the policy name is unknown.
    """
    key = name.lower()
    if key not in _POLICIES:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"Unknown batching policy {name!r}; known policies: {known}")
    return _POLICIES[key]()
