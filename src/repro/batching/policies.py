"""Batching policies that decide the composition of each forward-pass iteration.

A policy receives the machine's pending prompt queue and the set of requests
currently in their token phase, plus the machine's constraints (prompt token
budget, maximum batch size, KV-cache memory headroom), and returns a
:class:`BatchPlan` for the next iteration.

The three policies mirror Fig. 2 of the paper.  All policies respect the
same constraints; they differ only in *when* requests are admitted and
whether prompt and token work may share an iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.models.performance import BatchSpec
from repro.simulation.request import Request

#: Default cap on batched prompt tokens per iteration (Insight IV / §IV-B:
#: prompt throughput degrades past ~2048 batched tokens).
DEFAULT_MAX_PROMPT_TOKENS = 2048

#: Default cap on the number of requests decoded together in one iteration.
DEFAULT_MAX_BATCH_SIZE = 64


@dataclass(frozen=True)
class BatchConstraints:
    """Limits the scheduler must respect when composing an iteration.

    Attributes:
        max_prompt_tokens: Maximum batched prompt tokens per iteration.
        max_batch_size: Maximum number of requests (prompt + token) batched.
        max_kv_tokens: KV-cache capacity of the machine in tokens; requests
            whose combined context would exceed it cannot all be batched.
    """

    max_prompt_tokens: int = DEFAULT_MAX_PROMPT_TOKENS
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    max_kv_tokens: int = 10_000_000

    def __post_init__(self) -> None:
        if self.max_prompt_tokens < 1:
            raise ValueError(f"max_prompt_tokens must be >= 1, got {self.max_prompt_tokens}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_kv_tokens < 1:
            raise ValueError(f"max_kv_tokens must be >= 1, got {self.max_kv_tokens}")


@dataclass
class BatchPlan:
    """The composition of one iteration.

    Attributes:
        prompt_requests: Requests whose prompt phase runs this iteration.
        token_requests: Requests that generate one token this iteration.
    """

    prompt_requests: list[Request] = field(default_factory=list)
    token_requests: list[Request] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the iteration has no work."""
        return not self.prompt_requests and not self.token_requests

    @property
    def prompt_tokens(self) -> int:
        """Total prompt tokens processed this iteration."""
        return sum(r.prompt_tokens for r in self.prompt_requests)

    @property
    def context_tokens(self) -> int:
        """Total cached context read by token-phase requests this iteration."""
        return sum(r.context_tokens for r in self.token_requests)

    @property
    def active_tokens(self) -> int:
        """Active tokens as defined in Fig. 4."""
        return self.prompt_tokens + len(self.token_requests)

    def to_batch_spec(self) -> BatchSpec:
        """Convert to the performance-model batch description."""
        return BatchSpec(
            prompt_tokens=self.prompt_tokens,
            token_requests=len(self.token_requests),
            context_tokens=self.context_tokens,
        )


class BatchingPolicy(ABC):
    """Decides which requests run in the next iteration of one machine."""

    name: str = "abstract"

    @abstractmethod
    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
    ) -> BatchPlan:
        """Compose the next iteration.

        Args:
            pending_prompts: FCFS queue of requests waiting for their prompt
                phase.  The policy pops the requests it admits.
            token_pool: Requests currently in their token-generation phase on
                this machine (never popped; the policy selects a subset).
            constraints: Machine limits.
        """

    @staticmethod
    def _select_tokens(
        token_pool: Iterable[Request], constraints: BatchConstraints, slots: int, kv_budget: int
    ) -> list[Request]:
        """Pick token-phase requests FCFS by arrival, respecting slots and memory."""
        selected: list[Request] = []
        used_kv = 0
        ordered = sorted(token_pool, key=lambda r: (-r.priority_boost, r.arrival_time, r.request_id))
        for request in ordered:
            if len(selected) >= slots:
                break
            if used_kv + request.context_tokens > kv_budget:
                continue
            selected.append(request)
            used_kv += request.context_tokens
        return selected

    @staticmethod
    def _select_prompts(
        pending_prompts: deque[Request], constraints: BatchConstraints, slots: int
    ) -> list[Request]:
        """Pop prompts FCFS until the token budget or slot budget is exhausted.

        The first prompt is always admitted even if it alone exceeds the token
        budget (a single oversized prompt must still run).
        """
        selected: list[Request] = []
        used_tokens = 0
        while pending_prompts and len(selected) < slots:
            candidate = pending_prompts[0]
            if selected and used_tokens + candidate.prompt_tokens > constraints.max_prompt_tokens:
                break
            selected.append(pending_prompts.popleft())
            used_tokens += candidate.prompt_tokens
        return selected


class MixedContinuousBatching(BatchingPolicy):
    """Prompts and token generation share each iteration (Fig. 2c).

    Prompts are admitted first (they gate TTFT and are considered more
    important, §IV-B); remaining batch slots and KV-cache headroom go to
    token-phase requests.  Token requests that do not fit are effectively
    preempted for this iteration.
    """

    name = "mixed-continuous"

    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
    ) -> BatchPlan:
        prompts = self._select_prompts(pending_prompts, constraints, constraints.max_batch_size)
        remaining_slots = constraints.max_batch_size - len(prompts)
        kv_budget = constraints.max_kv_tokens - sum(r.prompt_tokens for r in prompts)
        tokens = self._select_tokens(token_pool, constraints, remaining_slots, max(0, kv_budget))
        return BatchPlan(prompt_requests=prompts, token_requests=tokens)


class ContinuousBatching(BatchingPolicy):
    """Iteration-level batching with phase-exclusive batches (Fig. 2b).

    Scheduling decisions happen every iteration, but an iteration holds either
    only prompt-phase requests or only token-phase requests.  Waiting prompts
    preempt token generation, which shortens TTFT but inflates tail TBT.
    """

    name = "continuous"

    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
    ) -> BatchPlan:
        if pending_prompts:
            prompts = self._select_prompts(pending_prompts, constraints, constraints.max_batch_size)
            return BatchPlan(prompt_requests=prompts)
        tokens = self._select_tokens(
            token_pool, constraints, constraints.max_batch_size, constraints.max_kv_tokens
        )
        return BatchPlan(token_requests=tokens)


class RequestLevelBatching(BatchingPolicy):
    """Classic request-level batching (Fig. 2a).

    A batch is formed from the pending queue and runs — prompt phase then all
    token iterations — until every request in it completes; only then is the
    next batch admitted.  Requests arriving in between wait, which is what
    produces the long TTFT tail in the paper's comparison.

    The policy is stateful (it tracks the in-flight batch), so use one
    instance per machine.
    """

    name = "request-level"

    def __init__(self) -> None:
        self._current_batch: list[Request] = []

    def plan_iteration(
        self,
        pending_prompts: deque[Request],
        token_pool: Sequence[Request],
        constraints: BatchConstraints,
    ) -> BatchPlan:
        self._current_batch = [r for r in self._current_batch if not r.is_complete]
        if not self._current_batch:
            # Admit a new batch: all its prompts run in the first iteration.
            admitted = self._select_prompts(pending_prompts, constraints, constraints.max_batch_size)
            self._current_batch = admitted
            return BatchPlan(prompt_requests=admitted)
        # Continue decoding only the members of the in-flight batch.
        in_flight = [r for r in token_pool if r in self._current_batch]
        tokens = self._select_tokens(
            in_flight, constraints, constraints.max_batch_size, constraints.max_kv_tokens
        )
        return BatchPlan(token_requests=tokens)


_POLICIES = {
    "request-level": RequestLevelBatching,
    "continuous": ContinuousBatching,
    "mixed-continuous": MixedContinuousBatching,
    "mixed": MixedContinuousBatching,
}


def make_policy(name: str) -> BatchingPolicy:
    """Instantiate a batching policy by name.

    Raises:
        KeyError: if the policy name is unknown.
    """
    key = name.lower()
    if key not in _POLICIES:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"Unknown batching policy {name!r}; known policies: {known}")
    return _POLICIES[key]()
