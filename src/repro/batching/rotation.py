"""Steady-state decode rotation: O(batch) iterations over oversubscribed pools.

When a machine's token pool holds more requests than fit one decode batch,
the batching policy selects the first ``max_batch_size`` requests in priority
order and the aging pass boosts everyone left out (§IV-B), producing a fair
round-robin rotation.  Maintaining that order as a flat sorted list costs
O(pool) per iteration — the boost writes, the kept/boosted split, and the
two-run merge each walk the whole pool — which made saturated drains the
hottest loop in the simulator.

:class:`RotationForest` represents the same total order hierarchically so
each iteration costs O(batch) instead of O(pool):

* Members are grouped into **levels** by priority boost.  A level stores the
  boost relative to a forest-wide ``offset``; the aging pass ("everyone not
  selected gains +1") becomes ``offset += 1`` plus a ``-1`` on the handful of
  wholly-selected levels — O(selected levels), not O(pool).
* Within a level, members sit in **runs**: ``(arrival_time, request_id)``-
  sorted segments.  Selection takes whole levels from the top and splits at
  most one level via a lazy k-way extraction across its sibling runs, so the
  interleaving merge the flat list needed on every iteration is deferred
  until a split actually reaches it.
* Each level caches its live member count and total KV context, so the
  batch's context total — the input to the latency model — is accumulated
  from O(selected levels) cached sums plus the split remainder.

**Run service caches** (``track_runs``, used with the columnar token log —
see :mod:`repro.metrics.token_log`): each run additionally carries

* ``min_remaining`` — a conservative lower bound on any live member's
  outstanding output tokens.  The stepper decrements it once per service and
  walks the members for exact completions only at the boundaries where the
  earliest member can actually finish, so the per-member completion check
  disappears from the steady-state loop.  The bound never overestimates:
  services decrement it in lockstep with every member's true remaining,
  admissions lower it, and chops inherit it (removing members can only make
  it conservative).
* ``context`` — the run's total *effective* KV context, maintained
  incrementally (bulk-added per service, shed by completions and chops).
  Extraction then walks only the **smaller side** of a chop: the slice's
  context is summed directly when the slice is smaller, or derived by
  subtracting the walked remainder from the cached total when it is not —
  and a chop consuming a whole run costs O(1).

The forest reproduces the flat view's order *exactly*: effective boosts are
``stored + offset`` (integer-valued, as produced by +1.0 aging steps), and
:meth:`RotationForest.flatten` materializes the identical
``(-priority_boost, arrival_time, request_id)`` order and writes back the
float boosts the per-iteration simulator would have produced.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.request import Request

#: ``min_remaining`` sentinel for runs whose bound is not constraining
#: (never triggers a completion walk).
NO_COMPLETION_BOUND = 1 << 60


def _member_key(request: "Request") -> tuple[float, int]:
    """Within-level order: FCFS by arrival, request id as the total tie-break."""
    return (request.arrival_time, request.request_id)


class RotationRun:
    """A ``(arrival, id)``-sorted segment of live members within one level.

    ``members[start:]`` are the live entries; extraction consumes from the
    head by advancing ``start`` instead of slicing.  ``min_remaining`` and
    ``context`` are the run service caches (meaningful only under
    ``track_runs``; see the module docstring).
    """

    __slots__ = ("members", "start", "min_remaining", "context")

    def __init__(self, members: list, start: int = 0) -> None:
        self.members = members
        self.start = start
        self.min_remaining = NO_COMPLETION_BOUND
        self.context = 0

    def __len__(self) -> int:
        return len(self.members) - self.start

    def live(self) -> list:
        """The live members in order (a copy only when consumed)."""
        return self.members if self.start == 0 else self.members[self.start :]


class RotationLevel:
    """All members sharing one effective boost, as sibling sorted runs.

    Attributes:
        stored: Boost relative to the forest offset (effective boost is
            ``stored + offset``).
        runs: Sibling runs; each is internally ordered but siblings may
            interleave — splits resolve the interleaving lazily.
        size: Live member count across runs.
        context: Total KV context (``prompt_tokens + generated_tokens``) of
            the live members, maintained incrementally.
    """

    __slots__ = ("stored", "runs", "size", "context")

    def __init__(self, stored: int, runs: list, size: int, context: int) -> None:
        self.stored = stored
        self.runs = runs
        self.size = size
        self.context = context


class Selection:
    """The batch for one rotation iteration plus the data aging needs."""

    __slots__ = (
        "segments",
        "count",
        "context",
        "whole_levels",
        "split_level",
        "split_bound",
        "extracted",
        "extracted_context",
    )

    def __init__(self) -> None:
        #: One ``(level, run, members)`` triple per contributing run;
        #: ``level``/``run`` are ``None`` for the split extraction (its
        #: members are not levelled until the aging commit).
        self.segments: list[tuple] = []
        self.count = 0
        self.context = 0
        self.whole_levels: list[RotationLevel] = []
        self.split_level: RotationLevel | None = None
        #: Completion bound carried by the split extraction (min over the
        #: bounds of the runs it consumed from; ``track_runs`` only).
        self.split_bound = NO_COMPLETION_BOUND
        self.extracted: list = []
        self.extracted_context = 0

    def requests(self) -> list:
        """The batch in priority order (matches the flat view's selection)."""
        flat: list = []
        for _, _, members in self.segments:
            flat.extend(members)
        return flat


class RotationForest:
    """Priority-ordered token pool with O(batch) selection and O(1) aging."""

    __slots__ = ("levels", "offset", "track_runs")

    #: A level with more sibling runs than this is consolidated into one run
    #: on its next split, bounding k-way heap width (amortized rare).
    MAX_SIBLING_RUNS = 32

    def __init__(self, track_runs: bool = False) -> None:
        self.levels: list[RotationLevel] = []  # stored DESC == effective DESC
        self.offset = 0
        #: Maintain per-run completion bounds and context caches (columnar
        #: recording); untracked forests leave them at their sentinels.
        self.track_runs = track_runs

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_ordered_view(cls, view: Iterable, track_runs: bool = False) -> "RotationForest | None":
        """Build a forest from a ``(-boost, arrival, id)``-ordered pool view.

        Returns ``None`` if any boost is not integer-valued (aging only ever
        adds 1.0, so non-integer boosts mean an external writer is involved
        and the flat representation must be kept).  Members are settled at
        entry (the machine exits any previous rotation through a settling
        flatten), so plain attribute reads are exact here.
        """
        forest = cls(track_runs)
        levels = forest.levels
        current_boost: float | None = None
        members: list = []
        context = 0
        min_remaining = NO_COMPLETION_BOUND
        for request in view:
            boost = request.priority_boost
            if boost != current_boost:
                if not float(boost).is_integer():
                    return None
                if members:
                    levels.append(forest._new_level(int(current_boost), members, context, min_remaining))
                current_boost = boost
                members = []
                context = 0
                min_remaining = NO_COMPLETION_BOUND
            members.append(request)
            context += request.prompt_tokens + request.generated_tokens
            remaining = request.output_tokens - request.generated_tokens
            if remaining < min_remaining:
                min_remaining = remaining
        if members:
            levels.append(forest._new_level(int(current_boost), members, context, min_remaining))
        return forest

    def _new_level(self, stored: int, members: list, context: int, min_remaining: int) -> RotationLevel:
        run = RotationRun(members)
        run.context = context
        run.min_remaining = min_remaining
        return RotationLevel(stored, [run], len(members), context)

    # -- selection ------------------------------------------------------------------

    def select(self, limit: int, kv_budget: int) -> Selection | None:
        """The first ``limit`` members in priority order, or ``None`` when the
        KV budget would force the policy to skip a member (caller falls back
        to the exact policy path for that iteration)."""
        selection = Selection()
        segments = selection.segments
        need = limit
        for level in self.levels:
            if need <= 0:
                break
            if level.size <= need:
                for run in level.runs:
                    segments.append((level, run, run.live()))
                selection.whole_levels.append(level)
                selection.count += level.size
                selection.context += level.context
                need -= level.size
            else:
                extracted, context, bound = self._extract(level, need)
                selection.split_level = level
                selection.split_bound = bound
                selection.extracted = extracted
                selection.extracted_context = context
                segments.append((None, None, extracted))
                selection.count += need
                selection.context += context
                need = 0
        if selection.context > kv_budget:
            # The policy would skip (not truncate) here; hand the iteration
            # back to the exact selection loop.
            self._unextract(selection)
            return None
        return selection

    def _extract(self, level: RotationLevel, count: int) -> tuple[list, int, int]:
        """Consume the ``count`` smallest ``(arrival, id)`` members of ``level``.

        Multi-run levels use a galloping k-way merge: instead of moving one
        member per heap operation, the run holding the current minimum is
        consumed as a slice up to the second-smallest sibling head (found by
        bisection), so the cost is one heap operation per *run switch*, not
        per member — sibling runs hold mostly disjoint arrival bands, so
        switches are rare.

        With run tracking, only the smaller side of each cut is walked for
        context (the larger side's total is derived from the run's cache), a
        whole-run consumption costs O(1), and the returned bound is the
        minimum completion bound over the runs the extraction touched.
        """
        runs = level.runs
        track = self.track_runs
        if len(runs) == 1:
            run = runs[0]
            start = run.start
            stop = start + count
            members = run.members
            extracted = members[start:stop]
            bound = run.min_remaining
            if not track:
                context = 0
                for request in extracted:
                    context += request.prompt_tokens + request.generated_tokens
            elif stop == len(members):
                # Whole live run consumed: O(1).
                context = run.context
                run.context = 0
            elif count <= len(members) - stop:
                # The slice is the smaller side: sum it directly.  The
                # inlined reads are the canonical columnar-deferral formula
                # (generated == _svc_base + len(_svc_indices) while a
                # request's index column is open — see
                # repro.simulation.request); this walk is the hottest
                # per-member work left in the rotation.
                context = 0
                for request in extracted:
                    if request._svc_block is None:
                        context += request.prompt_tokens + request.generated_tokens
                    else:
                        context += request.prompt_tokens + request._svc_base + len(request._svc_indices)
                run.context -= context
            else:
                # The remainder is smaller: walk it and subtract.
                remainder_context = 0
                for request in members[stop:]:
                    if request._svc_block is None:
                        remainder_context += request.prompt_tokens + request.generated_tokens
                    else:
                        remainder_context += request.prompt_tokens + request._svc_base + len(request._svc_indices)
                context = run.context - remainder_context
                run.context = remainder_context
            run.start = stop
            level.size -= count
            level.context -= context
            if not len(run):
                level.runs = []
            return extracted, context, bound
        if len(runs) > self.MAX_SIBLING_RUNS:
            self._consolidate(level)
            runs = level.runs
        if len(runs) == 1:
            return self._extract(level, count)
        heap = []
        for index, run in enumerate(runs):
            if len(run):
                head = run.members[run.start]
                heap.append((head.arrival_time, head.request_id, index))
        heapq.heapify(heap)
        extracted: list = []
        extend = extracted.extend
        taken = 0
        context = 0
        bound = NO_COMPLETION_BOUND
        while taken < count:
            index = heap[0][2]
            run = runs[index]
            members = run.members
            start = run.start
            room = start + (count - taken)
            heap_size = len(heap)
            if heap_size == 1:
                stop = min(len(members), room)
            else:
                # Second-smallest head is the smaller root child; consume
                # this run up to it in one slice.
                limit = heap[1] if heap_size < 3 or heap[1] < heap[2] else heap[2]
                stop = bisect_left(
                    members,
                    (limit[0], limit[1]),
                    start + 1,
                    min(len(members), room),
                    key=_member_key,
                )
            if track:
                if run.min_remaining < bound:
                    bound = run.min_remaining
                if stop == len(members):
                    # Whole rest of the run: O(1) from the cache.
                    slice_context = run.context
                    run.context = 0
                elif stop - start <= len(members) - stop:
                    # The consumed slice is the smaller side: sum it directly.
                    slice_context = 0
                    for request in members[start:stop]:
                        if request._svc_block is None:
                            slice_context += request.prompt_tokens + request.generated_tokens
                        else:
                            slice_context += (
                                request.prompt_tokens + request._svc_base + len(request._svc_indices)
                            )
                    run.context -= slice_context
                else:
                    # The run's remainder is smaller: walk it and subtract.
                    remainder_context = 0
                    for request in members[stop:]:
                        if request._svc_block is None:
                            remainder_context += request.prompt_tokens + request.generated_tokens
                        else:
                            remainder_context += (
                                request.prompt_tokens + request._svc_base + len(request._svc_indices)
                            )
                    slice_context = run.context - remainder_context
                    run.context = remainder_context
                context += slice_context
            extend(members[start:stop])
            taken += stop - start
            run.start = stop
            if stop == len(members):
                heapq.heappop(heap)
                if not heap:
                    break
            else:
                head = members[stop]
                heapq.heapreplace(heap, (head.arrival_time, head.request_id, index))
        if not track:
            for request in extracted:
                context += request.prompt_tokens + request.generated_tokens
        level.size -= count
        level.context -= context
        level.runs = [run for run in level.runs if len(run)]
        return extracted, context, bound

    def _unextract(self, selection: Selection) -> None:
        """Undo a split extraction after an aborted (over-budget) selection."""
        level = selection.split_level
        if level is None or not selection.extracted:
            return
        extracted = selection.extracted
        context = selection.extracted_context
        restored = RotationRun(extracted)
        restored.context = context
        restored.min_remaining = selection.split_bound
        level.runs.insert(0, restored)
        level.size += len(extracted)
        level.context += context
        self._consolidate(level)

    def _consolidate(self, level: RotationLevel) -> None:
        """Merge a level's sibling runs into one ordered run."""
        if len(level.runs) <= 1:
            return
        merged = list(heapq.merge(*(run.live() for run in level.runs), key=_member_key))
        run = RotationRun(merged)
        if self.track_runs:
            context = 0
            min_remaining = NO_COMPLETION_BOUND
            for source in level.runs:
                context += source.context
                if source.min_remaining < min_remaining:
                    min_remaining = source.min_remaining
            run.context = context
            run.min_remaining = min_remaining
        level.runs = [run]

    # -- aging ----------------------------------------------------------------------

    def commit_aging(
        self,
        selection: Selection,
        survivors: list,
        survivors_context: int,
        survivors_bound: int = NO_COMPLETION_BOUND,
    ) -> None:
        """Apply one aging pass: everyone not selected gains +1 boost.

        Implemented relatively: the forest offset rises by one while the
        wholly-selected levels and the split extraction (its ``survivors``,
        i.e. extracted members that did not complete this iteration, whose
        post-service context total — and, under run tracking, completion
        bound — the caller tracks) step down one stored level, keeping their
        effective boost unchanged.
        """
        self.offset += 1
        dirty = False
        previous_stored = None
        for level in selection.whole_levels:
            level.stored -= 1
            if level.size <= 0 or level.stored == previous_stored:
                dirty = True
            previous_stored = level.stored
        split = selection.split_level
        levels = self.levels
        if split is not None:
            if split.size <= 0 or split.stored == previous_stored:
                dirty = True
            if survivors:
                run = RotationRun(survivors)
                run.context = survivors_context
                run.min_remaining = survivors_bound
                index = levels.index(split)
                below = levels[index + 1] if index + 1 < len(levels) else None
                if below is not None and below.stored == split.stored - 1 and below.size > 0:
                    # The survivor level collides with its neighbour almost
                    # every iteration; merge in place (same content the full
                    # normalize pass would produce) instead of rebuilding the
                    # whole level list.
                    below.runs.insert(0, run)
                    below.size += len(survivors)
                    below.context += survivors_context
                else:
                    new_level = RotationLevel(
                        split.stored - 1, [run], len(survivors), survivors_context
                    )
                    levels.insert(index + 1, new_level)
        # Wholly-selected levels may step onto the level below them, and
        # completions can empty a serviced level; both need the full merge
        # pass.  The common survivor collision was handled above, so the
        # rebuild only runs when the cheap per-selected checks saw a change.
        if dirty or (selection.whole_levels and self._selected_prefix_collides(selection)):
            self._normalize()

    def _selected_prefix_collides(self, selection: Selection) -> bool:
        """Whether a stepped-down selected level now collides with a neighbour."""
        last = selection.whole_levels[-1]
        levels = self.levels
        try:
            index = levels.index(last)
        except ValueError:  # pragma: no cover - defensive; selection is current
            return True
        return index + 1 < len(levels) and levels[index + 1].stored == last.stored

    def _normalize(self) -> None:
        merged: list[RotationLevel] = []
        for level in self.levels:
            if level.size <= 0:
                continue
            if merged and merged[-1].stored == level.stored:
                previous = merged[-1]
                previous.runs.extend(level.runs)
                previous.size += level.size
                previous.context += level.context
            else:
                merged.append(level)
        self.levels = merged

    # -- membership -----------------------------------------------------------------

    def insert(self, request) -> None:
        """Add a newly admitted member at its current (integer) boost.

        The newcomer is settled (it was just admitted), so plain attribute
        reads are exact.
        """
        effective = int(request.priority_boost)
        stored = effective - self.offset
        context = request.prompt_tokens + request.generated_tokens
        remaining = request.output_tokens - request.generated_tokens
        track = self.track_runs
        levels = self.levels
        for index, level in enumerate(levels):
            if level.stored == stored:
                last = level.runs[-1]
                tail = last.members[-1] if len(last) else None
                if tail is not None and _member_key(tail) < _member_key(request):
                    last.members.append(request)
                    target = last
                else:
                    target = RotationRun([request])
                    level.runs.append(target)
                if track:
                    target.context += context
                    if remaining < target.min_remaining:
                        target.min_remaining = remaining
                level.size += 1
                level.context += context
                return
            if level.stored < stored:
                levels.insert(index, self._new_level(stored, [request], context, remaining))
                return
        levels.append(self._new_level(stored, [request], context, remaining))

    def note_serviced(self, selection: Selection, completed_per_segment: list) -> None:
        """Update level size/context caches after one service pass.

        Every surviving serviced member's context grew by one token; completed
        members (passed per selected segment, pre-service contexts included)
        leave their level entirely.  The split extraction is not levelled yet
        — its survivors are accounted by :meth:`commit_aging`.  Run-level
        caches are maintained by the stepper itself (it walks the segments
        anyway).
        """
        for (level, run, members), completed in zip(selection.segments, completed_per_segment):
            if level is None:
                continue
            survivors = len(members)
            if completed:
                removed_context = 0
                for request, pre_context in completed:
                    removed_context += pre_context
                level.size -= len(completed)
                level.context -= removed_context
                done = {id(request) for request, _ in completed}
                run.members = [r for r in run.live() if id(r) not in done]
                run.start = 0
                survivors -= len(completed)
            level.context += survivors

    # -- materialization ------------------------------------------------------------

    def flatten(self, inflight: Selection | None = None) -> list:
        """The pool in exact flat-view order, with float boosts written back.

        Pure with respect to the forest structure (safe to call between any
        two iterations, and — with ``inflight`` — mid-iteration: the
        in-flight selection's consumed split extraction is spliced back in at
        its level's head, where those members sort).  Columnar callers settle
        deferred member state themselves (see
        ``SimulatedMachine._materialize_rotation``).
        """
        flat: list = []
        offset = self.offset
        split = inflight.split_level if inflight is not None else None
        for level in self.levels:
            boost = float(level.stored + offset)
            if level is split:
                for request in inflight.extracted:
                    request.priority_boost = boost
                    flat.append(request)
            runs = level.runs
            members = runs[0].live() if len(runs) == 1 else heapq.merge(*(run.live() for run in runs), key=_member_key)
            for request in members:
                request.priority_boost = boost
                flat.append(request)
        return flat

    def total_size(self) -> int:
        """Live member count (for cross-checks)."""
        return sum(level.size for level in self.levels)
