"""Steady-state decode rotation: O(batch) iterations over oversubscribed pools.

When a machine's token pool holds more requests than fit one decode batch,
the batching policy selects the first ``max_batch_size`` requests in priority
order and the aging pass boosts everyone left out (§IV-B), producing a fair
round-robin rotation.  Maintaining that order as a flat sorted list costs
O(pool) per iteration — the boost writes, the kept/boosted split, and the
two-run merge each walk the whole pool — which made saturated drains the
hottest loop in the simulator.

:class:`RotationForest` represents the same total order hierarchically so
each iteration costs O(batch) instead of O(pool):

* Members are grouped into **levels** by priority boost.  A level stores the
  boost relative to a forest-wide ``offset``; the aging pass ("everyone not
  selected gains +1") becomes ``offset += 1`` plus a ``-1`` on the handful of
  wholly-selected levels — O(selected levels), not O(pool).
* Within a level, members sit in **runs**: ``(arrival_time, request_id)``-
  sorted segments.  Selection takes whole levels from the top and splits at
  most one level via a lazy k-way extraction across its sibling runs, so the
  interleaving merge the flat list needed on every iteration is deferred
  until a split actually reaches it.
* Each level caches its live member count and total KV context, so the
  batch's context total — the input to the latency model — is accumulated
  from O(selected levels) cached sums plus the split remainder.

The forest reproduces the flat view's order *exactly*: effective boosts are
``stored + offset`` (integer-valued, as produced by +1.0 aging steps), and
:meth:`RotationForest.flatten` materializes the identical
``(-priority_boost, arrival_time, request_id)`` order and writes back the
float boosts the per-iteration simulator would have produced.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.request import Request


def _member_key(request: "Request") -> tuple[float, int]:
    """Within-level order: FCFS by arrival, request id as the total tie-break."""
    return (request.arrival_time, request.request_id)


class RotationRun:
    """A ``(arrival, id)``-sorted segment of live members within one level.

    ``members[start:]`` are the live entries; extraction consumes from the
    head by advancing ``start`` instead of slicing.
    """

    __slots__ = ("members", "start")

    def __init__(self, members: list, start: int = 0) -> None:
        self.members = members
        self.start = start

    def __len__(self) -> int:
        return len(self.members) - self.start

    def live(self) -> list:
        """The live members in order (a copy only when consumed)."""
        return self.members if self.start == 0 else self.members[self.start :]


class RotationLevel:
    """All members sharing one effective boost, as sibling sorted runs.

    Attributes:
        stored: Boost relative to the forest offset (effective boost is
            ``stored + offset``).
        runs: Sibling runs; each is internally ordered but siblings may
            interleave — splits resolve the interleaving lazily.
        size: Live member count across runs.
        context: Total KV context (``prompt_tokens + generated_tokens``) of
            the live members, maintained incrementally.
    """

    __slots__ = ("stored", "runs", "size", "context")

    def __init__(self, stored: int, runs: list, size: int, context: int) -> None:
        self.stored = stored
        self.runs = runs
        self.size = size
        self.context = context


class SelectedSegment:
    """One run's contribution to an iteration's batch."""

    __slots__ = ("level", "run", "members")

    def __init__(self, level: RotationLevel | None, run: RotationRun | None, members: list) -> None:
        self.level = level  # None for the split extraction (not yet levelled)
        self.run = run  # None for the split extraction
        self.members = members


class Selection:
    """The batch for one rotation iteration plus the data aging needs."""

    __slots__ = ("segments", "count", "context", "whole_levels", "split_level", "extracted", "extracted_context")

    def __init__(self) -> None:
        self.segments: list[SelectedSegment] = []
        self.count = 0
        self.context = 0
        self.whole_levels: list[RotationLevel] = []
        self.split_level: RotationLevel | None = None
        self.extracted: list = []
        self.extracted_context = 0

    def requests(self) -> list:
        """The batch in priority order (matches the flat view's selection)."""
        flat: list = []
        for segment in self.segments:
            flat.extend(segment.members)
        return flat


class RotationForest:
    """Priority-ordered token pool with O(batch) selection and O(1) aging."""

    __slots__ = ("levels", "offset")

    #: A level with more sibling runs than this is consolidated into one run
    #: on its next split, bounding k-way heap width (amortized rare).
    MAX_SIBLING_RUNS = 32

    def __init__(self) -> None:
        self.levels: list[RotationLevel] = []  # stored DESC == effective DESC
        self.offset = 0

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_ordered_view(cls, view: Iterable) -> "RotationForest | None":
        """Build a forest from a ``(-boost, arrival, id)``-ordered pool view.

        Returns ``None`` if any boost is not integer-valued (aging only ever
        adds 1.0, so non-integer boosts mean an external writer is involved
        and the flat representation must be kept).
        """
        forest = cls()
        levels = forest.levels
        current_boost: float | None = None
        members: list = []
        context = 0
        for request in view:
            boost = request.priority_boost
            if boost != current_boost:
                if not float(boost).is_integer():
                    return None
                if members:
                    levels.append(RotationLevel(int(current_boost), [RotationRun(members)], len(members), context))
                current_boost = boost
                members = []
                context = 0
            members.append(request)
            context += request.prompt_tokens + request.generated_tokens
        if members:
            levels.append(RotationLevel(int(current_boost), [RotationRun(members)], len(members), context))
        return forest

    # -- selection ------------------------------------------------------------------

    def select(self, limit: int, kv_budget: int) -> Selection | None:
        """The first ``limit`` members in priority order, or ``None`` when the
        KV budget would force the policy to skip a member (caller falls back
        to the exact policy path for that iteration)."""
        selection = Selection()
        segments = selection.segments
        need = limit
        for level in self.levels:
            if need <= 0:
                break
            if level.size <= need:
                for run in level.runs:
                    segments.append(SelectedSegment(level, run, run.live()))
                selection.whole_levels.append(level)
                selection.count += level.size
                selection.context += level.context
                need -= level.size
            else:
                extracted, context = self._extract(level, need)
                selection.split_level = level
                selection.extracted = extracted
                selection.extracted_context = context
                segments.append(SelectedSegment(None, None, extracted))
                selection.count += need
                selection.context += context
                need = 0
        if selection.context > kv_budget:
            # The policy would skip (not truncate) here; hand the iteration
            # back to the exact selection loop.
            self._unextract(selection)
            return None
        return selection

    def _extract(self, level: RotationLevel, count: int) -> tuple[list, int]:
        """Consume the ``count`` smallest ``(arrival, id)`` members of ``level``.

        Multi-run levels use a galloping k-way merge: instead of moving one
        member per heap operation, the run holding the current minimum is
        consumed as a slice up to the second-smallest sibling head (found by
        bisection), so the cost is one heap operation per *run switch*, not
        per member — sibling runs hold mostly disjoint arrival bands, so
        switches are rare.
        """
        runs = level.runs
        if len(runs) == 1:
            run = runs[0]
            start = run.start
            stop = start + count
            extracted = run.members[start:stop]
            run.start = stop
        else:
            if len(runs) > self.MAX_SIBLING_RUNS:
                self._consolidate(level)
                runs = level.runs
            if len(runs) == 1:
                return self._extract(level, count)
            heap = []
            for index, run in enumerate(runs):
                if len(run):
                    head = run.members[run.start]
                    heap.append((head.arrival_time, head.request_id, index))
            heapq.heapify(heap)
            extracted: list = []
            extend = extracted.extend
            taken = 0
            while taken < count:
                index = heap[0][2]
                run = runs[index]
                members = run.members
                start = run.start
                room = start + (count - taken)
                heap_size = len(heap)
                if heap_size == 1:
                    stop = min(len(members), room)
                else:
                    # Second-smallest head is the smaller root child; consume
                    # this run up to it in one slice.
                    limit = heap[1] if heap_size < 3 or heap[1] < heap[2] else heap[2]
                    stop = bisect_left(
                        members,
                        (limit[0], limit[1]),
                        start + 1,
                        min(len(members), room),
                        key=_member_key,
                    )
                extend(members[start:stop])
                taken += stop - start
                run.start = stop
                if stop == len(members):
                    heapq.heappop(heap)
                    if not heap:
                        break
                else:
                    head = members[stop]
                    heapq.heapreplace(heap, (head.arrival_time, head.request_id, index))
        context = 0
        for request in extracted:
            context += request.prompt_tokens + request.generated_tokens
        level.size -= count
        level.context -= context
        level.runs = [run for run in level.runs if len(run)]
        return extracted, context

    def _unextract(self, selection: Selection) -> None:
        """Undo a split extraction after an aborted (over-budget) selection."""
        level = selection.split_level
        if level is None or not selection.extracted:
            return
        extracted = selection.extracted
        context = 0
        for request in extracted:
            context += request.prompt_tokens + request.generated_tokens
        level.runs.insert(0, RotationRun(extracted))
        level.size += len(extracted)
        level.context += context
        self._consolidate(level)

    def _consolidate(self, level: RotationLevel) -> None:
        """Merge a level's sibling runs into one ordered run."""
        if len(level.runs) <= 1:
            return
        merged = list(heapq.merge(*(run.live() for run in level.runs), key=_member_key))
        level.runs = [RotationRun(merged)]

    # -- aging ----------------------------------------------------------------------

    def commit_aging(self, selection: Selection, survivors: list, survivors_context: int) -> None:
        """Apply one aging pass: everyone not selected gains +1 boost.

        Implemented relatively: the forest offset rises by one while the
        wholly-selected levels and the split extraction (its ``survivors``,
        i.e. extracted members that did not complete this iteration, whose
        post-service context total the caller tracks) step down one stored
        level, keeping their effective boost unchanged.
        """
        self.offset += 1
        for level in selection.whole_levels:
            level.stored -= 1
        split = selection.split_level
        levels = self.levels
        if split is not None and survivors:
            new_level = RotationLevel(split.stored - 1, [RotationRun(survivors)], len(survivors), survivors_context)
            index = levels.index(split)
            levels.insert(index + 1, new_level)
        # Drop emptied levels and merge stored-level collisions (a selected
        # level can land on the one below it).  The scan is O(levels); the
        # rebuild runs only when something actually changed.
        previous_stored = None
        dirty = False
        for level in levels:
            if level.size <= 0 or level.stored == previous_stored:
                dirty = True
                break
            previous_stored = level.stored
        if dirty:
            self._normalize()

    def _normalize(self) -> None:
        levels = [level for level in self.levels if level.size > 0]
        merged: list[RotationLevel] = []
        for level in levels:
            if merged and merged[-1].stored == level.stored:
                previous = merged[-1]
                previous.runs.extend(level.runs)
                previous.size += level.size
                previous.context += level.context
            else:
                merged.append(level)
        self.levels = merged

    # -- membership -----------------------------------------------------------------

    def insert(self, request) -> None:
        """Add a newly admitted member at its current (integer) boost."""
        effective = int(request.priority_boost)
        stored = effective - self.offset
        context = request.prompt_tokens + request.generated_tokens
        levels = self.levels
        for index, level in enumerate(levels):
            if level.stored == stored:
                last = level.runs[-1]
                tail = last.members[-1] if len(last) else None
                if tail is not None and _member_key(tail) < _member_key(request):
                    last.members.append(request)
                else:
                    level.runs.append(RotationRun([request]))
                level.size += 1
                level.context += context
                return
            if level.stored < stored:
                levels.insert(index, RotationLevel(stored, [RotationRun([request])], 1, context))
                return
        levels.append(RotationLevel(stored, [RotationRun([request])], 1, context))

    def note_serviced(self, selection: Selection, completed_per_segment: list) -> None:
        """Update level size/context caches after one service pass.

        Every surviving serviced member's context grew by one token; completed
        members (passed per selected segment, pre-service contexts included)
        leave their level entirely.  The split extraction is not levelled yet
        — its survivors are accounted by :meth:`commit_aging`.
        """
        for segment, completed in zip(selection.segments, completed_per_segment):
            level = segment.level
            if level is None:
                continue
            survivors = len(segment.members)
            if completed:
                removed_context = 0
                for request, pre_context in completed:
                    removed_context += pre_context
                level.size -= len(completed)
                level.context -= removed_context
                run = segment.run
                done = {id(request) for request, _ in completed}
                run.members = [r for r in run.live() if id(r) not in done]
                run.start = 0
                survivors -= len(completed)
            level.context += survivors

    # -- materialization ------------------------------------------------------------

    def flatten(self, inflight: Selection | None = None) -> list:
        """The pool in exact flat-view order, with float boosts written back.

        Pure with respect to the forest structure (safe to call between any
        two iterations, and — with ``inflight`` — mid-iteration: the
        in-flight selection's consumed split extraction is spliced back in at
        its level's head, where those members sort).
        """
        flat: list = []
        offset = self.offset
        split = inflight.split_level if inflight is not None else None
        for level in self.levels:
            boost = float(level.stored + offset)
            if level is split:
                for request in inflight.extracted:
                    request.priority_boost = boost
                    flat.append(request)
            runs = level.runs
            members = runs[0].live() if len(runs) == 1 else heapq.merge(*(run.live() for run in runs), key=_member_key)
            for request in members:
                request.priority_boost = boost
                flat.append(request)
        return flat

    def total_size(self) -> int:
        """Live member count (for cross-checks)."""
        return sum(level.size for level in self.levels)
