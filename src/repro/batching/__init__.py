"""Iteration-level batching policies (Fig. 2 of the paper).

Three mechanisms are modeled:

* request-level batching — a batch runs to completion before new requests join;
* continuous batching — batches are re-formed each iteration but hold either
  only prompt-phase or only token-phase requests, with prompts preempting;
* mixed continuous batching — prompts and token generation share an
  iteration (the paper's default, and what Splitwise mixed-pool machines run).
"""

from repro.batching.policies import (
    BatchConstraints,
    BatchPlan,
    BatchingPolicy,
    ContinuousBatching,
    MixedContinuousBatching,
    RequestLevelBatching,
    make_policy,
)

__all__ = [
    "BatchConstraints",
    "BatchPlan",
    "BatchingPolicy",
    "RequestLevelBatching",
    "ContinuousBatching",
    "MixedContinuousBatching",
    "make_policy",
]
