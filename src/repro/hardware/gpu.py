"""GPU specifications (Table I of the Splitwise paper).

The paper compares NVIDIA A100 and H100 GPUs.  The specs below mirror
Table I: FP16 tensor TFLOPs (per GPU, dense), HBM capacity and bandwidth,
TDP, NVLink and InfiniBand bandwidth, and the per-machine rental cost used
for the cost analysis (CoreWeave list prices at the time of the paper).

Power-capped variants (used by the Splitwise-HHcap design) are derived with
:func:`power_capped`, which keeps every capability identical but lowers the
power budget the power model is allowed to draw.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a single GPU.

    Attributes:
        name: Human readable identifier, e.g. ``"A100"``.
        fp16_tflops: Dense FP16/BF16 tensor throughput in teraFLOPs.
        hbm_capacity_gb: High-bandwidth memory capacity in gigabytes.
        hbm_bandwidth_gbps: HBM bandwidth in gigabytes per second.
        tdp_watts: Thermal design power of the GPU in watts.
        power_cap_watts: Enforced power cap in watts.  Equal to ``tdp_watts``
            for an uncapped GPU; lower for capped variants.
        nvlink_gbps: Per-direction NVLink bandwidth in gigabytes per second.
        infiniband_gbps: Per-GPU InfiniBand bandwidth in gigabits per second
            (the paper quotes 200 Gbps for A100 clusters and 400 Gbps for
            H100 clusters).
        cost_per_hour: Cost of an 8-GPU machine of this type in $/hr.
    """

    name: str
    fp16_tflops: float
    hbm_capacity_gb: float
    hbm_bandwidth_gbps: float
    tdp_watts: float
    power_cap_watts: float
    nvlink_gbps: float
    infiniband_gbps: float
    cost_per_hour: float

    def __post_init__(self) -> None:
        if self.fp16_tflops <= 0:
            raise ValueError(f"fp16_tflops must be positive, got {self.fp16_tflops}")
        if self.hbm_capacity_gb <= 0:
            raise ValueError(f"hbm_capacity_gb must be positive, got {self.hbm_capacity_gb}")
        if self.hbm_bandwidth_gbps <= 0:
            raise ValueError(f"hbm_bandwidth_gbps must be positive, got {self.hbm_bandwidth_gbps}")
        if self.tdp_watts <= 0:
            raise ValueError(f"tdp_watts must be positive, got {self.tdp_watts}")
        if not 0 < self.power_cap_watts <= self.tdp_watts:
            raise ValueError(
                "power_cap_watts must be in (0, tdp_watts]; "
                f"got cap={self.power_cap_watts} tdp={self.tdp_watts}"
            )

    @property
    def is_power_capped(self) -> bool:
        """Whether this GPU runs under a cap below its TDP."""
        return self.power_cap_watts < self.tdp_watts

    @property
    def power_cap_fraction(self) -> float:
        """Cap expressed as a fraction of TDP (1.0 when uncapped)."""
        return self.power_cap_watts / self.tdp_watts

    @property
    def memory_to_compute_ratio(self) -> float:
        """HBM bandwidth (GB/s) per TFLOP — higher favours the token phase."""
        return self.hbm_bandwidth_gbps / self.fp16_tflops


#: NVIDIA A100 80GB SXM (values from Table I of the paper).
GPU_A100 = GpuSpec(
    name="A100",
    fp16_tflops=19.5,
    hbm_capacity_gb=80.0,
    hbm_bandwidth_gbps=2039.0,
    tdp_watts=400.0,
    power_cap_watts=400.0,
    nvlink_gbps=50.0,
    infiniband_gbps=200.0,
    cost_per_hour=17.6,
)

#: NVIDIA H100 80GB SXM (values from Table I of the paper).
GPU_H100 = GpuSpec(
    name="H100",
    fp16_tflops=66.9,
    hbm_capacity_gb=80.0,
    hbm_bandwidth_gbps=3352.0,
    tdp_watts=700.0,
    power_cap_watts=700.0,
    nvlink_gbps=100.0,
    infiniband_gbps=400.0,
    cost_per_hour=38.0,
)

_REGISTRY: dict[str, GpuSpec] = {
    "A100": GPU_A100,
    "H100": GPU_H100,
}


def registered_gpus() -> dict[str, GpuSpec]:
    """Return a copy of the registry of known GPU specs keyed by name."""
    return dict(_REGISTRY)


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by name (case-insensitive).

    Raises:
        KeyError: if the GPU is not registered.
    """
    key = name.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"Unknown GPU {name!r}; known GPUs: {known}")
    return _REGISTRY[key]


def power_capped(gpu: GpuSpec, cap_fraction: float) -> GpuSpec:
    """Return a copy of ``gpu`` with its power cap set to ``cap_fraction`` of TDP.

    The Splitwise-HHcap design caps token-pool H100 GPUs to 50% of their TDP
    (which caps the whole DGX machine to roughly 70% of its rated power once
    the non-GPU components are accounted for).

    Args:
        gpu: The GPU to derive from.
        cap_fraction: Fraction of TDP in ``(0, 1]``.
    """
    if not 0 < cap_fraction <= 1:
        raise ValueError(f"cap_fraction must be in (0, 1], got {cap_fraction}")
    capped = replace(gpu, power_cap_watts=gpu.tdp_watts * cap_fraction)
    if cap_fraction < 1:
        capped = replace(capped, name=f"{gpu.name}-cap{int(round(cap_fraction * 100))}")
    return capped
