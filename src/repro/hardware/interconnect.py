"""Cluster interconnect model.

KV-cache transfers in Splitwise travel over the InfiniBand back-plane between
the prompt machine and the token machine.  The model here is intentionally
simple — latency plus bandwidth — because that is all the paper's transfer
analysis (Figs. 14 and 15) requires: the serialized transfer time grows
linearly with the KV-cache size, and the per-layer overlapped transfer leaves
only a small constant non-overlapped residue.

Bandwidth convention: machine specs quote link speed in **Gbps** (gigabits per
second, as in the paper); transfer sizes are in bytes, so the link converts
via an efficiency factor that accounts for protocol overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fraction of raw link bandwidth achievable for large RDMA transfers.
DEFAULT_LINK_EFFICIENCY = 0.85

#: One-way software + NIC latency for a put/semaphore pair, in seconds.
DEFAULT_LINK_LATENCY_S = 20e-6


@dataclass(frozen=True)
class InterconnectSpec:
    """Static description of a point-to-point InfiniBand connection.

    Attributes:
        name: Identifier, e.g. ``"IB-400"``.
        bandwidth_gbps: Raw link bandwidth in gigabits per second.
        efficiency: Achievable fraction of the raw bandwidth.
        latency_s: Fixed per-message latency in seconds.
    """

    name: str
    bandwidth_gbps: float
    efficiency: float = DEFAULT_LINK_EFFICIENCY
    latency_s: float = DEFAULT_LINK_LATENCY_S

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {self.latency_s}")

    @property
    def effective_bytes_per_second(self) -> float:
        """Achievable payload bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9 / 8 * self.efficiency

    def transfer_time(self, num_bytes: float) -> float:
        """Time in seconds to move ``num_bytes`` over the link.

        Includes one fixed message latency; zero-byte transfers still pay it
        (the semaphore signal in the MSCCL++ implementation).
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.latency_s + num_bytes / self.effective_bytes_per_second


@dataclass(frozen=True)
class Link:
    """A directed connection between two machines in the cluster.

    Attributes:
        source: Name of the sending machine.
        destination: Name of the receiving machine.
        spec: The interconnect characteristics of the connection.
    """

    source: str
    destination: str
    spec: InterconnectSpec

    def transfer_time(self, num_bytes: float) -> float:
        """Time in seconds to move ``num_bytes`` across this link."""
        return self.spec.transfer_time(num_bytes)


#: InfiniBand as deployed with A100 clusters (200 Gbps per machine pair).
INFINIBAND_200 = InterconnectSpec(name="IB-200", bandwidth_gbps=200.0)

#: InfiniBand as deployed with H100 clusters (400 Gbps per machine pair).
INFINIBAND_400 = InterconnectSpec(name="IB-400", bandwidth_gbps=400.0)


def infiniband_for(source_bandwidth_gbps: float, destination_bandwidth_gbps: float) -> InterconnectSpec:
    """Build the interconnect between two machines.

    The achievable bandwidth between a prompt and token machine is limited by
    the slower endpoint; a heterogeneous Splitwise-HA pair (H100 -> A100) is
    therefore limited by the A100's 200 Gbps links, as the paper assumes.
    """
    bandwidth = min(source_bandwidth_gbps, destination_bandwidth_gbps)
    return InterconnectSpec(name=f"IB-{int(bandwidth)}", bandwidth_gbps=bandwidth)
