"""Hardware descriptions: GPUs, DGX machines, and cluster interconnects.

This subpackage captures the hardware facts the paper relies on (Table I of
Splitwise) as plain data objects.  Nothing in here simulates time; it only
describes capability (FLOPs, HBM bandwidth, power, link bandwidth, cost) that
the performance, power, and transfer models consume.
"""

from repro.hardware.gpu import (
    GPU_A100,
    GPU_H100,
    GpuSpec,
    get_gpu,
    power_capped,
    registered_gpus,
)
from repro.hardware.interconnect import (
    InterconnectSpec,
    Link,
    infiniband_for,
)
from repro.hardware.machine import (
    DGX_A100,
    DGX_H100,
    DGX_H100_CAPPED,
    MachineSpec,
    get_machine,
    registered_machines,
)

__all__ = [
    "GpuSpec",
    "GPU_A100",
    "GPU_H100",
    "get_gpu",
    "registered_gpus",
    "power_capped",
    "MachineSpec",
    "DGX_A100",
    "DGX_H100",
    "DGX_H100_CAPPED",
    "get_machine",
    "registered_machines",
    "InterconnectSpec",
    "Link",
    "infiniband_for",
]
