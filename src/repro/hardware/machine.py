"""DGX machine specifications.

A Splitwise *machine* is an 8-GPU DGX box running one model replica with
tensor parallelism across all 8 GPUs (the paper uses TP-8 for best latency).
The machine spec aggregates GPU capability and adds machine-level power and
cost, which are what the provisioning framework optimizes.

The paper normalizes cost and power to DGX-A100 in Table V:

================  =========  =========  =================
Design machine    Cost       Power      Interconnect BW
================  =========  =========  =================
DGX-A100          1x         1x         1x (200 Gbps)
DGX-H100          2.35x      1.75x      2x (400 Gbps)
DGX-H100 (capped) 2.5x/2.35x 1.23x      2x (400 Gbps)
================  =========  =========  =================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.gpu import GPU_A100, GPU_H100, GpuSpec, power_capped

#: Fraction of machine power not drawn by GPUs (CPUs, NICs, fans, ...).
#: A DGX-H100 is rated ~10.2 kW with 8x700 W GPUs, i.e. ~45% overhead; the
#: paper's 1.23x power ratio for HHcap implies the same structure.  We use a
#: constant host overhead fraction relative to the GPU TDP total.
HOST_POWER_OVERHEAD_FRACTION = 0.35


@dataclass(frozen=True)
class MachineSpec:
    """Static description of an 8-GPU inference machine (one model replica).

    Attributes:
        name: Identifier, e.g. ``"DGX-A100"``.
        gpu: The GPU populating the machine.
        num_gpus: GPUs per machine (8 for all DGX systems studied).
        tensor_parallelism: Degree of tensor parallelism used for serving.
        cost_per_hour: Machine rental cost in $/hr.
        interconnect_gbps: Per-machine InfiniBand bandwidth (Gbps) available
            for KV-cache transfers to other machines.
    """

    name: str
    gpu: GpuSpec
    num_gpus: int = 8
    tensor_parallelism: int = 8
    cost_per_hour: float = field(default=0.0)
    interconnect_gbps: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.tensor_parallelism <= 0 or self.tensor_parallelism > self.num_gpus:
            raise ValueError(
                "tensor_parallelism must be in [1, num_gpus]; "
                f"got {self.tensor_parallelism} with {self.num_gpus} GPUs"
            )
        if self.cost_per_hour == 0.0:
            object.__setattr__(self, "cost_per_hour", self.gpu.cost_per_hour)
        if self.interconnect_gbps == 0.0:
            object.__setattr__(self, "interconnect_gbps", self.gpu.infiniband_gbps)

    # -- aggregate capability -------------------------------------------------

    @property
    def total_fp16_tflops(self) -> float:
        """Aggregate dense FP16 TFLOPs across all GPUs."""
        return self.gpu.fp16_tflops * self.num_gpus

    @property
    def total_hbm_capacity_gb(self) -> float:
        """Aggregate HBM capacity in GB."""
        return self.gpu.hbm_capacity_gb * self.num_gpus

    @property
    def total_hbm_bandwidth_gbps(self) -> float:
        """Aggregate HBM bandwidth in GB/s."""
        return self.gpu.hbm_bandwidth_gbps * self.num_gpus

    # -- power ----------------------------------------------------------------

    @property
    def gpu_tdp_watts(self) -> float:
        """Total GPU TDP (uncapped) in watts."""
        return self.gpu.tdp_watts * self.num_gpus

    @property
    def gpu_power_cap_watts(self) -> float:
        """Total GPU power cap in watts."""
        return self.gpu.power_cap_watts * self.num_gpus

    @property
    def provisioned_power_watts(self) -> float:
        """Peak power a provider must provision for this machine.

        Host overhead is charged on the uncapped GPU TDP (fans, CPUs, NICs do
        not scale down when GPUs are capped), matching the paper's 1.23x power
        ratio for the capped DGX-H100 relative to 1.75x uncapped.
        """
        host = HOST_POWER_OVERHEAD_FRACTION * self.gpu_tdp_watts
        return self.gpu_power_cap_watts + host

    @property
    def is_power_capped(self) -> bool:
        """Whether the machine's GPUs run under a power cap."""
        return self.gpu.is_power_capped


#: DGX-A100: 8x A100, 200 Gbps InfiniBand.
DGX_A100 = MachineSpec(name="DGX-A100", gpu=GPU_A100)

#: DGX-H100: 8x H100, 400 Gbps InfiniBand.
DGX_H100 = MachineSpec(name="DGX-H100", gpu=GPU_H100)

#: DGX-H100 with each GPU capped to 50% power (Splitwise-HHcap token machines).
DGX_H100_CAPPED = MachineSpec(
    name="DGX-H100-cap50",
    gpu=power_capped(GPU_H100, 0.5),
    cost_per_hour=GPU_H100.cost_per_hour,
    interconnect_gbps=GPU_H100.infiniband_gbps,
)

_REGISTRY: dict[str, MachineSpec] = {
    "DGX-A100": DGX_A100,
    "DGX-H100": DGX_H100,
    "DGX-H100-CAP50": DGX_H100_CAPPED,
}


def registered_machines() -> dict[str, MachineSpec]:
    """Return a copy of the registry of known machine specs keyed by name."""
    return dict(_REGISTRY)


def get_machine(name: str) -> MachineSpec:
    """Look up a machine spec by name (case-insensitive).

    Raises:
        KeyError: if the machine is not registered.
    """
    key = name.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"Unknown machine {name!r}; known machines: {known}")
    return _REGISTRY[key]


def with_power_cap(machine: MachineSpec, cap_fraction: float) -> MachineSpec:
    """Derive a power-capped variant of ``machine``.

    Args:
        machine: Base machine spec.
        cap_fraction: GPU power cap as a fraction of TDP in ``(0, 1]``.
    """
    capped_gpu = power_capped(machine.gpu, cap_fraction)
    name = machine.name if cap_fraction == 1 else f"{machine.name}-cap{int(round(cap_fraction * 100))}"
    return replace(machine, name=name, gpu=capped_gpu)
