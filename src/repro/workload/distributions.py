"""Token-count distributions for the coding and conversation workloads.

Fig. 3 of the paper gives the CDFs of prompt and output token counts for the
two Azure production services:

* **Coding** — large prompts (median ~1500 tokens: the user's code so far)
  and very short outputs (median ~13 tokens: the next few words).
* **Conversation** — wide prompt range (median ~1020 tokens) and an almost
  bimodal output distribution (median ~129 tokens): short acknowledgements
  mixed with long generated answers.

We model each marginal with a clipped log-normal (or a mixture of two
log-normals for the bimodal conversation outputs).  The synthetic generators
match the published medians and overall CDF shape, which is all the
simulator consumes.  :class:`EmpiricalTokenDistribution` lets users plug in
the real Azure trace instead.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class TokenDistribution(ABC):
    """A distribution over positive integer token counts."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples as an integer array."""

    @abstractmethod
    def median(self) -> float:
        """Median of the distribution (before integer rounding)."""

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single sample."""
        return int(self.sample(rng, 1)[0])


@dataclass(frozen=True)
class LogNormalTokenDistribution(TokenDistribution):
    """Clipped log-normal distribution over token counts.

    Attributes:
        median_tokens: Median of the underlying log-normal.
        sigma: Log-space standard deviation (spread of the distribution).
        min_tokens: Lower clip (inclusive).
        max_tokens: Upper clip (inclusive).
    """

    median_tokens: float
    sigma: float
    min_tokens: int = 1
    max_tokens: int = 8192

    def __post_init__(self) -> None:
        if self.median_tokens <= 0:
            raise ValueError(f"median_tokens must be positive, got {self.median_tokens}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.min_tokens < 1:
            raise ValueError(f"min_tokens must be >= 1, got {self.min_tokens}")
        if self.max_tokens < self.min_tokens:
            raise ValueError(
                f"max_tokens ({self.max_tokens}) must be >= min_tokens ({self.min_tokens})"
            )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        raw = rng.lognormal(mean=math.log(self.median_tokens), sigma=self.sigma, size=size)
        return np.clip(np.rint(raw), self.min_tokens, self.max_tokens).astype(int)

    def median(self) -> float:
        return float(np.clip(self.median_tokens, self.min_tokens, self.max_tokens))


@dataclass(frozen=True)
class MixtureTokenDistribution(TokenDistribution):
    """Weighted mixture of token distributions (used for bimodal outputs).

    Attributes:
        components: Component distributions.
        weights: Mixture weights; must sum to 1.
    """

    components: tuple[TokenDistribution, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ValueError("components and weights must be non-empty and equal length")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if not math.isclose(sum(self.weights), 1.0, rel_tol=1e-6):
            raise ValueError(f"weights must sum to 1, got {sum(self.weights)}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return np.empty(0, dtype=int)
        choices = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size, dtype=int)
        for index, component in enumerate(self.components):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = component.sample(rng, count)
        return out

    def median(self) -> float:
        # Approximate the mixture median by sampling; adequate for reporting.
        rng = np.random.default_rng(0)
        return float(np.median(self.sample(rng, 20000)))


@dataclass(frozen=True)
class EmpiricalTokenDistribution(TokenDistribution):
    """Distribution that resamples from observed token counts.

    Use this to drive the simulator with the real Azure trace: load the
    prompt/output token columns and wrap them here.
    """

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("values must be non-empty")
        if any(v < 1 for v in self.values):
            raise ValueError("all token counts must be >= 1")

    @classmethod
    def from_samples(cls, samples: Sequence[int]) -> "EmpiricalTokenDistribution":
        """Build from any sequence of observed token counts."""
        return cls(values=tuple(int(v) for v in samples))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return rng.choice(np.asarray(self.values, dtype=int), size=size, replace=True)

    def median(self) -> float:
        return float(np.median(self.values))


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: joint distribution of prompt and output token counts.

    Attributes:
        name: Workload identifier, e.g. ``"coding"``.
        prompt_tokens: Distribution of prompt (input) token counts.
        output_tokens: Distribution of generated (output) token counts.
    """

    name: str
    prompt_tokens: TokenDistribution
    output_tokens: TokenDistribution


#: Coding service: median prompt ~1500 tokens, median output ~13 tokens.
CODING_WORKLOAD = WorkloadSpec(
    name="coding",
    prompt_tokens=LogNormalTokenDistribution(median_tokens=1500, sigma=0.60, min_tokens=16, max_tokens=8192),
    output_tokens=LogNormalTokenDistribution(median_tokens=13, sigma=0.80, min_tokens=1, max_tokens=500),
)

#: Conversation service: median prompt ~1020 tokens, bimodal output, median ~129.
CONVERSATION_WORKLOAD = WorkloadSpec(
    name="conversation",
    prompt_tokens=LogNormalTokenDistribution(median_tokens=1020, sigma=0.95, min_tokens=8, max_tokens=8192),
    output_tokens=MixtureTokenDistribution(
        components=(
            LogNormalTokenDistribution(median_tokens=20, sigma=0.60, min_tokens=1, max_tokens=400),
            LogNormalTokenDistribution(median_tokens=350, sigma=0.60, min_tokens=32, max_tokens=1500),
        ),
        weights=(0.47, 0.53),
    ),
)

_REGISTRY: dict[str, WorkloadSpec] = {
    "CODING": CODING_WORKLOAD,
    "CONVERSATION": CONVERSATION_WORKLOAD,
}


def registered_workloads() -> dict[str, WorkloadSpec]:
    """Return a copy of the registry of known workloads keyed by name."""
    return dict(_REGISTRY)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by name (case-insensitive).

    Raises:
        KeyError: if the workload is not registered.
    """
    key = name.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"Unknown workload {name!r}; known workloads: {known}")
    return _REGISTRY[key]
