"""Request arrival processes.

The paper tunes a Poisson arrival rate over the production token-size
distributions to sweep cluster load (requests per second) when sizing
clusters.  A deterministic (uniform-spacing) process is also provided for
reproducible micro-experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class ArrivalProcess(ABC):
    """Generates request arrival timestamps (seconds from trace start)."""

    rate_rps: float

    @abstractmethod
    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        """Arrival times within ``[0, duration_s)``, sorted ascending."""


def homogeneous_poisson_times(
    rng: np.random.Generator, rate_rps: float, duration_s: float
) -> np.ndarray:
    """Sorted homogeneous-Poisson arrival times in ``[0, duration_s)``.

    The shared sampling kernel for every Poisson-derived process (stationary
    and the piecewise/thinned/modulated processes in
    :mod:`repro.workload.scenarios`): draw enough exponential gaps to cover
    the window with margin, then top up in the unlikely case the draw fell
    short.  Consumes no randomness when the window or rate is empty.
    """
    if rate_rps <= 0.0 or duration_s <= 0.0:
        return np.empty(0, dtype=float)
    expected = rate_rps * duration_s
    gaps = rng.exponential(1.0 / rate_rps, size=max(16, int(expected * 1.3) + 16))
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration_s:
        extra = rng.exponential(1.0 / rate_rps, size=max(16, int(expected * 0.3) + 16))
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    return times[times < duration_s]


@dataclass(frozen=True)
class PoissonArrivalProcess(ArrivalProcess):
    """Memoryless arrivals at an average of ``rate_rps`` requests per second."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        return homogeneous_poisson_times(rng, self.rate_rps, duration_s)


@dataclass(frozen=True)
class UniformArrivalProcess(ArrivalProcess):
    """Deterministic arrivals spaced exactly ``1 / rate_rps`` seconds apart."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")

    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        count = int(np.floor(duration_s * self.rate_rps))
        return np.arange(count, dtype=float) / self.rate_rps
