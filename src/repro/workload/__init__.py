"""Workload generation: token-size distributions, arrivals, and traces.

The paper drives its characterization and cluster simulations with
production traces from two Azure LLM inference services (coding and
conversation), released as part of the Azure Public Dataset.  Those traces
only expose (arrival time, prompt tokens, output tokens); this package
provides synthetic generators whose distributions match the published CDFs
(Fig. 3), plus utilities to load externally supplied traces in the same CSV
format as the public release.
"""

from repro.workload.arrival import ArrivalProcess, PoissonArrivalProcess, UniformArrivalProcess
from repro.workload.distributions import (
    CODING_WORKLOAD,
    CONVERSATION_WORKLOAD,
    EmpiricalTokenDistribution,
    LogNormalTokenDistribution,
    MixtureTokenDistribution,
    TokenDistribution,
    WorkloadSpec,
    get_workload,
    registered_workloads,
)
from repro.workload.generator import TraceGenerator, generate_trace
from repro.workload.scenarios import (
    SCENARIO_PRESETS,
    MarkovModulatedArrival,
    PiecewiseRateArrival,
    Scenario,
    SinusoidalDiurnalArrival,
    concat_traces,
    get_scenario,
    mix_traces,
    splice_traces,
)
from repro.workload.trace import RequestDescriptor, Trace

__all__ = [
    "PiecewiseRateArrival",
    "SinusoidalDiurnalArrival",
    "MarkovModulatedArrival",
    "Scenario",
    "SCENARIO_PRESETS",
    "get_scenario",
    "concat_traces",
    "splice_traces",
    "mix_traces",
    "TokenDistribution",
    "LogNormalTokenDistribution",
    "MixtureTokenDistribution",
    "EmpiricalTokenDistribution",
    "WorkloadSpec",
    "CODING_WORKLOAD",
    "CONVERSATION_WORKLOAD",
    "get_workload",
    "registered_workloads",
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "UniformArrivalProcess",
    "RequestDescriptor",
    "Trace",
    "TraceGenerator",
    "generate_trace",
]
