"""Request traces: the input the cluster simulator consumes.

A trace is an ordered list of :class:`RequestDescriptor` records —
``(request id, arrival time, prompt tokens, output tokens, tenant)`` — the
information the public Azure LLM inference trace exposes plus a tenant tag
for multi-tenant fleets.  Traces can be generated synthetically
(:mod:`repro.workload.generator`), loaded from CSV files in the Azure Public
Dataset column layout, rescaled to different request rates, truncated to
shorter windows, and re-tagged to a tenant.

Tenant assignment lives here (and in the generator) rather than in any one
scenario preset: every trace transformation — rescaling, truncation,
composition (:mod:`repro.workload.scenarios`), serialization — preserves the
tenant tag, so replayed and composed traces keep their per-tenant identity
all the way into the fleet's per-tenant SLO report.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Tenant tag for requests that were never explicitly assigned one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class RequestDescriptor:
    """One inference request as described by a trace.

    Attributes:
        request_id: Unique identifier within the trace.
        arrival_time_s: Arrival time in seconds from trace start.
        prompt_tokens: Number of input (prompt) tokens.
        output_tokens: Number of tokens the model must generate (>= 1; the
            first one is produced by the prompt phase).
        tenant: Tenant the request belongs to (per-tenant SLO accounting and
            tenant-aware fleet routing group by this tag).
        ttft_deadline_s: Optional per-request TTFT deadline (seconds from
            arrival).  Overrides any per-tenant deadline configured on the
            fleet's request-lifecycle layer; ``None`` defers to it.
        e2e_deadline_s: Optional per-request end-to-end deadline (seconds
            from arrival).  Same precedence as ``ttft_deadline_s``.
    """

    request_id: int
    arrival_time_s: float
    prompt_tokens: int
    output_tokens: int
    tenant: str = DEFAULT_TENANT
    ttft_deadline_s: float | None = None
    e2e_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_time_s < 0:
            raise ValueError(f"arrival_time_s must be non-negative, got {self.arrival_time_s}")
        if self.prompt_tokens < 1:
            raise ValueError(f"prompt_tokens must be >= 1, got {self.prompt_tokens}")
        if self.output_tokens < 1:
            raise ValueError(f"output_tokens must be >= 1, got {self.output_tokens}")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")
        for name in ("ttft_deadline_s", "e2e_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")

    @property
    def total_tokens(self) -> int:
        """Prompt plus output tokens."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class Trace:
    """An ordered collection of request descriptors plus provenance metadata.

    Attributes:
        requests: Requests sorted by arrival time.
        name: Human-readable provenance (workload name, rate, seed).
        metadata: Free-form extra information carried along with the trace.
    """

    requests: tuple[RequestDescriptor, ...]
    name: str = "trace"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arrivals = [r.arrival_time_s for r in self.requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            object.__setattr__(
                self, "requests", tuple(sorted(self.requests, key=lambda r: r.arrival_time_s))
            )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RequestDescriptor]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> RequestDescriptor:
        return self.requests[index]

    @property
    def duration_s(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.requests[-1].arrival_time_s if self.requests else 0.0

    @property
    def request_rate_rps(self) -> float:
        """Average arrival rate over the trace duration."""
        if not self.requests or self.duration_s == 0:
            return 0.0
        return len(self.requests) / self.duration_s

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[tuple[float, int, int]],
        name: str = "trace",
        metadata: dict | None = None,
    ) -> "Trace":
        """Build a trace from ``(arrival_time_s, prompt_tokens, output_tokens)`` rows."""
        requests = tuple(
            RequestDescriptor(
                request_id=i, arrival_time_s=float(t), prompt_tokens=int(p), output_tokens=int(o)
            )
            for i, (t, p, o) in enumerate(records)
        )
        return cls(requests=requests, name=name, metadata=metadata or {})

    # -- transformations ----------------------------------------------------------

    def truncated(self, duration_s: float) -> "Trace":
        """Return a copy containing only arrivals before ``duration_s``."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        kept = tuple(r for r in self.requests if r.arrival_time_s < duration_s)
        return Trace(requests=kept, name=self.name, metadata={**self.metadata, "truncated_to_s": duration_s})

    def scaled_to_rate(self, target_rps: float) -> "Trace":
        """Rescale arrival times so the average rate becomes ``target_rps``.

        The paper uses the same trick to sweep load: keep the token-size
        distribution and arrival pattern, compress or stretch time.
        """
        if target_rps <= 0:
            raise ValueError(f"target_rps must be positive, got {target_rps}")
        current = self.request_rate_rps
        if current == 0:
            raise ValueError("cannot rescale an empty or instantaneous trace")
        factor = current / target_rps
        requests = tuple(
            replace(r, arrival_time_s=r.arrival_time_s * factor) for r in self.requests
        )
        return Trace(requests=requests, name=self.name, metadata={**self.metadata, "scaled_to_rps": target_rps})

    def with_tenant(self, tenant: str) -> "Trace":
        """Return a copy with every request assigned to ``tenant``.

        This is the one sanctioned way to (re-)tag a trace: presets tag their
        component traces before composing them, and replayed CSV traces can
        be tagged before joining a multi-tenant mix.
        """
        if not tenant:
            raise ValueError("tenant must be a non-empty string")
        requests = tuple(replace(r, tenant=tenant) for r in self.requests)
        return Trace(requests=requests, name=self.name, metadata={**self.metadata, "tenant": tenant})

    def tenants(self) -> tuple[str, ...]:
        """Distinct tenant tags present in the trace, sorted."""
        return tuple(sorted({r.tenant for r in self.requests}))

    # -- statistics ---------------------------------------------------------------

    def prompt_token_counts(self) -> list[int]:
        """Prompt token count of every request."""
        return [r.prompt_tokens for r in self.requests]

    def output_token_counts(self) -> list[int]:
        """Output token count of every request."""
        return [r.output_tokens for r in self.requests]

    # -- serialization -------------------------------------------------------------

    _CSV_COLUMNS: Sequence[str] = (
        "request_id",
        "arrival_time_s",
        "prompt_tokens",
        "output_tokens",
        "tenant",
        "ttft_deadline_s",
        "e2e_deadline_s",
    )

    def to_csv(self, path: str | Path) -> Path:
        """Write the trace as CSV (Azure Public Dataset column layout plus tenant)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_COLUMNS)
            for r in self.requests:
                writer.writerow(
                    [
                        r.request_id,
                        f"{r.arrival_time_s:.6f}",
                        r.prompt_tokens,
                        r.output_tokens,
                        r.tenant,
                        "" if r.ttft_deadline_s is None else repr(r.ttft_deadline_s),
                        "" if r.e2e_deadline_s is None else repr(r.e2e_deadline_s),
                    ]
                )
        return path

    @classmethod
    def from_csv(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Load a trace from a CSV produced by :meth:`to_csv`.

        CSVs written before the tenant or deadline columns existed (or raw
        Azure-layout files) load with every request on the default tenant and
        no per-request deadlines.
        """
        path = Path(path)
        requests = []
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                ttft_deadline = row.get("ttft_deadline_s") or None
                e2e_deadline = row.get("e2e_deadline_s") or None
                requests.append(
                    RequestDescriptor(
                        request_id=int(row["request_id"]),
                        arrival_time_s=float(row["arrival_time_s"]),
                        prompt_tokens=int(row["prompt_tokens"]),
                        output_tokens=int(row["output_tokens"]),
                        tenant=row.get("tenant") or DEFAULT_TENANT,
                        ttft_deadline_s=None if ttft_deadline is None else float(ttft_deadline),
                        e2e_deadline_s=None if e2e_deadline is None else float(e2e_deadline),
                    )
                )
        return cls(requests=tuple(requests), name=name or path.stem)

    def to_json(self, path: str | Path) -> Path:
        """Write the trace (including metadata) as JSON."""
        path = Path(path)
        payload = {
            "name": self.name,
            "metadata": self.metadata,
            "requests": [
                {
                    "request_id": r.request_id,
                    "arrival_time_s": r.arrival_time_s,
                    "prompt_tokens": r.prompt_tokens,
                    "output_tokens": r.output_tokens,
                    "tenant": r.tenant,
                    "ttft_deadline_s": r.ttft_deadline_s,
                    "e2e_deadline_s": r.e2e_deadline_s,
                }
                for r in self.requests
            ],
        }
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        requests = tuple(
            RequestDescriptor(
                request_id=r["request_id"],
                arrival_time_s=r["arrival_time_s"],
                prompt_tokens=r["prompt_tokens"],
                output_tokens=r["output_tokens"],
                tenant=r.get("tenant", DEFAULT_TENANT),
                ttft_deadline_s=r.get("ttft_deadline_s"),
                e2e_deadline_s=r.get("e2e_deadline_s"),
            )
            for r in payload["requests"]
        )
        return cls(requests=requests, name=payload.get("name", "trace"), metadata=payload.get("metadata", {}))
