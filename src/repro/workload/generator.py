"""Synthetic trace generation.

Combines a :class:`~repro.workload.distributions.WorkloadSpec` (token-size
distributions matching the published Azure CDFs) with an arrival process to
produce the traces that drive the cluster simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.arrival import ArrivalProcess, PoissonArrivalProcess
from repro.workload.distributions import WorkloadSpec, get_workload
from repro.workload.trace import DEFAULT_TENANT, RequestDescriptor, Trace


@dataclass(frozen=True)
class TraceGenerator:
    """Generates synthetic traces for one workload.

    Attributes:
        workload: Token-size distributions to draw request shapes from.
        arrival: Arrival process controlling request timing.
        seed: Seed for the pseudo-random generator (deterministic traces).
        tenant: Tenant tag stamped on every generated request (multi-tenant
            traces are built by generating one trace per tenant and composing
            them; see :func:`repro.workload.scenarios.mix_traces`).
    """

    workload: WorkloadSpec
    arrival: ArrivalProcess
    seed: int = 0
    tenant: str = DEFAULT_TENANT

    def generate(self, duration_s: float) -> Trace:
        """Generate a trace covering ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        rng = np.random.default_rng(self.seed)
        arrivals = self.arrival.arrival_times(rng, duration_s)
        count = len(arrivals)
        prompts = self.workload.prompt_tokens.sample(rng, count)
        outputs = self.workload.output_tokens.sample(rng, count)
        requests = tuple(
            RequestDescriptor(
                request_id=i,
                arrival_time_s=float(arrivals[i]),
                prompt_tokens=int(prompts[i]),
                output_tokens=int(outputs[i]),
                tenant=self.tenant,
            )
            for i in range(count)
        )
        name = f"{self.workload.name}-{self.arrival.rate_rps:g}rps-seed{self.seed}"
        metadata = {
            "workload": self.workload.name,
            "rate_rps": self.arrival.rate_rps,
            "duration_s": duration_s,
            "seed": self.seed,
        }
        if self.tenant != DEFAULT_TENANT:
            metadata["tenant"] = self.tenant
        return Trace(requests=requests, name=name, metadata=metadata)


def generate_trace(
    workload: str | WorkloadSpec = "conversation",
    rate_rps: float = 2.0,
    duration_s: float = 60.0,
    seed: int = 0,
) -> Trace:
    """Convenience wrapper: Poisson arrivals over a named workload.

    Args:
        workload: Workload name (``"coding"`` or ``"conversation"``) or a
            custom :class:`WorkloadSpec`.
        rate_rps: Average request arrival rate.
        duration_s: Trace length in seconds.
        seed: Random seed for reproducibility.
    """
    spec = get_workload(workload) if isinstance(workload, str) else workload
    generator = TraceGenerator(workload=spec, arrival=PoissonArrivalProcess(rate_rps), seed=seed)
    return generator.generate(duration_s)
