"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned by the engine at scheduling time, which makes simulations fully
deterministic: two events at the same timestamp and priority fire in the
order they were scheduled.

Events support *tombstone cancellation*: :meth:`SimulationEngine.cancel
<repro.simulation.engine.SimulationEngine.cancel>` marks an event as
cancelled instead of removing it from the heap (an O(n) operation); the
engine silently discards cancelled events when they surface at the head of
the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

# Same-timestamp ordering across the stack follows a fixed priority ladder
# (lower fires first).  Every ``engine.schedule_*`` call site must pass one of
# these named constants (or a module-local ``*_PRIORITY`` alias of one) —
# enforced by simlint rule SIM004 — so the ladder stays auditable in one place:
#
# 0. machine iteration finishes free capacity first,
# 1. machine start kicks and fault injections mutate the world second,
# 2. arrivals route against the post-fault state,
# 3. request-lifecycle timers (deadlines, hedges, retry backoffs) and
#    autoscaler ticks observe a settled instant — a completion beats its own
#    deadline,
# 4. the fleet provisioner reacts last, after every same-instant signal,
# 5. the observability metrics ticker samples after everything else — it is a
#    pure observer and must read an instant no controller will touch again.

FINISH_EVENT_PRIORITY = 0
START_EVENT_PRIORITY = 1
FAULT_EVENT_PRIORITY = 1
ARRIVAL_EVENT_PRIORITY = 2
LIFECYCLE_EVENT_PRIORITY = 3
AUTOSCALER_TICK_PRIORITY = 3
PROVISIONER_TICK_PRIORITY = 4
METRICS_TICK_PRIORITY = 5


@dataclass(order=True, frozen=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break between events at the same time (lower first).
        sequence: Monotonic insertion counter (assigned by the engine).
        action: Zero-argument callable executed when the event fires.
        tag: Optional human-readable label for debugging and tracing.
        cancelled: Tombstone flag; cancelled events are skipped by the engine.
        fired: Whether the event has already executed (set by the engine).
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    @property
    def live(self) -> bool:
        """Whether the event is still pending (neither fired nor cancelled)."""
        return not self.cancelled and not self.fired

    # The dataclass is frozen so callers cannot corrupt ordering fields while
    # the event sits in the heap; the two status flags are still mutated
    # through these narrow helpers (used only by the engine).

    def _mark_cancelled(self) -> None:
        object.__setattr__(self, "cancelled", True)

    def _mark_fired(self) -> None:
        object.__setattr__(self, "fired", True)
