"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned by the engine at scheduling time, which makes simulations fully
deterministic: two events at the same timestamp and priority fire in the
order they were scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break between events at the same time (lower first).
        sequence: Monotonic insertion counter (assigned by the engine).
        action: Zero-argument callable executed when the event fires.
        tag: Optional human-readable label for debugging and tracing.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
