"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned by the engine at scheduling time, which makes simulations fully
deterministic: two events at the same timestamp and priority fire in the
order they were scheduled.

Events support *tombstone cancellation*: :meth:`SimulationEngine.cancel
<repro.simulation.engine.SimulationEngine.cancel>` marks an event as
cancelled instead of removing it from the heap (an O(n) operation); the
engine silently discards cancelled events when they surface at the head of
the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, frozen=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time (seconds) at which the event fires.
        priority: Tie-break between events at the same time (lower first).
        sequence: Monotonic insertion counter (assigned by the engine).
        action: Zero-argument callable executed when the event fires.
        tag: Optional human-readable label for debugging and tracing.
        cancelled: Tombstone flag; cancelled events are skipped by the engine.
        fired: Whether the event has already executed (set by the engine).
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    @property
    def live(self) -> bool:
        """Whether the event is still pending (neither fired nor cancelled)."""
        return not self.cancelled and not self.fired

    # The dataclass is frozen so callers cannot corrupt ordering fields while
    # the event sits in the heap; the two status flags are still mutated
    # through these narrow helpers (used only by the engine).

    def _mark_cancelled(self) -> None:
        object.__setattr__(self, "cancelled", True)

    def _mark_fired(self) -> None:
        object.__setattr__(self, "fired", True)
