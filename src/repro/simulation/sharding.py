"""Sharded parallel execution of decomposable fleet simulations.

A :class:`~repro.fleet.fleet.FleetSimulation` normally advances every member
cluster on one shared :class:`~repro.simulation.engine.SimulationEngine`.
This module partitions the fleet into *shards* — disjoint cluster groups,
each with its own engine — that advance independently between bounded-lag
barriers, optionally on ``multiprocessing`` workers.  Cross-shard
interactions only occur at epoch boundaries: the coordinator routes every
arrival up front (the router is the single cross-shard decision point of a
decomposable fleet) and streams compact, deterministic arrival batches into
each shard at each barrier; shards return completions, per-machine metrics,
and engine counters after the final drain, and the coordinator merges them
into one :class:`~repro.fleet.fleet.FleetResult`.

Decomposability (:func:`plan_shards`) is conservative: a fleet qualifies for
parallel execution only when no component feeds cross-cluster state back
into routing or scheduling mid-run — the ``weighted-rr`` policy (a smooth
weighted round-robin over static machine counts, no completion feedback,
no RNG) with no provisioner, no reliability/admission/lifecycle layers, no
armed fault plane, no observability plane, and no per-cluster autoscalers
(their stop condition couples to the fleet-wide census).  Plain machine
failure injections *are* shard-local (requests restart on the surviving
machines of the same cluster) and stay eligible.  Anything else falls back
to the serial engine with the blocking reasons recorded in the plan — the
fallback is the exact serial code path, so results are trivially
byte-identical.

Determinism of the parallel path rests on three facts, each load-bearing:

* Pre-routing order equals serial routing order.  Serial fleets schedule
  arrivals at :data:`~repro.simulation.events.ARRIVAL_EVENT_PRIORITY` in
  trace order, so the heap executes them by ``(arrival_time, trace_index)``;
  the coordinator routes in exactly that sort order, through the *same*
  router instance, so every request lands on the same cluster.
* Epoch batches use a strict ``< barrier`` cut while the shard engine runs
  ``until=barrier`` inclusively: local events at exactly the barrier time
  (priorities 0/1) execute in the closing epoch, arrivals at exactly the
  barrier (priority 2) fire first thing in the next epoch — the same
  relative order the serial priority ladder produces.  A decomposable fleet
  schedules no priority > 2 events, so nothing can fire between them.
* Shard merge is positional: completions are keyed by trace index, machine
  stats by machine name, so the merge is independent of worker count,
  shard assignment, and message arrival order.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ARRIVAL_EVENT_PRIORITY
from repro.simulation.request import Request, RequestPhase

if TYPE_CHECKING:  # pragma: no cover - typing only (fleet layers above simulation)
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext

    from repro.core.cluster import ClusterSimulation
    from repro.fleet.fleet import FleetSimulation


#: Default number of epochs a trace window is divided into when the caller
#: does not pin ``epoch_s``.  Any positive epoch length is parity-correct
#: (barriers only bound shard lag, they never reorder events); this is a
#: throughput knob balancing message batching against peak memory.
DEFAULT_EPOCH_COUNT = 64

#: A routed arrival crossing into a shard: ``(trace_index, descriptor,
#: cluster_name)``.  The descriptor carries the arrival time.
ArrivalMessage = tuple[int, Any, str]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the worker-side traceback text."""


@dataclass(frozen=True)
class ShardPlan:
    """Outcome of the decomposability analysis for one fleet run.

    Attributes:
        requested: Worker count the caller asked for (``parallel=N``).
        workers: OS worker processes to launch (0 = in-process shard
            execution, used for ``N=1`` so the barrier logic still runs).
        shard_count: Engine shards (min of requested workers and clusters).
        mode: ``"parallel"`` when the fleet decomposes, ``"serial"`` when it
            must fall back to the single shared engine.
        reasons: Human-readable couplings that blocked parallel execution
            (empty when ``mode == "parallel"``).
        assignments: Cluster names per shard (round-robin partition),
            empty on serial fallback.
    """

    requested: int
    workers: int
    shard_count: int
    mode: str
    reasons: tuple[str, ...]
    assignments: tuple[tuple[str, ...], ...]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its cluster group from scratch.

    Picklable by construction: designs, models, and cluster kwargs are plain
    frozen dataclasses / scalars.  Workers never receive live simulation
    objects — each builds fresh :class:`~repro.core.cluster.ClusterSimulation`
    instances on its own engine, which is what makes shard state trivially
    serializable.
    """

    shard_id: int
    cluster_names: tuple[str, ...]
    design: Any
    model: Any
    cluster_kwargs: tuple[tuple[str, Any], ...]
    failures: tuple[tuple[float, str], ...]
    sanitize: bool


@dataclass
class ShardResult:
    """A shard's complete output, shipped back after the final drain.

    ``request_rows`` hold one tuple per routed request (see
    :func:`request_row`); ``machine_stats`` maps cluster name to that
    cluster's :meth:`~repro.metrics.collectors.MetricsCollector.export_machine_stats`
    payload.  ``last_event_time`` is the shard engine's last *executed*
    event time (its clock may sit later, clamped to the final barrier).
    """

    shard_id: int
    last_event_time: float
    events_processed: int
    events_cancelled: int
    events_coalesced: int
    heap_compactions: int
    request_rows: list[tuple]
    machine_stats: dict[str, dict[str, dict]]


def plan_shards(
    fleet: "FleetSimulation",
    requested: int,
    drain: bool = True,
    horizon_s: float | None = None,
) -> ShardPlan:
    """Decide whether (and how) a fleet run can execute as parallel shards.

    Args:
        fleet: The fleet about to run.
        requested: Requested worker count (``parallel=N``, must be >= 1).
        drain: The run's ``drain`` flag.
        horizon_s: The run's ``horizon_s`` argument.

    Returns:
        A :class:`ShardPlan`; ``mode == "serial"`` lists every coupling that
        forces the fallback.
    """
    if requested < 1:
        raise ValueError(f"parallel worker count must be >= 1, got {requested}")
    reasons: list[str] = []
    if len(fleet.clusters) < 2:
        reasons.append("fewer than two clusters: nothing to shard")
    policy = fleet.router.policy
    if policy != "weighted-rr":
        reasons.append(
            f"router policy {policy!r} feeds completion/outstanding state back into routing"
        )
    if fleet.router.reliability is not None:
        reasons.append("router reliability tracking consumes cross-cluster error feedback")
    if fleet.provisioner is not None:
        reasons.append("provisioner acts on fleet-wide pressure at its own cadence")
    if fleet.admission is not None:
        reasons.append("admission control sheds on fleet-wide outstanding load")
    if fleet.lifecycle is not None:
        reasons.append("lifecycle layer re-routes retries/hedges across clusters")
    if fleet.faults is not None and fleet.faults.enabled:
        reasons.append("armed fault plane injects correlated cross-cluster outages")
    if fleet.obs is not None:
        reasons.append("observability plane records one fleet-wide timeline")
    if any(cluster.simulation.autoscaler is not None for cluster in fleet.clusters):
        reasons.append("per-cluster autoscaler stop couples to the fleet-wide census")
    if not drain:
        reasons.append("non-draining runs stop all clusters on one shared clock")
    if horizon_s is not None:
        reasons.append("horizon-bounded runs stop all clusters on one shared clock")
    if reasons:
        return ShardPlan(
            requested=requested,
            workers=0,
            shard_count=1,
            mode="serial",
            reasons=tuple(reasons),
            assignments=(),
        )
    names = [cluster.name for cluster in fleet.clusters]
    shard_count = min(requested, len(names))
    assignments = tuple(tuple(names[index::shard_count]) for index in range(shard_count))
    workers = shard_count if requested > 1 else 0
    return ShardPlan(
        requested=requested,
        workers=workers,
        shard_count=shard_count,
        mode="parallel",
        reasons=(),
        assignments=assignments,
    )


def default_epoch_s(duration_s: float) -> float:
    """Default barrier spacing: the trace window split into a fixed epoch count."""
    return max(duration_s, 1.0) / DEFAULT_EPOCH_COUNT


# -- request row transfer ---------------------------------------------------------


def request_row(index: int, request: Request) -> tuple:
    """Pack one simulated request into a flat picklable row.

    Columnar token-time segments are materialized into the packed
    ``array('d')`` here, on the worker, so the row carries plain scalars and
    one typed array — no live simulation objects cross the process boundary.
    """
    return (
        index,
        request.phase.value,
        request.prompt_machine,
        request.token_machine,
        request.prompt_start_time,
        request.first_token_time,
        request.completion_time,
        request.generated_tokens,
        request.kv_transfer_start,
        request.kv_transfer_end,
        request.preemptions,
        request.priority_boost,
        request.restarts,
        array("d", request.token_times),
    )


def apply_request_row(request: Request, row: tuple) -> None:
    """Hydrate a coordinator-side request from a worker's :func:`request_row`.

    The coordinator's request was never simulated, so its columnar segment
    fields are still at their defaults; assigning the packed array makes
    ``token_times`` return the worker-observed series bit-for-bit.
    """
    request.phase = RequestPhase(row[1])
    request.prompt_machine = row[2]
    request.token_machine = row[3]
    request.prompt_start_time = row[4]
    request.first_token_time = row[5]
    request.completion_time = row[6]
    request.generated_tokens = row[7]
    request.kv_transfer_start = row[8]
    request.kv_transfer_end = row[9]
    request.preemptions = row[10]
    request.priority_boost = row[11]
    request.restarts = row[12]
    request._token_times = row[13]


# -- shard runtime (one engine, one cluster group) --------------------------------


class _ShardRuntime:
    """One shard's live state: a private engine driving its cluster group.

    Shared verbatim by the in-process executor (``parallel=1``) and the
    worker processes, so both paths execute identical code between barriers.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.core.cluster import ClusterSimulation

        self.spec = spec
        self.engine = SimulationEngine(sanitize=spec.sanitize)
        sanitizer = self.engine.sanitizer
        if sanitizer is not None:
            # Mirror the serial fleet's stream discipline: trace and fault
            # randomness is spent before the event loop runs.
            sanitizer.register_stream("trace", run_phase=False)
            sanitizer.register_stream("fault", run_phase=False)
        self.simulations: dict[str, ClusterSimulation] = {}
        self.roster: list[tuple[int, Request]] = []
        kwargs = dict(spec.cluster_kwargs)
        for name in spec.cluster_names:
            simulation = ClusterSimulation(
                spec.design,
                model=spec.model,
                engine=self.engine,
                name=name,
                **kwargs,
            )
            prefix = f"{name}/"
            simulation.prepare(
                [(time_s, machine) for time_s, machine in spec.failures if machine.startswith(prefix)]
            )
            self.simulations[name] = simulation

    def deliver(self, batch: Sequence[ArrivalMessage]) -> None:
        """Schedule a barrier batch of routed arrivals on the shard engine."""
        for index, descriptor, cluster_name in batch:
            request = Request(descriptor=descriptor)
            scheduler = self.simulations[cluster_name].scheduler
            self.roster.append((index, request))
            self.engine.schedule_at(
                request.arrival_time,
                lambda sched=scheduler, req=request: sched.submit(req),
                priority=ARRIVAL_EVENT_PRIORITY,
                tag=f"fleet-arrival:{request.request_id}",
            )

    def advance(self, barrier: float) -> None:
        """Run the shard up to (and including events at) the barrier time."""
        self.engine.run(until=barrier)

    def drain(self) -> float:
        """Run the shard to completion; returns its last executed event time."""
        self.engine.run()
        return self.engine.last_event_time

    def finish(self) -> ShardResult:
        """Package the shard's requests, metrics, and counters for the merge."""
        engine = self.engine
        return ShardResult(
            shard_id=self.spec.shard_id,
            last_event_time=engine.last_event_time,
            events_processed=engine.events_processed,
            events_cancelled=engine.events_cancelled,
            events_coalesced=engine.events_coalesced,
            heap_compactions=engine.heap_compactions,
            request_rows=[request_row(index, request) for index, request in self.roster],
            machine_stats={
                name: simulation.metrics.export_machine_stats()
                for name, simulation in self.simulations.items()
            },
        )


# -- executors --------------------------------------------------------------------


class _InProcessShard:
    """Shard executor running in the coordinator process (``parallel=1``).

    Work happens eagerly in the ``send_*`` calls; the ``wait_*`` calls just
    return — the same two-phase protocol as :class:`_ProcessShard`, so the
    epoch loop is executor-agnostic.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self._runtime = _ShardRuntime(spec)
        self._last_event_time = 0.0
        self._result: ShardResult | None = None

    def send_epoch(self, barrier: float, batch: Sequence[ArrivalMessage]) -> None:
        self._runtime.deliver(batch)
        self._runtime.advance(barrier)

    def wait_epoch(self) -> None:
        return None

    def send_drain(self) -> None:
        self._last_event_time = self._runtime.drain()

    def wait_drain(self) -> float:
        return self._last_event_time

    def send_finish(self) -> None:
        self._result = self._runtime.finish()

    def wait_finish(self) -> ShardResult:
        assert self._result is not None
        return self._result

    def close(self) -> None:
        return None


def _worker_main(connection: "Connection", spec: ShardSpec) -> None:
    """Worker-process entry point: build the shard, then serve barrier messages.

    Protocol (one ack per message, errors carry the worker traceback)::

        ("epoch", barrier, batch) -> ("ok", None)
        ("drain",)                -> ("ok", last_event_time)
        ("finish",)               -> ("ok", ShardResult)
        ("exit",)                 -> no reply, worker exits
    """
    try:
        runtime = _ShardRuntime(spec)
        connection.send(("ready", spec.shard_id))
        while True:
            message = connection.recv()
            kind = message[0]
            if kind == "epoch":
                runtime.deliver(message[2])
                runtime.advance(message[1])
                connection.send(("ok", None))
            elif kind == "drain":
                connection.send(("ok", runtime.drain()))
            elif kind == "finish":
                connection.send(("ok", runtime.finish()))
            elif kind == "exit":
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown shard message {kind!r}")
    except EOFError:  # pragma: no cover - coordinator died; nothing to report to
        return
    except Exception:
        try:
            connection.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - coordinator died
            pass
    finally:
        connection.close()


def spawn_context() -> "BaseContext":
    """Pick the multiprocessing start method for shard workers.

    ``fork`` is preferred (the coordinator has already imported everything,
    so workers start instantly); platforms without it fall back to
    ``spawn``.  ``REPRO_PARALLEL_START_METHOD`` overrides — a worker
    bootstrap configuration read, not simulation state, so it cannot make
    two equally-configured runs differ (shards are bit-identical under
    either start method).
    """
    method = os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context("spawn")


class _ProcessShard:
    """Shard executor on a dedicated ``multiprocessing`` worker.

    The coordinator sends to every shard before waiting on any
    (``send_* ``/``wait_*`` split), so all workers simulate their epochs
    concurrently.
    """

    def __init__(self, spec: ShardSpec, context: "BaseContext") -> None:
        parent, child = context.Pipe()
        self._connection = parent
        self._process = context.Process(
            target=_worker_main,
            args=(child, spec),
            name=f"repro-shard-{spec.shard_id}",
            daemon=True,
        )
        self._process.start()
        child.close()
        kind, _payload = self._receive()
        if kind != "ready":  # pragma: no cover - protocol misuse
            raise ShardWorkerError(f"shard {spec.shard_id} sent {kind!r} before ready")

    def _receive(self) -> tuple[str, Any]:
        try:
            message = self._connection.recv()
        except EOFError as exc:  # pragma: no cover - worker crashed hard
            raise ShardWorkerError("shard worker exited without replying") from exc
        if message[0] == "error":
            raise ShardWorkerError(f"shard worker failed:\n{message[1]}")
        return (message[0], message[1])

    def _ack(self) -> Any:
        kind, payload = self._receive()
        if kind != "ok":  # pragma: no cover - protocol misuse
            raise ShardWorkerError(f"expected ok from shard worker, got {kind!r}")
        return payload

    def send_epoch(self, barrier: float, batch: Sequence[ArrivalMessage]) -> None:
        self._connection.send(("epoch", barrier, batch))

    def wait_epoch(self) -> None:
        self._ack()

    def send_drain(self) -> None:
        self._connection.send(("drain",))

    def wait_drain(self) -> float:
        return float(self._ack())

    def send_finish(self) -> None:
        self._connection.send(("finish",))

    def wait_finish(self) -> ShardResult:
        result = self._ack()
        if not isinstance(result, ShardResult):  # pragma: no cover - protocol misuse
            raise ShardWorkerError(f"expected ShardResult, got {type(result).__name__}")
        return result

    def close(self) -> None:
        try:
            self._connection.send(("exit",))
        except (BrokenPipeError, OSError):  # pragma: no cover - worker already gone
            pass
        self._connection.close()
        self._process.join(timeout=10.0)
        if self._process.is_alive():  # pragma: no cover - wedged worker
            self._process.terminate()
            self._process.join(timeout=5.0)


def execute_shards(
    specs: Sequence[ShardSpec],
    arrivals: Sequence[Sequence[tuple[float, ArrivalMessage]]],
    epoch_s: float,
    use_processes: bool,
) -> tuple[list[ShardResult], int, float]:
    """Drive every shard through the epoch/barrier loop and collect results.

    Args:
        specs: One spec per shard.
        arrivals: Per-shard routed arrivals as ``(arrival_time, message)``,
            each list in serial routing order (sorted by arrival time with
            trace order breaking ties).
        epoch_s: Barrier spacing (bounded shard lag).
        use_processes: Launch one worker process per shard; ``False`` runs
            every shard in-process through the identical barrier protocol.

    Returns:
        ``(results, epochs, last_event_time)`` — shard results in shard-id
        order, the number of barrier epochs executed, and the fleet-wide
        last executed event time (the serial engine's end-of-run clock).

    Each epoch's barrier is the minimum next undelivered arrival time across
    all shards plus ``epoch_s``: every shard receives its arrivals strictly
    before the barrier and advances to exactly the barrier, so no shard ever
    leads another by more than one epoch of simulated time while arrivals
    remain.  After the last arrival, shards drain to completion.
    """
    if epoch_s <= 0.0:
        raise ValueError(f"epoch_s must be positive, got {epoch_s}")
    shards: list[Any] = []
    try:
        if use_processes:
            context = spawn_context()
            shards = [_ProcessShard(spec, context) for spec in specs]
        else:
            shards = [_InProcessShard(spec) for spec in specs]
        cursors = [0] * len(specs)
        epochs = 0
        while True:
            pending = [
                index for index in range(len(specs)) if cursors[index] < len(arrivals[index])
            ]
            if not pending:
                break
            next_time = min(arrivals[index][cursors[index]][0] for index in pending)
            barrier = next_time + epoch_s
            for index, shard in enumerate(shards):
                rows = arrivals[index]
                cursor = cursors[index]
                batch: list[ArrivalMessage] = []
                while cursor < len(rows) and rows[cursor][0] < barrier:
                    batch.append(rows[cursor][1])
                    cursor += 1
                cursors[index] = cursor
                shard.send_epoch(barrier, batch)
            for shard in shards:
                shard.wait_epoch()
            epochs += 1
        for shard in shards:
            shard.send_drain()
        last_event_time = 0.0
        for shard in shards:
            shard_last = shard.wait_drain()
            if shard_last > last_event_time:
                last_event_time = shard_last
        for shard in shards:
            shard.send_finish()
        results = [shard.wait_finish() for shard in shards]
        return results, epochs, last_event_time
    finally:
        for shard in shards:
            shard.close()
