"""The discrete-event simulation engine.

A minimal, deterministic event loop: schedule callbacks at absolute or
relative simulated times, then :meth:`SimulationEngine.run` until the queue
drains or a time horizon is reached.  All Splitwise cluster components
(machines, schedulers, transfers) advance exclusively through this engine, so
a whole cluster simulation is a single-threaded, reproducible computation.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.simulation.events import Event


class SimulationEngine:
    """Deterministic discrete-event simulator clock and queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._sequence = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue."""
        return len(self._queue)

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, time: float, action: Callable[[], None], priority: int = 0, tag: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``.

        Raises:
            ValueError: if ``time`` is in the simulated past.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}")
        event = Event(time=time, priority=priority, sequence=self._sequence, action=action, tag=tag)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, action: Callable[[], None], priority: int = 0, tag: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, action, priority=priority, tag=tag)

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Args:
            until: Optional simulated-time horizon; events after it stay queued
                and the clock is advanced to exactly ``until``.
            max_events: Optional cap on the number of events to execute.

        Returns:
            The simulated time when the run stopped.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            if until is not None and self._queue[0].time > until:
                self._now = until
                break
            self.step()
            executed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now
