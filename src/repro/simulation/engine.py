"""The discrete-event simulation engine.

A minimal, deterministic event loop: schedule callbacks at absolute or
relative simulated times, then :meth:`SimulationEngine.run` until the queue
drains or a time horizon is reached.  All Splitwise cluster components
(machines, schedulers, transfers) advance exclusively through this engine, so
a whole cluster simulation is a single-threaded, reproducible computation.

The engine is the innermost loop of every cluster simulation, so it is built
for throughput:

* The heap stores ``(time, priority, sequence, event)`` tuples, so ordering
  is resolved by C-level tuple comparison instead of ``Event.__lt__``.
* Cancellation uses tombstones (:meth:`cancel`): the event stays in the heap
  but is discarded unexecuted when it reaches the head, which keeps
  cancellation O(1) instead of O(n).  When tombstones come to dominate the
  heap (cancel-heavy runs: deadlines, hedges, autoscaler timers) the heap is
  compacted in place — live entries keep their ``(time, priority, sequence)``
  keys, so compaction never reorders execution.
* :meth:`schedule_recurring` provides self-rescheduling periodic tasks
  without allocating a fresh closure per occurrence.

Same-timestamp ordering across the stack follows a fixed priority ladder:
machine iteration finishes fire at priority 0, fault injections at 1, fleet
arrivals at 2, and request-lifecycle timers (deadlines, hedges, retry
backoffs) at 3 — so at any instant capacity is freed first, the fault plane
mutates the world second, new work routes against the post-fault state, and
a completion beats its own deadline.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Callable

from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only (analysis layers above simulation)
    from repro.analysis.sanitizer import RunSanitizer


class RecurringTask:
    """Handle for a periodic task created by :meth:`SimulationEngine.schedule_recurring`.

    The task reschedules itself after every firing until :meth:`cancel` is
    called.  A single bound-method callback is reused for every occurrence,
    so recurring work allocates no per-occurrence closures.
    """

    __slots__ = ("_engine", "interval", "action", "priority", "tag", "_event", "_cancelled", "fire_count")

    def __init__(
        self,
        engine: "SimulationEngine",
        interval: float,
        action: Callable[[], None],
        priority: int,
        tag: str,
        first_delay: float,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._engine = engine
        self.interval = interval
        self.action = action
        self.priority = priority
        self.tag = tag
        self._cancelled = False
        self.fire_count = 0
        self._event = engine.schedule_after(first_delay, self._fire, priority=priority, tag=tag)

    @property
    def cancelled(self) -> bool:
        """Whether the task has been cancelled."""
        return self._cancelled

    @property
    def next_event(self) -> Event | None:
        """The pending event for the next occurrence (None once cancelled)."""
        return None if self._cancelled else self._event

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self.action()
        if not self._cancelled:  # the action itself may cancel the task
            self._event = self._engine.schedule_after(
                self.interval, self._fire, priority=self.priority, tag=self.tag
            )

    def cancel(self) -> None:
        """Stop the task; its pending event is tombstoned, never executed."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._event is not None:
            self._engine.cancel(self._event)
            self._event = None


class SimulationEngine:
    """Deterministic discrete-event simulator clock and queue.

    Args:
        sanitize: Arm a :class:`~repro.analysis.sanitizer.RunSanitizer` on
            this engine (event-time monotonicity, RNG-stream phase
            discipline, end-of-run census closure).  ``None`` defers to the
            ``REPRO_SANITIZE=1`` environment flag.  The sanitizer only
            observes — sanitized runs are bit-identical to unsanitized ones.
    """

    # Heap compaction policy: compact when at least COMPACT_MIN_TOMBSTONES
    # tombstones have accumulated AND tombstones outnumber live entries by
    # COMPACT_RATIO.  Class attributes so tests can tighten the trigger or
    # effectively disable compaction (set the minimum very high) on a
    # reference engine.
    COMPACT_MIN_TOMBSTONES: int = 256
    COMPACT_RATIO: float = 1.0

    def __init__(self, sanitize: bool | None = None) -> None:
        self._now = 0.0
        # Heap entries are (time, priority, sequence, event): comparison never
        # reaches the event because sequence numbers are unique.
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._events_coalesced = 0
        self._tombstones = 0  # cancelled events still sitting in the heap
        self._heap_compactions = 0
        self._last_event_time = 0.0
        if sanitize is None:
            # Run-mode debug flag, deliberately env-driven so any entry point
            # can arm the sanitizer without plumbing; it only observes, so it
            # cannot make two equally-configured runs differ.
            sanitize = os.environ.get("REPRO_SANITIZE") == "1"  # simlint: disable=SIM007
        self._sanitizer: RunSanitizer | None = None
        if sanitize:
            from repro.analysis.sanitizer import RunSanitizer

            self._sanitizer = RunSanitizer()

    @property
    def sanitizer(self) -> RunSanitizer | None:
        """The armed sanitizer, or ``None`` on ordinary (unsanitized) runs."""
        return self._sanitizer

    @property
    def sanitize(self) -> bool:
        """Whether a sanitizer is armed."""
        return self._sanitizer is not None

    @sanitize.setter
    def sanitize(self, value: bool) -> None:
        if value and self._sanitizer is None:
            from repro.analysis.sanitizer import RunSanitizer

            self._sanitizer = RunSanitizer()
        elif not value:
            self._sanitizer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def last_event_time(self) -> float:
        """Time of the last *executed* event (0.0 before any event fires).

        Unlike :attr:`now`, never advanced by a ``run(until=...)`` horizon
        clamp — the sharded fleet runner uses this to reconstruct the serial
        engine's end-of-run clock from barrier-clamped shard engines.
        """
        return self._last_event_time

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events are not counted)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before they could execute."""
        return self._events_cancelled

    @property
    def events_coalesced(self) -> int:
        """Logical events executed without their own queue entry.

        The decode fast-forward path collapses a run of steady-state decode
        iterations into one macro-event; every coalesced iteration beyond the
        macro-event itself is counted here, so ``events_processed +
        events_coalesced`` measures the simulated work actually performed.
        """
        return self._events_coalesced

    def note_coalesced(self, count: int) -> None:
        """Credit ``count`` logical events that were executed without being scheduled."""
        if count > 0:
            self._events_coalesced += count

    @property
    def heap_compactions(self) -> int:
        """Number of times the tombstoned heap has been compacted in place."""
        return self._heap_compactions

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue) - self._tombstones

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, time: float, action: Callable[[], None], priority: int = 0, tag: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``.

        Raises:
            ValueError: if ``time`` is in the simulated past (or, on
                sanitized runs, :class:`~repro.analysis.sanitizer.SanitizerError`
                carrying the offending tag).
        """
        if time < self._now:
            if self._sanitizer is not None:
                self._sanitizer.check_schedule(self._now, time, tag)
            raise ValueError(f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time=time, priority=priority, sequence=sequence, action=action, tag=tag)
        heapq.heappush(self._queue, (time, priority, sequence, event))
        return event

    def schedule_after(self, delay: float, action: Callable[[], None], priority: int = 0, tag: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, action, priority=priority, tag=tag)

    def schedule_recurring(
        self,
        interval: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: str = "",
        first_delay: float | None = None,
    ) -> RecurringTask:
        """Schedule ``action`` every ``interval`` simulated seconds until cancelled.

        Args:
            interval: Spacing between occurrences (must be positive).
            action: Callback executed at each occurrence.
            priority: Event priority of every occurrence.
            tag: Debug label attached to every occurrence.
            first_delay: Delay before the first occurrence; defaults to
                ``interval``.

        Returns:
            A :class:`RecurringTask` handle whose ``cancel()`` stops the task.

        Raises:
            ValueError: if ``interval`` is not positive.
        """
        delay = interval if first_delay is None else first_delay
        return RecurringTask(self, interval, action, priority, tag, delay)

    def cancel(self, event: Event) -> bool:
        """Tombstone a pending event so it is discarded instead of executed.

        Returns:
            True if the event was live and is now cancelled; False if it had
            already fired or was already cancelled (a no-op).
        """
        if event.fired or event.cancelled:
            return False
        event._mark_cancelled()
        self._tombstones += 1
        self._events_cancelled += 1
        tombstones = self._tombstones
        if tombstones >= self.COMPACT_MIN_TOMBSTONES and tombstones >= self.COMPACT_RATIO * (
            len(self._queue) - tombstones
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify, preserving execution order.

        Mutates ``self._queue`` in place because :meth:`run` and :meth:`step`
        hold local aliases to the list; rebinding would desynchronize them.
        Live entries keep their ``(time, priority, sequence)`` keys — a strict
        total order (sequence numbers are unique) — so the rebuilt heap pops
        in exactly the order the tombstoned heap would have.
        """
        self._queue[:] = [entry for entry in self._queue if not entry[3].cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self._heap_compactions += 1

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event.  Returns False when the queue is empty.

        Cancelled events surfacing at the head of the queue are discarded
        without executing, advancing the clock, or counting as processed.
        """
        queue = self._queue
        sanitizer = self._sanitizer
        while queue:
            time, _, _, event = heapq.heappop(queue)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event._mark_fired()
            self._now = time
            self._last_event_time = time
            self._events_processed += 1
            if sanitizer is None:
                event.action()
            else:
                sanitizer.before_fire(time, event.tag)
                try:
                    event.action()
                finally:
                    sanitizer.after_fire()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Args:
            until: Optional simulated-time horizon; events after it stay queued
                and the clock is advanced to exactly ``until``.
            max_events: Optional cap on the number of events to execute
                (cancelled events do not count toward the cap).

        Returns:
            The simulated time when the run stopped.
        """
        queue = self._queue
        executed = 0
        while queue:
            if max_events is not None and executed >= max_events:
                break
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
                self._tombstones -= 1
                continue
            if until is not None and head[0] > until:
                self._now = until
                break
            self.step()
            executed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        if self._sanitizer is not None:
            self._sanitizer.verify_closure(
                scheduled=self._sequence,
                processed=self._events_processed,
                cancelled=self._events_cancelled,
                pending=self.pending_events,
            )
        return self._now
