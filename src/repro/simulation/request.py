"""Runtime request objects and their phase state machine.

A :class:`Request` wraps a trace descriptor and records every timestamp the
latency metrics need: arrival, prompt start/end (TTFT), each generated token
(TBT series), KV-cache transfer window, and completion (E2E).  The phase
enum mirrors the lifecycle in the paper's Fig. 1 and Fig. 10: a request is
queued, runs its prompt phase on a prompt machine, has its KV-cache shipped
to a token machine, generates tokens there, and completes.

``Request`` is the most frequently touched object in a cluster simulation
(every generated token mutates one), so it is a ``__slots__`` class with the
immutable descriptor fields (``request_id``, ``arrival_time``,
``prompt_tokens``, ``output_tokens``) copied into plain attributes at
construction — attribute reads on the hot path cost one slot lookup instead
of a property call plus a descriptor indirection.

**Token telemetry is columnar** (see :mod:`repro.metrics.token_log`): the
simulator no longer appends one timestamp per generated token.  Machines and
the rotation steppers record *segments* — compact references into shared
timestamp blocks, one per coalesced run or service run — and
:attr:`Request.token_times` inverts them into the legacy packed
``array('d')`` lazily on first observation, bit-for-bit identical to the old
per-token recording.  The open-run state lives directly in request slots so
the recording hot paths touch no other object:

* ``_tail_block``/``_tail_start``/``_tail_count`` — an open *contiguous*
  run: the request was serviced at consecutive positions of one block
  (per-iteration stepping on one machine, or a fast-forward boundary
  series).
* ``_svc_block``/``_svc_indices``/``_svc_base``/``_svc_flushed`` — an open
  *gather* run: the request's own index column.  Rotation services are
  sparse on the machine timeline (a member is serviced every k-th boundary
  while it rotates), so the stepper appends the boundary's *position* to the
  request's packed ``array('q')`` — one C-level integer append per service,
  with the timestamp itself stored exactly once in the machine's block.
  While the column is open, ``generated_tokens`` and ``phase`` are
  *deferred*: the true generated count is ``_svc_base + len(_svc_indices)``
  (an invariant every settle preserves), so the rotation stepper's
  steady-state loop is reduced to the one index append.  ``_svc_flushed``
  marks the prefix already sealed into gather segments; sealing and settling
  happen together when the request switches machines or recording modes, is
  observed, or completes.
"""

from __future__ import annotations

import enum
from array import array

import numpy as np

from repro.metrics.token_log import materialize_into
from repro.workload.trace import RequestDescriptor


class RequestPhase(enum.Enum):
    """Lifecycle phases of an inference request."""

    QUEUED = "queued"
    PROMPT_RUNNING = "prompt_running"
    KV_TRANSFER = "kv_transfer"
    TOKEN_QUEUED = "token_queued"
    TOKEN_RUNNING = "token_running"
    PREEMPTED = "preempted"
    COMPLETED = "completed"
    EXPIRED = "expired"


class Request:
    """A live request flowing through the simulated cluster.

    Requests are mutable runtime objects with identity semantics: two distinct
    ``Request`` instances are never equal, and they can be stored in sets and
    dict keys (hashed by identity).

    Attributes:
        descriptor: The immutable trace record (sizes and arrival time).
        request_id: Trace-level request id (copied from the descriptor).
        tenant: Tenant tag (copied from the descriptor; groups per-tenant
            SLO accounting and drives tenant-aware fleet routing).
        arrival_time: Arrival time in seconds from trace start.
        prompt_tokens: Number of prompt (input) tokens.
        output_tokens: Number of output tokens the request must generate.
        phase: Current lifecycle phase.
        prompt_machine: Name of the machine assigned to the prompt phase.
        token_machine: Name of the machine assigned to the token phase.
        prompt_start_time: When the prompt phase began executing.
        first_token_time: When the first output token was produced (TTFT end).
        token_times: Emission time of every generated token, including the
            first one produced by the prompt phase (packed ``array('d')``,
            materialized lazily from the columnar segments on first read).
        completion_time: When the last token was produced.
        generated_tokens: Number of output tokens produced so far.
        kv_transfer_start: When the KV-cache transfer began.
        kv_transfer_end: When the KV-cache transfer finished.
        preemptions: Number of times the request's token phase was preempted.
        priority_boost: Scheduling priority accumulated through aging (used by
            mixed machines to avoid starvation after preemption).
        restarts: Number of times the request was restarted from scratch after
            a machine failure (§IV-E: Splitwise restarts failed requests).
        shed: Whether fleet admission control rejected the request up front
            (it was never routed and will never complete).
        ttft_deadline_s: TTFT deadline in seconds from arrival (``None`` when
            no deadline applies — either none was configured, or the
            lifecycle layer resolved a per-tenant default onto this slot).
        e2e_deadline_s: End-to-end deadline in seconds from arrival.
        expired: Whether a deadline timer cancelled the request; expired
            requests never complete and are censused separately from shed.
        degraded: Whether the request is being served in degraded mode (its
            ``output_tokens`` budget was truncated instead of dropping the
            request); degraded completions are reported separately in
            goodput.
    """

    __slots__ = (
        "descriptor",
        "request_id",
        "tenant",
        "arrival_time",
        "prompt_tokens",
        "output_tokens",
        "phase",
        "prompt_machine",
        "token_machine",
        "prompt_start_time",
        "first_token_time",
        "completion_time",
        "generated_tokens",
        "kv_transfer_start",
        "kv_transfer_end",
        "preemptions",
        "priority_boost",
        "restarts",
        "shed",
        "ttft_deadline_s",
        "e2e_deadline_s",
        "expired",
        "degraded",
        "_token_times",
        "_token_segments",
        "_tail_block",
        "_tail_start",
        "_tail_count",
        "_svc_block",
        "_svc_indices",
        "_svc_base",
        "_svc_flushed",
    )

    def __init__(self, descriptor: RequestDescriptor, phase: RequestPhase = RequestPhase.QUEUED) -> None:
        self.descriptor = descriptor
        self.request_id = descriptor.request_id
        self.tenant = descriptor.tenant
        self.arrival_time = descriptor.arrival_time_s
        self.prompt_tokens = descriptor.prompt_tokens
        self.output_tokens = descriptor.output_tokens
        self.phase = phase
        self.prompt_machine: str | None = None
        self.token_machine: str | None = None
        self.prompt_start_time: float | None = None
        self.first_token_time: float | None = None
        self.completion_time: float | None = None
        self.generated_tokens = 0
        self.kv_transfer_start: float | None = None
        self.kv_transfer_end: float | None = None
        self.preemptions = 0
        self.priority_boost = 0.0
        self.restarts = 0
        self.shed = False
        self.ttft_deadline_s = descriptor.ttft_deadline_s
        self.e2e_deadline_s = descriptor.e2e_deadline_s
        self.expired = False
        self.degraded = False
        # Columnar token telemetry: materialized prefix + pending segments +
        # the open contiguous / rotation runs (see the module docstring).
        self._token_times: array = array("d")
        self._token_segments: list | None = None
        self._tail_block: array | None = None
        self._tail_start = 0
        self._tail_count = 0
        self._svc_block: array | None = None
        self._svc_indices: array | None = None
        self._svc_base = 0
        self._svc_flushed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(id={self.request_id}, phase={self.phase.value!r}, "
            f"prompt={self.prompt_tokens}, output={self.output_tokens}, "
            f"generated={self.generated_tokens})"
        )

    # -- state ------------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """Whether all output tokens have been generated."""
        return self.phase is RequestPhase.COMPLETED

    @property
    def remaining_tokens(self) -> int:
        """Output tokens still to generate."""
        remaining = self.output_tokens - self.generated_tokens
        return remaining if remaining > 0 else 0

    @property
    def context_tokens(self) -> int:
        """Tokens of KV-cache context currently held for this request."""
        return self.prompt_tokens + self.generated_tokens

    # -- columnar token recording ---------------------------------------------------

    def _close_tail(self) -> None:
        """Seal the open contiguous run into the pending segment list."""
        block = self._tail_block
        if block is not None:
            segments = self._token_segments
            if segments is None:
                segments = self._token_segments = []
            start = self._tail_start
            segments.append((block, start, start + self._tail_count))
            self._tail_block = None

    def _flush_service_indices(self) -> None:
        """Seal the open index column and settle the deferred member state.

        Appends the unflushed index window as a gather segment, catches
        ``generated_tokens`` up to ``_svc_base + len(_svc_indices)``, and
        applies the deferred ``TOKEN_RUNNING`` transition.  Idempotent and
        safe at any instant — the request's *effective* state is unchanged,
        only its stored representation catches up."""
        block = self._svc_block
        if block is not None:
            indices = self._svc_indices
            flushed = self._svc_flushed
            stop = len(indices)
            if stop > flushed:
                segments = self._token_segments
                if segments is None:
                    segments = self._token_segments = []
                segments.append((block, indices, flushed, stop))
                self._svc_flushed = stop
            pending = self._svc_base + stop - self.generated_tokens
            if pending > 0:
                self.generated_tokens += pending
                if self.phase is not RequestPhase.COMPLETED:
                    self.phase = RequestPhase.TOKEN_RUNNING
            self._svc_block = None

    @property
    def token_times(self) -> array:
        """Emission time of every generated token (packed ``array('d')``).

        Materialized lazily: pending columnar segments are inverted into the
        packed array on first observation, preserving the per-token values
        bit-for-bit.  The returned array is the live backing store — callers
        may append to it (legacy recording does exactly that).
        """
        if self._svc_block is not None or self._tail_block is not None or self._token_segments:
            self._flush_service_indices()
            self._close_tail()
            segments = self._token_segments
            if segments:
                materialize_into(self._token_times, segments)
                segments.clear()
        return self._token_times

    def _append_token_time(self, time: float) -> None:
        """Record one token timestamp at the end of the series (scalar path)."""
        self.token_times.append(time)

    # -- lifecycle transitions ------------------------------------------------------

    def start_prompt(self, time: float, machine: str) -> None:
        """Mark the prompt phase as started on ``machine``."""
        self.phase = RequestPhase.PROMPT_RUNNING
        self.prompt_machine = machine
        if self.prompt_start_time is None:
            self.prompt_start_time = time

    def finish_prompt(self, time: float) -> None:
        """Record the first output token (end of the prompt phase)."""
        if self.first_token_time is None:
            self.first_token_time = time
        # Recording first: the append settles any deferred columnar state,
        # so the increment below applies to the settled count.
        self._append_token_time(time)
        generated = self.generated_tokens + 1
        self.generated_tokens = generated
        if generated >= self.output_tokens:
            self.complete(time)

    def start_kv_transfer(self, time: float) -> None:
        """Mark the start of the KV-cache transfer to the token machine."""
        if self.phase is not RequestPhase.COMPLETED:
            self.phase = RequestPhase.KV_TRANSFER
        self.kv_transfer_start = time

    def finish_kv_transfer(self, time: float) -> None:
        """Mark the end of the KV-cache transfer; the request can now decode."""
        self.kv_transfer_end = time
        if self.phase is not RequestPhase.COMPLETED:
            self.phase = RequestPhase.TOKEN_QUEUED

    def generate_token(self, time: float) -> None:
        """Record one generated token in the token phase.

        NOTE: ``SimulatedMachine._finish_iteration`` inlines this state
        transition on its per-token hot loop; keep the two in sync.
        """
        if self.phase is RequestPhase.COMPLETED:
            raise RuntimeError(f"request {self.request_id} already complete")
        # Recording first: the append settles any deferred columnar state,
        # so the increment below applies to the settled count.
        self._append_token_time(time)
        generated = self.generated_tokens + 1
        self.generated_tokens = generated
        if generated >= self.output_tokens:
            self.complete(time)
        else:
            self.phase = RequestPhase.TOKEN_RUNNING

    def preempt(self, time: float) -> None:
        """Preempt the token phase (mixed machines prioritizing prompts)."""
        del time  # timestamp kept for interface symmetry / future tracing
        self.phase = RequestPhase.PREEMPTED
        self.preemptions += 1

    def complete(self, time: float) -> None:
        """Mark the request as fully generated."""
        self.phase = RequestPhase.COMPLETED
        self.completion_time = time

    def expire(self, time: float) -> None:
        """Cancel the request because a deadline passed (lifecycle layer).

        Expired requests keep whatever partial telemetry they accumulated
        (useful for wasted-work accounting) but will never complete; the
        fleet census counts them separately from completed and shed.

        Raises:
            RuntimeError: if the request has already completed.
        """
        del time  # timestamp kept for interface symmetry / future tracing
        if self.phase is RequestPhase.COMPLETED:
            raise RuntimeError(f"request {self.request_id} already completed; cannot expire")
        self.phase = RequestPhase.EXPIRED
        self.expired = True

    def adopt_result(self, winner: "Request") -> None:
        """Copy a winning hedge attempt's telemetry onto this request.

        When a hedged duplicate completes first, the logical request (this
        object — the one the trace, the fleet census, and the SLO report all
        hold) adopts the clone's timestamps so that latency is measured from
        the original arrival to the winning completion, and the clone's
        token series becomes the request's token series.  Per-attempt stats
        stay on the lifecycle layer; this object ends up indistinguishable
        from having run the winning attempt itself.
        """
        self.phase = winner.phase
        self.prompt_machine = winner.prompt_machine
        self.token_machine = winner.token_machine
        self.prompt_start_time = winner.prompt_start_time
        self.first_token_time = winner.first_token_time
        self.completion_time = winner.completion_time
        self.kv_transfer_start = winner.kv_transfer_start
        self.kv_transfer_end = winner.kv_transfer_end
        self.preemptions = winner.preemptions
        self.degraded = winner.degraded
        # Materialize the winner's columnar state and take an owned copy —
        # the loser attempt's partial series on self is discarded.
        self._token_times = array("d", winner.token_times)
        self._token_segments = None
        self._tail_block = None
        self._svc_block = None
        self._svc_indices = None
        self._svc_base = 0
        self._svc_flushed = 0
        self.generated_tokens = winner.generated_tokens

    def reset_for_restart(self) -> None:
        """Restart the request from scratch after a machine failure (§IV-E).

        All runtime progress is discarded; only the arrival time (so that E2E
        latency still accounts for the wasted work) and the restart counter
        survive.

        Raises:
            RuntimeError: if the request has already completed.
        """
        if self.phase is RequestPhase.COMPLETED:
            raise RuntimeError(f"request {self.request_id} already completed; nothing to restart")
        self.phase = RequestPhase.QUEUED
        self.prompt_machine = None
        self.token_machine = None
        self.prompt_start_time = None
        self.first_token_time = None
        self._token_times = array("d")
        self._token_segments = None
        self._tail_block = None
        self._svc_block = None
        self._svc_indices = None
        self._svc_base = 0
        self._svc_flushed = 0
        self.generated_tokens = 0
        self.kv_transfer_start = None
        self.kv_transfer_end = None
        self.priority_boost = 0.0
        self.restarts += 1

    # -- latency metrics ------------------------------------------------------------

    @property
    def ttft(self) -> float | None:
        """Time to first token (None until the first token exists)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float | None:
        """End-to-end latency (None until completed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def token_intervals_np(self) -> np.ndarray:
        """Per-token gaps after the first token as a float64 array.

        Computed with one vectorized ``np.diff`` over the materialized
        timestamps — identical float64 subtractions to the scalar loop, so
        the values are bit-for-bit the legacy ones.  The result owns its
        buffer (safe to keep).
        """
        times = self.token_times
        if len(times) < 2:
            return np.empty(0, dtype=np.float64)
        view = np.frombuffer(times)
        return np.diff(view)

    @property
    def token_intervals(self) -> list[float]:
        """Per-token gaps after the first token (the TBT series)."""
        return self.token_intervals_np.tolist()

    @property
    def tbt_values(self) -> list[float]:
        """Per-token gaps after the first token (the TBT series)."""
        return self.token_intervals

    @property
    def mean_tbt(self) -> float | None:
        """Average time between tokens (None when fewer than two tokens)."""
        gaps = self.token_intervals
        if not gaps:
            return None
        return sum(gaps) / len(gaps)

    @property
    def max_tbt(self) -> float | None:
        """Worst-case time between tokens (None when fewer than two tokens)."""
        gaps = self.token_intervals
        return max(gaps) if gaps else None

    @property
    def queueing_delay(self) -> float | None:
        """Time spent waiting before the prompt phase started."""
        if self.prompt_start_time is None:
            return None
        return self.prompt_start_time - self.arrival_time
