"""Discrete-event simulation substrate.

The Splitwise evaluation is driven by an event-driven cluster simulator
(Section V-B of the paper).  This package provides the generic pieces:

* :mod:`repro.simulation.engine` — the event queue and simulated clock.
* :mod:`repro.simulation.events` — the event record and ordering rules.
* :mod:`repro.simulation.request` — the runtime request object and its
  phase/state machine, from which all latency metrics are derived.
"""

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event
from repro.simulation.request import Request, RequestPhase

__all__ = ["SimulationEngine", "Event", "Request", "RequestPhase"]
