"""Cluster designs evaluated in the paper (Table V).

Two baselines and four Splitwise variants are studied.  The naming follows
the paper: the first letter is the prompt-pool machine type, the second the
token-pool machine type ("A" = DGX-A100, "H" = DGX-H100, "Hcap" =
power-capped DGX-H100).

=================  ===================  ====================
Design             Prompt machines      Token machines
=================  ===================  ====================
Baseline-A100      DGX-A100 (mixed batching on every machine)
Baseline-H100      DGX-H100 (mixed batching on every machine)
Splitwise-AA       DGX-A100             DGX-A100
Splitwise-HH       DGX-H100             DGX-H100
Splitwise-HHcap    DGX-H100             DGX-H100 @ 50% GPU power cap
Splitwise-HA       DGX-H100             DGX-A100
=================  ===================  ====================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.hardware.machine import DGX_A100, DGX_H100, DGX_H100_CAPPED, MachineSpec


@dataclass(frozen=True)
class ClusterDesign:
    """A sized cluster configuration.

    Attributes:
        name: Design family name, e.g. ``"Splitwise-HA"``.
        prompt_machine: Machine spec used for the prompt pool (or for every
            machine in a baseline design).
        token_machine: Machine spec used for the token pool.
        num_prompt: Number of prompt-pool machines (or total machines for a
            baseline design).
        num_token: Number of token-pool machines (0 for baseline designs).
        split: Whether the design separates prompt and token pools
            (Splitwise) or runs mixed batching everywhere (baseline).
    """

    name: str
    prompt_machine: MachineSpec
    token_machine: MachineSpec
    num_prompt: int
    num_token: int
    split: bool = True

    def __post_init__(self) -> None:
        if self.num_prompt < 0 or self.num_token < 0:
            raise ValueError("machine counts must be non-negative")
        if self.num_prompt + self.num_token == 0:
            raise ValueError("a cluster design needs at least one machine")
        if not self.split and self.num_token != 0:
            raise ValueError("baseline (non-split) designs must place all machines in num_prompt")

    # -- aggregates -----------------------------------------------------------------

    @property
    def num_machines(self) -> int:
        """Total number of machines in the cluster."""
        return self.num_prompt + self.num_token

    @property
    def cost_per_hour(self) -> float:
        """Total cluster rental cost in $/hr."""
        return self.num_prompt * self.prompt_machine.cost_per_hour + self.num_token * self.token_machine.cost_per_hour

    @property
    def provisioned_power_kw(self) -> float:
        """Total provisioned (peak) power in kW."""
        watts = (
            self.num_prompt * self.prompt_machine.provisioned_power_watts
            + self.num_token * self.token_machine.provisioned_power_watts
        )
        return watts / 1e3

    @property
    def label(self) -> str:
        """Human-readable label in the paper's style, e.g. ``"Splitwise-HH (25P, 15T)"``."""
        if not self.split:
            return f"{self.name} ({self.num_prompt}P/T)"
        return f"{self.name} ({self.num_prompt}P, {self.num_token}T)"

    # -- derivation ------------------------------------------------------------------

    def resized(self, num_prompt: int, num_token: int | None = None) -> "ClusterDesign":
        """Return a copy with different machine counts (same machine types)."""
        if num_token is None:
            num_token = 0 if not self.split else self.num_token
        return replace(self, num_prompt=num_prompt, num_token=num_token)


# -- factories -------------------------------------------------------------------------


def baseline_a100(num_machines: int) -> ClusterDesign:
    """Baseline-A100: DGX-A100 machines with mixed continuous batching."""
    return ClusterDesign(
        name="Baseline-A100",
        prompt_machine=DGX_A100,
        token_machine=DGX_A100,
        num_prompt=num_machines,
        num_token=0,
        split=False,
    )


def baseline_h100(num_machines: int) -> ClusterDesign:
    """Baseline-H100: DGX-H100 machines with mixed continuous batching."""
    return ClusterDesign(
        name="Baseline-H100",
        prompt_machine=DGX_H100,
        token_machine=DGX_H100,
        num_prompt=num_machines,
        num_token=0,
        split=False,
    )


def splitwise_aa(num_prompt: int, num_token: int) -> ClusterDesign:
    """Splitwise-AA: DGX-A100 prompt pool and DGX-A100 token pool."""
    return ClusterDesign(
        name="Splitwise-AA",
        prompt_machine=DGX_A100,
        token_machine=DGX_A100,
        num_prompt=num_prompt,
        num_token=num_token,
    )


def splitwise_hh(num_prompt: int, num_token: int) -> ClusterDesign:
    """Splitwise-HH: DGX-H100 prompt pool and DGX-H100 token pool."""
    return ClusterDesign(
        name="Splitwise-HH",
        prompt_machine=DGX_H100,
        token_machine=DGX_H100,
        num_prompt=num_prompt,
        num_token=num_token,
    )


def splitwise_hhcap(num_prompt: int, num_token: int) -> ClusterDesign:
    """Splitwise-HHcap: DGX-H100 prompts, power-capped DGX-H100 tokens."""
    return ClusterDesign(
        name="Splitwise-HHcap",
        prompt_machine=DGX_H100,
        token_machine=DGX_H100_CAPPED,
        num_prompt=num_prompt,
        num_token=num_token,
    )


def splitwise_ha(num_prompt: int, num_token: int) -> ClusterDesign:
    """Splitwise-HA: DGX-H100 prompt pool and DGX-A100 token pool."""
    return ClusterDesign(
        name="Splitwise-HA",
        prompt_machine=DGX_H100,
        token_machine=DGX_A100,
        num_prompt=num_prompt,
        num_token=num_token,
    )


_FAMILIES: dict[str, Callable[..., ClusterDesign]] = {
    "BASELINE-A100": baseline_a100,
    "BASELINE-H100": baseline_h100,
    "SPLITWISE-AA": splitwise_aa,
    "SPLITWISE-HH": splitwise_hh,
    "SPLITWISE-HHCAP": splitwise_hhcap,
    "SPLITWISE-HA": splitwise_ha,
}


def get_design_family(name: str) -> Callable[..., ClusterDesign]:
    """Look up a design factory by family name (case-insensitive).

    Baseline factories take ``(num_machines)``; Splitwise factories take
    ``(num_prompt, num_token)``.

    Raises:
        KeyError: if the family is unknown.
    """
    key = name.upper()
    if key not in _FAMILIES:
        known = ", ".join(sorted(_FAMILIES))
        raise KeyError(f"Unknown design family {name!r}; known families: {known}")
    return _FAMILIES[key]
