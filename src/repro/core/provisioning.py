"""Cluster provisioning: the design-space search of §IV-D and Fig. 12.

Given a design family (e.g. Splitwise-HA), a workload (token-size
distributions), SLOs, and an optimization goal, the provisioner sweeps
machine counts and/or request rates through the cluster simulator and picks
the configuration that meets the SLO while optimizing the goal:

* **iso-throughput, cost- or power-optimized** — find the cheapest (or lowest
  provisioned power) machine counts that sustain a target request rate;
* **iso-cost / iso-power, throughput-optimized** — find, under a cost or
  power budget, the machine counts and the maximum request rate they sustain.

Feasibility of a (design, rate) point requires that (almost) all requests
complete within the simulated window and that all nine Table VI SLO
percentiles hold.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.cluster import SimulationResult, simulate_design
from repro.core.designs import ClusterDesign, get_design_family
from repro.hardware.machine import DGX_A100, MachineSpec
from repro.metrics.slo import DEFAULT_SLO, SloPolicy, SloReport
from repro.metrics.summary import RequestMetrics
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.models.performance import AnalyticalPerformanceModel, PerformanceModel
from repro.workload.distributions import WorkloadSpec, get_workload
from repro.workload.generator import generate_trace
from repro.workload.trace import Trace


class OptimizationGoal(enum.Enum):
    """What the provisioning search minimizes or maximizes."""

    THROUGHPUT = "throughput"
    COST = "cost"
    POWER = "power"


@dataclass(frozen=True)
class ProvisioningConstraints:
    """Feasibility constraints for a candidate configuration.

    Attributes:
        slo: Latency SLO every candidate must meet.
        min_completion_rate: Minimum fraction of trace requests that must
            complete (guards against configurations whose queues blow up).
        max_cost_per_hour: Optional cost budget ($/hr).
        max_power_kw: Optional provisioned power budget (kW).
    """

    slo: SloPolicy = DEFAULT_SLO
    min_completion_rate: float = 0.98
    max_cost_per_hour: float | None = None
    max_power_kw: float | None = None

    def within_budget(self, design: ClusterDesign) -> bool:
        """Whether a design fits the cost/power budgets (ignoring SLO)."""
        if self.max_cost_per_hour is not None and design.cost_per_hour > self.max_cost_per_hour:
            return False
        if self.max_power_kw is not None and design.provisioned_power_kw > self.max_power_kw:
            return False
        return True


@dataclass(frozen=True)
class CandidateEvaluation:
    """One simulated (design, request rate) point in the search space.

    Attributes:
        design: The candidate cluster design.
        rate_rps: Request rate the candidate was evaluated at.
        feasible: Whether the candidate met the SLO and completion constraints.
        slo_report: Full SLO report.
        metrics: Latency/throughput summary of the simulation.
        completion_rate: Fraction of requests that completed.
    """

    design: ClusterDesign
    rate_rps: float
    feasible: bool
    slo_report: SloReport
    metrics: RequestMetrics
    completion_rate: float

    @property
    def cost_per_hour(self) -> float:
        """Cluster cost of this candidate in $/hr."""
        return self.design.cost_per_hour

    @property
    def provisioned_power_kw(self) -> float:
        """Provisioned power of this candidate in kW."""
        return self.design.provisioned_power_kw


@dataclass
class ProvisioningResult:
    """Outcome of a provisioning search.

    Attributes:
        best: The optimal feasible candidate (None if nothing was feasible).
        candidates: Every evaluated candidate (the Fig. 12 design space).
        goal: The optimization goal that selected ``best``.
    """

    best: CandidateEvaluation | None
    candidates: list[CandidateEvaluation] = field(default_factory=list)
    goal: OptimizationGoal = OptimizationGoal.COST

    @property
    def feasible_candidates(self) -> list[CandidateEvaluation]:
        """All candidates that met the constraints."""
        return [c for c in self.candidates if c.feasible]


class Provisioner:
    """Design-space search driver.

    Args:
        model: LLM served by every candidate cluster.
        workload: Workload name or spec used to generate evaluation traces.
        trace_duration_s: Length of the synthetic evaluation trace.  The paper
            uses a 2-minute trace for provisioning sweeps; shorter traces make
            the sweep cheaper at some loss of tail fidelity.
        seed: Seed for trace generation (the same trace is reused across
            candidates at the same rate for a fair comparison).
        reference_machine: Machine whose uncontended latency anchors the SLO.
        constraints: Feasibility constraints.
    """

    def __init__(
        self,
        model: ModelSpec = LLAMA2_70B,
        workload: str | WorkloadSpec = "coding",
        trace_duration_s: float = 60.0,
        seed: int = 0,
        reference_machine: MachineSpec = DGX_A100,
        constraints: ProvisioningConstraints | None = None,
    ) -> None:
        self.model = model
        self.workload = get_workload(workload) if isinstance(workload, str) else workload
        self.trace_duration_s = trace_duration_s
        self.seed = seed
        self.constraints = constraints or ProvisioningConstraints()
        self.reference_model: PerformanceModel = AnalyticalPerformanceModel(model, reference_machine)
        self._trace_cache: dict[float, Trace] = {}

    # -- building blocks -------------------------------------------------------------

    def trace_at(self, rate_rps: float) -> Trace:
        """The evaluation trace for a given request rate (cached)."""
        if rate_rps not in self._trace_cache:
            self._trace_cache[rate_rps] = generate_trace(
                workload=self.workload,
                rate_rps=rate_rps,
                duration_s=self.trace_duration_s,
                seed=self.seed,
            )
        return self._trace_cache[rate_rps]

    def evaluate(self, design: ClusterDesign, rate_rps: float) -> CandidateEvaluation:
        """Simulate one (design, rate) candidate and judge feasibility."""
        trace = self.trace_at(rate_rps)
        result: SimulationResult = simulate_design(design, trace, model=self.model)
        slo_report = result.slo_report(reference_model=self.reference_model, policy=self.constraints.slo)
        metrics = result.request_metrics()
        completion = result.completion_rate
        feasible = (
            slo_report.satisfied
            and completion >= self.constraints.min_completion_rate
            and self.constraints.within_budget(design)
        )
        return CandidateEvaluation(
            design=design,
            rate_rps=rate_rps,
            feasible=feasible,
            slo_report=slo_report,
            metrics=metrics,
            completion_rate=completion,
        )

    def max_throughput(
        self, design: ClusterDesign, rates: Sequence[float]
    ) -> tuple[float, list[CandidateEvaluation]]:
        """Highest request rate (from ``rates``) the design sustains under SLO.

        Rates are scanned in ascending order; scanning stops after the first
        infeasible rate above a feasible one (the feasibility frontier is
        monotone for all practical purposes).

        Returns:
            ``(max_rate, evaluations)`` where ``max_rate`` is 0.0 when even the
            lowest rate is infeasible.
        """
        evaluations: list[CandidateEvaluation] = []
        best_rate = 0.0
        for rate in sorted(rates):
            candidate = self.evaluate(design, rate)
            evaluations.append(candidate)
            if candidate.feasible:
                best_rate = rate
            elif best_rate > 0.0:
                break
        return best_rate, evaluations

    # -- searches ------------------------------------------------------------------------

    def size_for_throughput(
        self,
        family: str | Callable[..., ClusterDesign],
        target_rps: float,
        prompt_counts: Iterable[int],
        token_counts: Iterable[int] = (0,),
        goal: OptimizationGoal = OptimizationGoal.COST,
    ) -> ProvisioningResult:
        """Iso-throughput sizing: cheapest / lowest-power design meeting ``target_rps``.

        Args:
            family: Design family name or factory.
            target_rps: Request rate every candidate must sustain.
            prompt_counts: Candidate prompt-pool sizes (or total machine
                counts for baseline families).
            token_counts: Candidate token-pool sizes (ignored for baselines).
            goal: COST or POWER.
        """
        factory = get_design_family(family) if isinstance(family, str) else family
        candidates: list[CandidateEvaluation] = []
        for num_prompt, num_token in itertools.product(sorted(set(prompt_counts)), sorted(set(token_counts))):
            design = self._make_design(factory, num_prompt, num_token)
            if design is None:
                continue
            candidates.append(self.evaluate(design, target_rps))
        best = self._select_best(candidates, goal)
        return ProvisioningResult(best=best, candidates=candidates, goal=goal)

    def max_throughput_under_budget(
        self,
        family: str | Callable[..., ClusterDesign],
        rates: Sequence[float],
        prompt_counts: Iterable[int],
        token_counts: Iterable[int] = (0,),
        max_cost_per_hour: float | None = None,
        max_power_kw: float | None = None,
    ) -> ProvisioningResult:
        """Iso-cost / iso-power sizing: the design maximizing throughput under a budget."""
        factory = get_design_family(family) if isinstance(family, str) else family
        budget = ProvisioningConstraints(
            slo=self.constraints.slo,
            min_completion_rate=self.constraints.min_completion_rate,
            max_cost_per_hour=max_cost_per_hour,
            max_power_kw=max_power_kw,
        )
        best: CandidateEvaluation | None = None
        best_rate = -1.0
        candidates: list[CandidateEvaluation] = []
        for num_prompt, num_token in itertools.product(sorted(set(prompt_counts)), sorted(set(token_counts))):
            design = self._make_design(factory, num_prompt, num_token)
            if design is None or not budget.within_budget(design):
                continue
            rate, evaluations = self.max_throughput(design, rates)
            candidates.extend(evaluations)
            feasible_evals = [e for e in evaluations if e.feasible and e.rate_rps == rate]
            if rate > best_rate and feasible_evals:
                best_rate = rate
                best = feasible_evals[-1]
        return ProvisioningResult(best=best, candidates=candidates, goal=OptimizationGoal.THROUGHPUT)

    # -- helpers ---------------------------------------------------------------------------

    @staticmethod
    def _make_design(
        factory: Callable[..., ClusterDesign], num_prompt: int, num_token: int
    ) -> ClusterDesign | None:
        """Instantiate a candidate, handling baseline vs split signatures."""
        if num_prompt <= 0:
            return None
        probe = factory(1, 1) if _accepts_two_counts(factory) else factory(1)
        if probe.split:
            if num_token <= 0:
                return None
            return factory(num_prompt, num_token)
        return factory(num_prompt + num_token) if num_token else factory(num_prompt)

    def _select_best(
        self, candidates: Sequence[CandidateEvaluation], goal: OptimizationGoal
    ) -> CandidateEvaluation | None:
        feasible = [c for c in candidates if c.feasible]
        if not feasible:
            return None
        if goal is OptimizationGoal.COST:
            return min(feasible, key=lambda c: (c.cost_per_hour, c.design.num_machines))
        if goal is OptimizationGoal.POWER:
            return min(feasible, key=lambda c: (c.provisioned_power_kw, c.design.num_machines))
        return max(feasible, key=lambda c: c.rate_rps)


def _accepts_two_counts(factory: Callable[..., ClusterDesign]) -> bool:
    """Whether a design factory takes (num_prompt, num_token) or just (n)."""
    import inspect

    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/partials
        return True
    return len(parameters) >= 2


def estimate_pool_sizes(
    design_family: str | Callable[..., ClusterDesign],
    rate_rps: float,
    workload: str | WorkloadSpec = "coding",
    model: ModelSpec = LLAMA2_70B,
    utilization_target: float = 0.7,
    sample_size: int = 4000,
    seed: int = 0,
) -> tuple[int, int]:
    """Analytically estimate the prompt/token pool sizes a load needs.

    This is the first-cut sizing the design-space search is seeded with: it
    divides the offered prompt-token and output-token demand by the
    per-machine phase throughput (from the performance model) and a target
    utilization.  The simulator then refines around this point.

    Args:
        design_family: Family name or factory (determines machine types).
        rate_rps: Offered request rate.
        workload: Workload whose token-size distributions set the demand.
        model: LLM being served.
        utilization_target: Average machine utilization to plan for.
        sample_size: Number of samples used to estimate mean token counts.
        seed: Seed for the demand sample.

    Returns:
        ``(num_prompt, num_token)``; ``num_token`` is 0 for baseline families.
    """
    import numpy as np

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if not 0 < utilization_target <= 1:
        raise ValueError(f"utilization_target must be in (0, 1], got {utilization_target}")
    factory = get_design_family(design_family) if isinstance(design_family, str) else design_family
    probe = factory(1, 1) if _accepts_two_counts(factory) else factory(1)
    spec = get_workload(workload) if isinstance(workload, str) else workload
    rng = np.random.default_rng(seed)
    mean_prompt = float(np.mean(spec.prompt_tokens.sample(rng, sample_size)))
    mean_output = float(np.mean(spec.output_tokens.sample(rng, sample_size)))

    prompt_perf = AnalyticalPerformanceModel(model, probe.prompt_machine)
    token_perf = AnalyticalPerformanceModel(model, probe.token_machine)
    # Prompt capacity: tokens/s at the MLS batching limit of 2048 tokens.
    prompt_capacity = prompt_perf.prompt_throughput(2048) * utilization_target
    # Token capacity: tokens/s at a typical decode batch (32 requests).
    token_capacity = token_perf.token_throughput(32, int(32 * (mean_prompt + mean_output / 2))) * utilization_target

    prompt_demand = rate_rps * mean_prompt
    token_demand = rate_rps * mean_output
    num_prompt = max(1, int(np.ceil(prompt_demand / prompt_capacity)))
    num_token = max(1, int(np.ceil(token_demand / token_capacity)))
    if not probe.split:
        # Baselines run both phases everywhere: size for the combined demand.
        return max(1, num_prompt + num_token), 0
    return num_prompt, num_token


def find_max_throughput(
    design: ClusterDesign,
    rates: Sequence[float],
    model: ModelSpec = LLAMA2_70B,
    workload: str | WorkloadSpec = "coding",
    trace_duration_s: float = 60.0,
    seed: int = 0,
) -> float:
    """Convenience wrapper around :meth:`Provisioner.max_throughput`."""
    provisioner = Provisioner(model=model, workload=workload, trace_duration_s=trace_duration_s, seed=seed)
    best_rate, _ = provisioner.max_throughput(design, rates)
    return best_rate
