"""Dynamic pool autoscaling: machine re-purposing driven by load signals.

The paper's cluster-level scheduler already moves machines into the mixed
pool *reactively*, when a request cannot be routed anywhere healthy.  The
:class:`PoolAutoscaler` adds the *proactive* loop the paper describes for
time-varying traffic (§IV-A): a recurring engine event samples queue depth,
KV headroom, and pool utilization, and — with hysteresis, so transient blips
don't thrash machines — re-purposes machines between the prompt and token
pools, or parks idle machines entirely, converting trough capacity into
saved machine-hours.  The shape of the loop (boot/retire workers off queued
pressure, drain before retiring) follows the classic cloud-scheduler
pattern.

All placement mechanics reuse the scheduler's mixed-pool machinery
(:meth:`~repro.core.cluster_scheduler.ClusterScheduler.retarget_home` drains
a busy machine through the mixed pool before it lands in its new home;
:meth:`~repro.core.cluster_scheduler.ClusterScheduler.park_machine` only
accepts fully drained machines), so no request is ever lost or double-owned
across a re-purpose.  Every action is recorded in a timeline for analysis.

Determinism: decisions read only machine queue counters (which are exact
under decode fast-forwarding) and pick machines by load with lexicographic
tie-breaks, so an autoscaled simulation remains bit-identical across runs
and across fast-forward on/off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster_scheduler import ClusterScheduler, total_queue_load
from repro.core.machine import MachineRole, SimulatedMachine
from repro.simulation.engine import RecurringTask, SimulationEngine
from repro.simulation.events import AUTOSCALER_TICK_PRIORITY


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning knobs for the pool autoscaler.

    Attributes:
        interval_s: Seconds of simulated time between control ticks.
        prompt_high_tokens: Mean pending prompt tokens per prompt machine
            above which the prompt pool is considered pressured.
        prompt_low_tokens: Mean pending prompt tokens per prompt machine
            below which the prompt pool is considered idle.
        decode_high_tokens: Mean pending decode tokens per token machine
            above which the token pool is considered pressured.
        decode_low_tokens: Mean pending decode tokens per token machine
            below which the token pool is considered idle.
        min_headroom_fraction: Minimum KV headroom on the tightest token
            machine; less than this pressures the token pool regardless of
            queue depth.
        hysteresis_ticks: Consecutive pressured (or idle) ticks required
            before the autoscaler acts — the anti-thrashing guard.
        cooldown_s: Minimum simulated time between two autoscaler actions.
        min_prompt_machines: Prompt-home machines the autoscaler must leave
            routable (never re-purposed away or parked below this).
        min_token_machines: Token-home machines the autoscaler must leave
            routable.
        park_idle_machines: Whether fully drained machines may be parked
            (withdrawn from routing) when their pool is idle.
    """

    interval_s: float = 5.0
    prompt_high_tokens: float = 2048.0
    prompt_low_tokens: float = 128.0
    decode_high_tokens: float = 8192.0
    decode_low_tokens: float = 512.0
    min_headroom_fraction: float = 0.10
    hysteresis_ticks: int = 2
    cooldown_s: float = 10.0
    min_prompt_machines: int = 1
    min_token_machines: int = 1
    park_idle_machines: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.hysteresis_ticks < 1:
            raise ValueError(f"hysteresis_ticks must be >= 1, got {self.hysteresis_ticks}")
        if self.min_prompt_machines < 1 or self.min_token_machines < 1:
            raise ValueError("minimum pool sizes must be >= 1")


@dataclass(frozen=True)
class RepurposeEvent:
    """One autoscaler action, recorded in the re-purposing timeline.

    Attributes:
        time_s: Simulated time of the action.
        machine: Machine acted on.
        action: ``"repurpose"``, ``"park"``, or ``"unpark"``.
        from_pool: Home pool (or ``"parked"``) before the action.
        to_pool: Home pool (or ``"parked"``) after the action.
        reason: Signal that triggered the action.
    """

    time_s: float
    machine: str
    action: str
    from_pool: str
    to_pool: str
    reason: str


@dataclass
class _PoolSignal:
    """Hysteresis state for one pool kind."""

    high_streak: int = 0
    low_streak: int = 0

    def update(self, high: bool, low: bool) -> None:
        self.high_streak = self.high_streak + 1 if high else 0
        self.low_streak = self.low_streak + 1 if low else 0


class PoolAutoscaler:
    """Recurring control loop that re-purposes and parks cluster machines.

    Attach to a running simulation with :meth:`attach` (done by
    :class:`~repro.core.cluster.ClusterSimulation` when constructed with an
    ``autoscaler=``).  After the run, :attr:`timeline` holds every action and
    :meth:`machine_hours_saved` / :meth:`active_machine_hours` quantify the
    capacity the autoscaler released versus static provisioning.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self.timeline: list[RepurposeEvent] = []
        self.ticks = 0
        self._engine: SimulationEngine | None = None
        self._scheduler: ClusterScheduler | None = None
        self._task: RecurringTask | None = None
        self._signals = {"prompt": _PoolSignal(), "token": _PoolSignal()}
        self._last_action_time = float("-inf")
        #: machine name -> accumulated parked seconds (closed intervals).
        self._parked_seconds: dict[str, float] = {}
        #: machine name -> park start time of the currently open interval.
        self._park_started: dict[str, float] = {}
        #: closed park intervals as (machine, start_s, end_s) — the fleet
        #: layer intersects these with cluster billing windows.
        self._park_intervals: list[tuple[str, float, float]] = []

    # -- lifecycle ---------------------------------------------------------------------

    def attach(self, engine: SimulationEngine, scheduler: ClusterScheduler) -> None:
        """Start the control loop on ``engine``, managing ``scheduler``'s pools.

        Raises:
            RuntimeError: if already attached, or the cluster is not split
                (baseline clusters have a single mixed pool — nothing to
                re-purpose between).
        """
        if self._task is not None:
            raise RuntimeError("autoscaler is already attached to a simulation")
        if not scheduler.split:
            raise RuntimeError("the pool autoscaler requires a split (Splitwise) cluster")
        self._engine = engine
        self._scheduler = scheduler
        scheduler.on_machine_failed = self._handle_machine_failed
        self._task = engine.schedule_recurring(
            self.config.interval_s, self._tick, priority=AUTOSCALER_TICK_PRIORITY, tag="autoscaler"
        )

    def _handle_machine_failed(self, machine: SimulatedMachine) -> None:
        """Stop crediting a parked machine's saved hours once it fails.

        A dead machine is "off" in the static baseline too; leaving its park
        interval open would bill its remaining lifetime as autoscaler
        savings.
        """
        self._note_unparked(machine.name, self._engine.now)

    def stop(self) -> None:
        """Stop the control loop without closing park intervals.

        Called by the fleet layer once every request has completed: with
        several recurring controllers on one engine, each one's own
        "pending_events == 0" drain check never fires (the others' ticks
        keep the queue non-empty), so the fleet stops them explicitly.
        Ticks never act after the last completion, so this is
        behavior-neutral.
        """
        if self._task is not None:
            self._task.cancel()

    def finalize(self, end_time_s: float) -> None:
        """Close open park intervals at the end of the simulated window."""
        if self._task is not None:
            self._task.cancel()
        for name, started in list(self._park_started.items()):
            self._parked_seconds[name] = self._parked_seconds.get(name, 0.0) + (end_time_s - started)
            self._park_intervals.append((name, started, end_time_s))
            del self._park_started[name]

    # -- reporting ---------------------------------------------------------------------

    def machine_hours_saved(self) -> float:
        """Machine-hours released by parking, versus static provisioning.

        Only closed intervals count; call :meth:`finalize` (done by the
        cluster simulation) before reading.
        """
        return sum(self._parked_seconds.values()) / 3600.0

    def active_machine_hours(self, duration_s: float, num_machines: int) -> float:
        """Machine-hours actually consumed over a ``duration_s`` window."""
        return num_machines * duration_s / 3600.0 - self.machine_hours_saved()

    def park_intervals(self) -> list[tuple[str, float, float]]:
        """Closed park intervals as ``(machine, start_s, end_s)``.

        Call :meth:`finalize` first; the fleet layer intersects these with
        cluster billing windows so parking only discounts time that was
        actually billed.
        """
        return list(self._park_intervals)

    def parked_seconds_by_machine(self) -> dict[str, float]:
        """Accumulated closed parked seconds per machine name."""
        return dict(self._parked_seconds)

    def repurpose_count(self) -> int:
        """Number of home-pool re-targets performed."""
        return sum(1 for event in self.timeline if event.action == "repurpose")

    def timeline_as_dicts(self) -> list[dict]:
        """JSON-friendly copy of the re-purposing timeline."""
        return [
            {
                "time_s": round(event.time_s, 3),
                "machine": event.machine,
                "action": event.action,
                "from": event.from_pool,
                "to": event.to_pool,
                "reason": event.reason,
            }
            for event in self.timeline
        ]

    # -- control loop ------------------------------------------------------------------

    def _tick(self) -> None:
        engine = self._engine
        scheduler = self._scheduler
        self.ticks += 1
        if engine.pending_events == 0:
            # The cluster is fully drained and no arrivals remain: the tick
            # would otherwise keep the event queue alive forever.
            self._task.cancel()
            return

        prompt_machines = self._home_machines(MachineRole.PROMPT)
        token_machines = self._home_machines(MachineRole.TOKEN)

        prompt_load = (
            sum(m.pending_prompt_tokens for m in prompt_machines) / len(prompt_machines)
            if prompt_machines
            else float("inf")
        )
        if token_machines:
            token_load = sum(m.pending_decode_tokens for m in token_machines) / len(token_machines)
            min_headroom = min(m.memory_headroom_fraction for m in token_machines)
        else:
            token_load = float("inf")
            min_headroom = 0.0

        cfg = self.config
        self._signals["prompt"].update(
            high=prompt_load > cfg.prompt_high_tokens, low=prompt_load < cfg.prompt_low_tokens
        )
        self._signals["token"].update(
            high=token_load > cfg.decode_high_tokens or min_headroom < cfg.min_headroom_fraction,
            low=token_load < cfg.decode_low_tokens and min_headroom > cfg.min_headroom_fraction,
        )

        if engine.now - self._last_action_time < cfg.cooldown_s:
            return
        h = cfg.hysteresis_ticks
        prompt_signal = self._signals["prompt"]
        token_signal = self._signals["token"]
        # One action per tick: relieve pressure first, then harvest idleness.
        if prompt_signal.high_streak >= h:
            acted = self._scale_up(MachineRole.PROMPT, reason=f"prompt queue {prompt_load:.0f} tok/machine")
        elif token_signal.high_streak >= h:
            acted = self._scale_up(
                MachineRole.TOKEN,
                reason=f"decode queue {token_load:.0f} tok/machine, headroom {min_headroom:.2f}",
            )
        elif cfg.park_idle_machines and prompt_signal.low_streak >= h and token_signal.high_streak == 0:
            acted = self._scale_down(MachineRole.PROMPT, reason="prompt pool idle")
        elif cfg.park_idle_machines and token_signal.low_streak >= h and prompt_signal.high_streak == 0:
            acted = self._scale_down(MachineRole.TOKEN, reason="token pool idle")
        else:
            acted = False
        if acted:
            self._last_action_time = engine.now
            self._signals["prompt"] = _PoolSignal()
            self._signals["token"] = _PoolSignal()

    def _home_machines(self, role: MachineRole) -> list[SimulatedMachine]:
        """Routable machines counted toward ``role`` (home view, mixed included)."""
        scheduler = self._scheduler
        home_pool = scheduler.prompt_pool if role is MachineRole.PROMPT else scheduler.token_pool
        machines = [m for m in home_pool if m.home_role is role]
        machines.extend(m for m in scheduler.mixed_pool if m.home_role is role)
        return machines

    def _scale_up(self, role: MachineRole, reason: str) -> bool:
        """Add capacity to ``role``: unpark first, then borrow from the other pool."""
        scheduler = self._scheduler
        now = self._engine.now
        # Cheapest capacity: a parked machine (prefer one already homed right).
        parked = sorted(scheduler.parked_pool, key=lambda m: (m.home_role is not role, m.name))
        if parked:
            machine = parked[0]
            previous_home = machine.home_role.value
            if machine.home_role is not role:
                scheduler.retarget_home(machine, role)
            scheduler.unpark_machine(machine)
            self._note_unparked(machine.name, now)
            self.timeline.append(
                RepurposeEvent(now, machine.name, "unpark", "parked", machine.home_role.value, reason)
            )
            if previous_home != machine.home_role.value:
                self.timeline.append(
                    RepurposeEvent(
                        now, machine.name, "repurpose", previous_home, machine.home_role.value, reason
                    )
                )
            return True
        # Borrow from the opposite pool, respecting its routable minimum.
        other = MachineRole.TOKEN if role is MachineRole.PROMPT else MachineRole.PROMPT
        floor = (
            self.config.min_token_machines if other is MachineRole.TOKEN else self.config.min_prompt_machines
        )
        if scheduler.count_home_machines(other) <= floor:
            return False
        other_pool = scheduler.token_pool if other is MachineRole.TOKEN else scheduler.prompt_pool
        donor = other_pool.least_loaded(total_queue_load)
        if donor is None:
            return False
        scheduler.retarget_home(donor, role)
        self.timeline.append(
            RepurposeEvent(now, donor.name, "repurpose", other.value, role.value, reason)
        )
        return True

    def _scale_down(self, role: MachineRole, reason: str) -> bool:
        """Park one fully idle ``role`` machine, respecting the routable minimum."""
        scheduler = self._scheduler
        floor = (
            self.config.min_prompt_machines if role is MachineRole.PROMPT else self.config.min_token_machines
        )
        if scheduler.count_home_machines(role) <= floor:
            return False
        pool = scheduler.prompt_pool if role is MachineRole.PROMPT else scheduler.token_pool
        candidates = [
            m
            for m in pool
            if m.home_role is role and not m.is_busy and not m.has_prompt_work() and not m.has_token_work()
        ]
        if not candidates:
            return False
        machine = min(candidates, key=lambda m: m.name)
        scheduler.park_machine(machine)
        now = self._engine.now
        self._park_started[machine.name] = now
        self.timeline.append(RepurposeEvent(now, machine.name, "park", role.value, "parked", reason))
        return True

    def _note_unparked(self, name: str, now: float) -> None:
        started = self._park_started.pop(name, None)
        if started is not None:
            self._parked_seconds[name] = self._parked_seconds.get(name, 0.0) + (now - started)
            self._park_intervals.append((name, started, now))
