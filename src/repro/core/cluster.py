"""End-to-end cluster simulation.

:class:`ClusterSimulation` instantiates the machines of a
:class:`~repro.core.designs.ClusterDesign`, wires them to a
:class:`~repro.core.cluster_scheduler.ClusterScheduler`, replays a request
trace through the discrete-event engine, and returns a
:class:`SimulationResult` with every request's timestamps plus cluster-level
metrics (utilization, energy, batch occupancy).

This is the reproduction of the paper's SplitwiseSim (Section V-B): the same
inputs (trace, performance model, cluster and scheduler configuration) and
the same outputs (per-request TTFT/TBT/E2E, machine utilization levels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.batching.policies import make_policy
from repro.core.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.core.cluster_scheduler import ClusterScheduler
from repro.core.designs import ClusterDesign
from repro.core.kv_transfer import KVTransferModel
from repro.core.machine import MachineRole, SimulatedMachine
from repro.hardware.interconnect import infiniband_for
from repro.hardware.machine import DGX_A100
from repro.metrics.collectors import BatchOccupancyTracker, MetricsCollector
from repro.metrics.slo import (
    DEFAULT_SLO,
    SloPolicy,
    SloReport,
    TenantSloReport,
    evaluate_slo,
    evaluate_slo_by_tenant,
)
from repro.metrics.summary import RequestMetrics, summarize_requests
from repro.models.llm import LLAMA2_70B, ModelSpec
from repro.models.performance import AnalyticalPerformanceModel, PerformanceModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ARRIVAL_EVENT_PRIORITY, FAULT_EVENT_PRIORITY
from repro.simulation.request import Request
from repro.workload.trace import Trace



@dataclass
class SimulationResult:
    """Everything a cluster simulation produced.

    Attributes:
        design: The cluster design that was simulated.
        trace_name: Name of the input trace.
        requests: All requests that were submitted (completed or not).
        metrics: Per-machine iteration metrics.
        duration_s: Simulated time span (last event time).
        scheduler: The cluster scheduler (exposes pool statistics).
        autoscaler: The pool autoscaler that drove the run (None for a
            statically provisioned run); exposes the re-purposing timeline
            and machine-hour accounting.
    """

    design: ClusterDesign
    trace_name: str
    requests: list[Request]
    metrics: MetricsCollector
    duration_s: float
    scheduler: ClusterScheduler = field(repr=False)
    autoscaler: PoolAutoscaler | None = field(default=None, repr=False)

    @property
    def completed_requests(self) -> list[Request]:
        """Requests that generated all their output tokens."""
        return [r for r in self.requests if r.is_complete]

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted requests that completed."""
        return len(self.completed_requests) / len(self.requests) if self.requests else 0.0

    def request_metrics(self) -> RequestMetrics:
        """Latency and throughput summary over completed requests."""
        return summarize_requests(self.requests, duration_s=self.duration_s)

    def slo_report(
        self,
        reference_model: PerformanceModel | None = None,
        policy: SloPolicy = DEFAULT_SLO,
        model: ModelSpec | None = None,
        tbt_mode: str = "per-token",
    ) -> SloReport:
        """Evaluate the paper's Table VI SLO against an uncontended reference.

        Args:
            reference_model: Reference performance model; defaults to the
                model running on an uncontended DGX-A100 (the paper's choice).
            policy: SLO percentile limits.
            model: LLM used to build the default reference model.
            tbt_mode: TBT percentile definition — ``"per-token"`` (pooled
                per-token gaps, paper-faithful) or ``"per-request-mean"``.
        """
        if reference_model is None:
            reference_model = AnalyticalPerformanceModel(model or LLAMA2_70B, DGX_A100)
        return evaluate_slo(self.requests, reference_model, policy, tbt_mode=tbt_mode)

    def tenant_slo_report(
        self,
        reference_model: PerformanceModel | None = None,
        policies: dict[str, SloPolicy] | None = None,
        default_policy: SloPolicy = DEFAULT_SLO,
        model: ModelSpec | None = None,
        tbt_mode: str = "per-token",
    ) -> TenantSloReport:
        """Per-tenant SLO verdicts plus the fleet-level roll-up.

        Args:
            reference_model: Reference performance model; defaults to the
                model running on an uncontended DGX-A100.
            policies: Optional per-tenant :class:`SloPolicy` overrides.
            default_policy: Policy for tenants without an explicit entry.
            model: LLM used to build the default reference model.
            tbt_mode: See :meth:`slo_report`.
        """
        if reference_model is None:
            reference_model = AnalyticalPerformanceModel(model or LLAMA2_70B, DGX_A100)
        return evaluate_slo_by_tenant(
            self.requests, reference_model, policies, default_policy, tbt_mode=tbt_mode
        )

    def total_energy_wh(self) -> float:
        """Total GPU energy consumed by the cluster in watt-hours."""
        return self.metrics.total_energy_wh()

    def mean_utilization(self) -> float:
        """Mean machine utilization over the simulated span."""
        machine_names = [m.name for m in self.scheduler.machines]
        return self.metrics.mean_utilization(self.duration_s, machine_names)

    def occupancy_by_home_role(self, role: MachineRole) -> BatchOccupancyTracker:
        """Merged batch-occupancy CDF of all machines with the given home role (Fig. 17)."""
        names = [m.name for m in self.scheduler.machines_by_home_role(role)]
        return self.metrics.group_occupancy(names)

    def machine_hours(self) -> float:
        """Machine-hours consumed over the simulated span.

        A statically provisioned run pays for every machine the whole time;
        an autoscaled run subtracts the intervals machines spent parked.
        """
        static_hours = self.design.num_machines * self.duration_s / 3600.0
        if self.autoscaler is None:
            return static_hours
        return self.autoscaler.active_machine_hours(self.duration_s, self.design.num_machines)


class ClusterSimulation:
    """Builds and runs one cluster simulation.

    Args:
        design: The cluster design to instantiate.
        model: The LLM served by every machine.
        max_prompt_batch_tokens: MLS prompt batching limit.
        max_batch_size: MLS batch size limit.
        prompt_queue_threshold: CLS overflow threshold for prompt machines.
        decode_queue_threshold: CLS overflow threshold for token machines.
        batching: Batching policy name for every machine (``"mixed"``, the
            paper's default, or ``"continuous"`` / ``"request-level"`` for the
            Fig. 2 comparison).
        routing: CLS routing policy (``"jsq"``, ``"round-robin"``, ``"random"``).
        fast_forward: Coalesce steady-state decode runs into macro-events on
            every machine (bit-identical results; see
            :mod:`repro.core.machine`).  ``None`` keeps the machines' default
            (enabled unless ``REPRO_NO_FAST_FORWARD=1``).
        autoscaler: Optional dynamic pool autoscaler: a
            :class:`~repro.core.autoscaler.PoolAutoscaler`, an
            :class:`~repro.core.autoscaler.AutoscalerConfig` (wrapped in a
            fresh autoscaler), or ``True`` for the default configuration.
            Requires a split design.
        engine: Optional externally owned simulation engine.  A fleet
            simulation passes one shared engine to every member cluster so
            all clusters advance on a single timeline; standalone clusters
            keep building their own.
        name: Optional cluster name.  When given, machine names are prefixed
            (``"{name}/prompt-0"``) so machines from different clusters of
            one fleet never collide in logs, failure injections, or metrics.
    """

    def __init__(
        self,
        design: ClusterDesign,
        model: ModelSpec = LLAMA2_70B,
        max_prompt_batch_tokens: int = 2048,
        max_batch_size: int = 64,
        prompt_queue_threshold: int | None = None,
        decode_queue_threshold: int | None = None,
        batching: str = "mixed",
        routing: str = "jsq",
        fast_forward: bool | None = None,
        autoscaler: PoolAutoscaler | AutoscalerConfig | bool | None = None,
        engine: SimulationEngine | None = None,
        name: str = "",
    ) -> None:
        self.design = design
        self.model = model
        self.batching = batching
        self.routing = routing
        self.fast_forward = fast_forward
        self.name = name
        if autoscaler is True:
            autoscaler = PoolAutoscaler()
        elif isinstance(autoscaler, AutoscalerConfig):
            autoscaler = PoolAutoscaler(autoscaler)
        elif autoscaler is False:
            autoscaler = None
        self.autoscaler: PoolAutoscaler | None = autoscaler
        self.engine = engine if engine is not None else SimulationEngine()
        self.metrics = MetricsCollector()
        self.machines = self._build_machines(max_prompt_batch_tokens, max_batch_size)
        scheduler_kwargs = {}
        if prompt_queue_threshold is not None:
            scheduler_kwargs["prompt_queue_threshold"] = prompt_queue_threshold
        if decode_queue_threshold is not None:
            scheduler_kwargs["decode_queue_threshold"] = decode_queue_threshold
        self.scheduler = ClusterScheduler(
            engine=self.engine,
            machines=self.machines,
            model=model,
            split=design.split,
            routing=routing,
            **scheduler_kwargs,
        )

    def _build_machines(self, max_prompt_batch_tokens: int, max_batch_size: int) -> list[SimulatedMachine]:
        machines: list[SimulatedMachine] = []
        design = self.design
        prefix = f"{self.name}/" if self.name else ""
        if design.split:
            prompt_link = infiniband_for(
                design.prompt_machine.interconnect_gbps, design.token_machine.interconnect_gbps
            )
            prompt_transfer = KVTransferModel(model=self.model, link=prompt_link)
            for index in range(design.num_prompt):
                machines.append(
                    SimulatedMachine(
                        name=f"{prefix}prompt-{index}",
                        spec=design.prompt_machine,
                        model=self.model,
                        engine=self.engine,
                        role=MachineRole.PROMPT,
                        policy=make_policy(self.batching),
                        metrics=self.metrics,
                        kv_transfer=prompt_transfer,
                        max_prompt_batch_tokens=max_prompt_batch_tokens,
                        max_batch_size=max_batch_size,
                        fast_forward=self.fast_forward,
                    )
                )
            for index in range(design.num_token):
                machines.append(
                    SimulatedMachine(
                        name=f"{prefix}token-{index}",
                        spec=design.token_machine,
                        model=self.model,
                        engine=self.engine,
                        role=MachineRole.TOKEN,
                        policy=make_policy(self.batching),
                        metrics=self.metrics,
                        max_prompt_batch_tokens=max_prompt_batch_tokens,
                        max_batch_size=max_batch_size,
                        fast_forward=self.fast_forward,
                    )
                )
        else:
            for index in range(design.num_prompt):
                machines.append(
                    SimulatedMachine(
                        name=f"{prefix}machine-{index}",
                        spec=design.prompt_machine,
                        model=self.model,
                        engine=self.engine,
                        role=MachineRole.MIXED,
                        policy=make_policy(self.batching),
                        metrics=self.metrics,
                        max_prompt_batch_tokens=max_prompt_batch_tokens,
                        max_batch_size=max_batch_size,
                        fast_forward=self.fast_forward,
                    )
                )
        return machines

    def run(
        self,
        trace: Trace,
        drain: bool = True,
        horizon_s: float | None = None,
        failures: Sequence[tuple[float, str]] = (),
    ) -> SimulationResult:
        """Replay ``trace`` through the cluster.

        Args:
            trace: The request trace to replay.
            drain: Whether to keep simulating until every request completes
                (``True``, the default) or stop at the trace end.
            horizon_s: Optional hard simulated-time limit.
            failures: Optional ``(time_s, machine_name)`` machine failures to
                inject; affected requests restart from scratch (§IV-E).

        Returns:
            The populated :class:`SimulationResult`.
        """
        requests = [Request(descriptor=descriptor) for descriptor in trace]
        self.prepare(failures)
        for request in requests:
            self.engine.schedule_at(
                request.arrival_time,
                lambda req=request: self.scheduler.submit(req),
                priority=ARRIVAL_EVENT_PRIORITY,
                tag=f"arrival:{request.request_id}",
            )
        until = horizon_s if horizon_s is not None else (None if drain else trace.duration_s)
        self.engine.run(until=until)
        # A horizon-limited run can stop mid-macro-event: materialize the
        # coalesced iterations the clock has already passed so partial results
        # match per-iteration stepping (a no-op after a full drain).  finish()
        # syncs again for fleet callers; the second pass is a no-op here.
        for machine in self.machines:
            machine.sync_fast_forward()
        duration = max(self.engine.now, trace.duration_s)
        if self.autoscaler is not None and until is None:
            # The trailing autoscaler tick that observes the drain fires up to
            # one interval after the last real event; excluding that
            # controller-only tail keeps the simulated window comparable with
            # a static run of the same trace (machine-hour comparisons would
            # otherwise charge the autoscaled run for idle clock it never
            # worked).  Ticks never act after the last completion, so no
            # timeline event falls outside the reported window.
            last_work = max(
                (r.completion_time for r in requests if r.completion_time is not None),
                default=0.0,
            )
            last_failure = max((time_s for time_s, _ in failures), default=0.0)
            duration = max(trace.duration_s, last_work, last_failure)
        return self.finish(requests, trace.name, duration)

    # -- fleet lifecycle hooks ----------------------------------------------------------
    #
    # A fleet simulation owns the arrival schedule and the engine loop itself;
    # it drives each member cluster through prepare() before the run and
    # finish() after, instead of calling run().

    def prepare(self, failures: Sequence[tuple[float, str]] = ()) -> None:
        """Arm the cluster for a run on its (possibly shared) engine.

        Attaches the autoscaler's control loop and schedules any failure
        injections.  Called by :meth:`run`, or by a fleet simulation before
        it starts scheduling arrivals.

        Raises:
            ValueError: if a failure injection names a machine this cluster
                does not have, or fires at a negative time.  Validated here,
                at scenario-build time, so a typo surfaces as a clear error
                before the run instead of a mid-simulation ``KeyError``.
        """
        known = {machine.name for machine in self.machines}
        for failure_time, machine_name in failures:
            if machine_name not in known:
                label = self.name or self.design.label
                raise ValueError(
                    f"failure injection at t={failure_time} names unknown machine "
                    f"{machine_name!r}; cluster {label!r} machines: {sorted(known)}"
                )
            if failure_time < 0:
                raise ValueError(
                    f"failure injection for {machine_name!r} has negative time {failure_time}"
                )
        if self.autoscaler is not None:
            self.autoscaler.attach(self.engine, self.scheduler)
        for failure_time, machine_name in failures:
            self.engine.schedule_at(
                failure_time,
                lambda name=machine_name: self.scheduler.fail_machine(name),
                priority=FAULT_EVENT_PRIORITY,
                tag=f"failure:{machine_name}",
            )

    def finish(self, requests: list[Request], trace_name: str, duration_s: float) -> SimulationResult:
        """Close out a run and assemble this cluster's :class:`SimulationResult`.

        Materializes any still-coalesced fast-forward state (a horizon-limited
        run can stop mid-macro-event; a no-op after a full drain), finalizes
        the autoscaler's machine-hour intervals, and packages the result.
        """
        for machine in self.machines:
            machine.sync_fast_forward()
        if self.autoscaler is not None:
            self.autoscaler.finalize(duration_s)
        return SimulationResult(
            design=self.design,
            trace_name=trace_name,
            requests=requests,
            metrics=self.metrics,
            duration_s=duration_s,
            scheduler=self.scheduler,
            autoscaler=self.autoscaler,
        )


def simulate_design(
    design: ClusterDesign,
    trace: Trace,
    model: ModelSpec = LLAMA2_70B,
    failures: Sequence[tuple[float, str]] = (),
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`ClusterSimulation` and run it."""
    simulation = ClusterSimulation(design=design, model=model, **kwargs)
    return simulation.run(trace, failures=failures)


def simulate_designs(
    designs: Sequence[ClusterDesign],
    trace: Trace,
    model: ModelSpec = LLAMA2_70B,
    **kwargs,
) -> dict[str, SimulationResult]:
    """Run the same trace through several designs and key results by design label."""
    return {design.label: simulate_design(design, trace, model, **kwargs) for design in designs}
