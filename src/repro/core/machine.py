"""The simulated inference machine and its machine-level scheduler (MLS).

A :class:`SimulatedMachine` is one 8-GPU DGX box serving one model replica.
Its machine-level scheduler (§IV-B of the paper) owns the pending prompt
queue and the pool of requests in their token phase, composes a batch for
every forward-pass iteration using a batching policy, executes the iteration
for the duration given by the performance model, and reports per-iteration
time/energy/occupancy to the metrics collector.

The machine is role-agnostic at execution time: a Splitwise prompt machine
simply never receives token work, a token machine never receives prompt
work, and a machine pulled into the mixed pool receives both and batches
them with mixed continuous batching.  Pool membership is managed by the
cluster-level scheduler.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable

from repro.batching.policies import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_PROMPT_TOKENS,
    BatchConstraints,
    BatchPlan,
    BatchingPolicy,
    MixedContinuousBatching,
)
from repro.core.kv_transfer import KVTransferModel
from repro.hardware.machine import MachineSpec
from repro.metrics.collectors import MetricsCollector
from repro.models.llm import ModelSpec
from repro.models.memory import MemoryModel
from repro.models.performance import AnalyticalPerformanceModel, PerformanceModel
from repro.models.power import PowerModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.request import Request


class MachineRole(enum.Enum):
    """Pool identity of a machine in a Splitwise cluster."""

    PROMPT = "prompt"
    TOKEN = "token"
    MIXED = "mixed"


#: Event priority for iteration completions (fire before new arrivals at the
#: same timestamp so freed capacity is visible to the router).
_FINISH_PRIORITY = 0
_START_PRIORITY = 1


class SimulatedMachine:
    """One DGX machine executing batched inference iterations.

    Args:
        name: Unique machine name within the cluster.
        spec: Hardware description of the machine.
        model: The LLM served by the machine.
        engine: The discrete-event engine driving the simulation.
        role: Initial (and home) pool identity.
        policy: Batching policy; defaults to mixed continuous batching, the
            paper's choice for both baselines and Splitwise machines.
        performance_model: Latency model; defaults to the calibrated
            analytical model for (model, spec).
        metrics: Cluster metrics collector to report iterations into.
        kv_transfer: Transfer model used to account for per-layer transfer
            interference on the prompt computation (set on Splitwise prompt
            machines; ``None`` elsewhere).
        max_prompt_batch_tokens: MLS limit on batched prompt tokens (§IV-B).
        max_batch_size: MLS limit on batched requests per iteration.
    """

    def __init__(
        self,
        name: str,
        spec: MachineSpec,
        model: ModelSpec,
        engine: SimulationEngine,
        role: MachineRole = MachineRole.MIXED,
        policy: BatchingPolicy | None = None,
        performance_model: PerformanceModel | None = None,
        metrics: MetricsCollector | None = None,
        kv_transfer: KVTransferModel | None = None,
        max_prompt_batch_tokens: int = DEFAULT_MAX_PROMPT_TOKENS,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    ) -> None:
        self.name = name
        self.spec = spec
        self.model = model
        self.engine = engine
        self.home_role = role
        self.role = role
        self.policy = policy or MixedContinuousBatching()
        self.performance = performance_model or AnalyticalPerformanceModel(model, spec)
        self.power = PowerModel(model, spec)
        self.memory = MemoryModel(model, spec)
        self.metrics = metrics or MetricsCollector()
        self.kv_transfer = kv_transfer
        self.constraints = BatchConstraints(
            max_prompt_tokens=max_prompt_batch_tokens,
            max_batch_size=max_batch_size,
            max_kv_tokens=self.memory.max_kv_tokens,
        )

        self.pending_prompts: deque[Request] = deque()
        self.token_pool: list[Request] = []
        self.in_transfer: set[int] = set()
        self._in_transfer_tokens: dict[int, int] = {}
        self._running_plan: BatchPlan | None = None
        self._busy = False
        self.failed = False

        # Callbacks wired by the cluster simulation.
        self.on_prompt_complete: Callable[[Request, "SimulatedMachine", float], None] | None = None
        self.on_request_complete: Callable[[Request, "SimulatedMachine"], None] | None = None
        self.on_iteration_complete: Callable[["SimulatedMachine"], None] | None = None

    # -- work intake (called by the cluster scheduler) -------------------------------

    def enqueue_prompt(self, request: Request) -> None:
        """Add a request to the pending prompt queue (FCFS).

        Raises:
            RuntimeError: if the machine has failed.
        """
        if self.failed:
            raise RuntimeError(f"machine {self.name} has failed and cannot accept prompts")
        self.pending_prompts.append(request)
        self._kick()

    def expect_transfer(self, request: Request) -> None:
        """Register a request whose KV-cache will arrive later (for JSQ accounting)."""
        self.in_transfer.add(request.request_id)
        self._in_transfer_tokens[request.request_id] = request.output_tokens

    def cancel_transfer(self, request: Request) -> None:
        """Drop a previously expected transfer (request finished in its prompt phase)."""
        self.in_transfer.discard(request.request_id)
        self._in_transfer_tokens.pop(request.request_id, None)

    def admit_token_request(self, request: Request) -> None:
        """Admit a request whose KV-cache has arrived into the token pool."""
        if self.failed:
            raise RuntimeError(f"machine {self.name} has failed and cannot accept token requests")
        self.in_transfer.discard(request.request_id)
        self._in_transfer_tokens.pop(request.request_id, None)
        if request.is_complete:
            return
        self.token_pool.append(request)
        self._kick()

    def fail(self) -> list[Request]:
        """Mark the machine as failed and surrender all in-flight work (§IV-E).

        Returns the incomplete requests that were queued, decoding, or mid-
        iteration on this machine so the cluster scheduler can restart them
        elsewhere.  A failed machine executes no further iterations.
        """
        self.failed = True
        affected: list[Request] = []
        affected.extend(self.pending_prompts)
        affected.extend(self.token_pool)
        if self._running_plan is not None:
            affected.extend(self._running_plan.prompt_requests)
            affected.extend(self._running_plan.token_requests)
        self.pending_prompts.clear()
        self.token_pool.clear()
        self.in_transfer.clear()
        self._in_transfer_tokens.clear()
        self._running_plan = None
        self._busy = False
        seen: set[int] = set()
        unique: list[Request] = []
        for request in affected:
            if not request.is_complete and id(request) not in seen:
                seen.add(id(request))
                unique.append(request)
        return unique

    # -- queue metrics (used by JSQ routing) -------------------------------------------

    @property
    def is_busy(self) -> bool:
        """Whether an iteration is currently executing."""
        return self._busy

    @property
    def pending_prompt_tokens(self) -> int:
        """Prompt tokens queued or currently running (JSQ queue length)."""
        queued = sum(r.prompt_tokens for r in self.pending_prompts)
        running = self._running_plan.prompt_tokens if self._running_plan else 0
        return queued + running

    @property
    def pending_decode_tokens(self) -> int:
        """Output tokens still owed by requests assigned to this machine."""
        in_pool = sum(r.remaining_tokens for r in self.token_pool)
        expected = sum(self._in_transfer_tokens.values())
        return in_pool + expected

    @property
    def pending_prompt_count(self) -> int:
        """Number of requests waiting for their prompt phase."""
        return len(self.pending_prompts)

    @property
    def active_token_requests(self) -> int:
        """Number of requests currently decoding on this machine."""
        return len(self.token_pool)

    @property
    def kv_tokens_in_use(self) -> int:
        """KV-cache tokens currently resident on the machine."""
        return sum(r.context_tokens for r in self.token_pool)

    @property
    def memory_headroom_fraction(self) -> float:
        """Fraction of the KV-cache budget still free."""
        budget = self.constraints.max_kv_tokens
        return max(0.0, 1.0 - self.kv_tokens_in_use / budget) if budget else 0.0

    def has_prompt_work(self) -> bool:
        """Whether any prompt work is queued or running."""
        running = bool(self._running_plan and self._running_plan.prompt_requests)
        return bool(self.pending_prompts) or running

    def has_token_work(self) -> bool:
        """Whether any token work is present or expected."""
        return bool(self.token_pool) or bool(self.in_transfer)

    def has_foreign_work(self) -> bool:
        """Whether the machine holds work of the opposite kind to its home role."""
        if self.home_role is MachineRole.PROMPT:
            return self.has_token_work()
        if self.home_role is MachineRole.TOKEN:
            return self.has_prompt_work()
        return False

    # -- iteration loop -----------------------------------------------------------------

    def _kick(self) -> None:
        """Start an iteration if the machine is idle."""
        if not self._busy:
            self.engine.schedule_after(0.0, self._start_iteration, priority=_START_PRIORITY, tag=f"{self.name}:start")

    def _start_iteration(self) -> None:
        if self._busy or self.failed:
            return
        plan = self.policy.plan_iteration(self.pending_prompts, self.token_pool, self.constraints)
        if plan.is_empty:
            return
        self._busy = True
        self._running_plan = plan

        prompt_tokens = plan.prompt_tokens
        token_requests = len(plan.token_requests)
        context_tokens = plan.context_tokens

        prompt_latency = self.performance.prompt_latency(prompt_tokens) if prompt_tokens else 0.0
        prompt_latency *= self._transfer_interference(plan)
        token_latency = (
            self.performance.token_latency(token_requests, context_tokens) if token_requests else 0.0
        )
        duration = prompt_latency + token_latency

        energy_wh = 0.0
        if prompt_tokens:
            energy_wh += self.power.prompt_energy_wh(prompt_tokens, prompt_latency)
        if token_requests:
            energy_wh += self.power.token_energy_wh(token_requests, token_latency)

        self.metrics.record_iteration(
            machine=self.name,
            duration_s=duration,
            active_tokens=plan.active_tokens,
            energy_wh=energy_wh,
            prompt_tokens=prompt_tokens,
            tokens_generated=len(plan.prompt_requests) + token_requests,
        )

        for request in plan.prompt_requests:
            request.start_prompt(self.engine.now, self.name)

        self.engine.schedule_after(
            duration,
            lambda: self._finish_iteration(plan, prompt_latency),
            priority=_FINISH_PRIORITY,
            tag=f"{self.name}:finish",
        )

    def _transfer_interference(self, plan: BatchPlan) -> float:
        """Prompt slowdown from overlapped KV-cache transfers (Splitwise prompt machines)."""
        if self.kv_transfer is None or not plan.prompt_requests:
            return 1.0
        factors = [
            self.kv_transfer.prompt_interference_factor(self.kv_transfer.choose_mode(r.prompt_tokens))
            for r in plan.prompt_requests
        ]
        return max(factors)

    def _finish_iteration(self, plan: BatchPlan, prompt_latency: float) -> None:
        if self.failed:
            # The machine died mid-iteration; its results are lost.
            return
        now = self.engine.now
        self._busy = False
        self._running_plan = None

        for request in plan.prompt_requests:
            request.finish_prompt(now)
            if self.on_prompt_complete is not None:
                self.on_prompt_complete(request, self, prompt_latency)
            if request.is_complete and self.on_request_complete is not None:
                self.on_request_complete(request, self)

        selected = {id(r) for r in plan.token_requests}
        for request in plan.token_requests:
            request.generate_token(now)
            if request.is_complete:
                self.token_pool.remove(request)
                if self.on_request_complete is not None:
                    self.on_request_complete(request, self)

        # Aging: requests left out of this iteration gain priority so that
        # preemption (on mixed machines) cannot starve them (§IV-B).
        for request in self.token_pool:
            if id(request) not in selected:
                request.priority_boost += 1.0

        if self.on_iteration_complete is not None:
            self.on_iteration_complete(self)

        self._start_iteration()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedMachine(name={self.name!r}, spec={self.spec.name!r}, role={self.role.value!r}, "
            f"prompts={len(self.pending_prompts)}, tokens={len(self.token_pool)})"
        )
