"""The simulated inference machine and its machine-level scheduler (MLS).

A :class:`SimulatedMachine` is one 8-GPU DGX box serving one model replica.
Its machine-level scheduler (§IV-B of the paper) owns the pending prompt
queue and the pool of requests in their token phase, composes a batch for
every forward-pass iteration using a batching policy, executes the iteration
for the duration given by the performance model, and reports per-iteration
time/energy/occupancy to the metrics collector.

The machine is role-agnostic at execution time: a Splitwise prompt machine
simply never receives token work, a token machine never receives prompt
work, and a machine pulled into the mixed pool receives both and batches
them with mixed continuous batching.  Pool membership is managed by the
cluster-level scheduler.

Queue metrics (``pending_prompt_tokens``, ``pending_decode_tokens``,
``kv_tokens_in_use``, ``memory_headroom_fraction``) are maintained as
incremental counters updated at every enqueue/admit/generate/complete/fail/
withdraw transition, so a JSQ probe over the whole cluster costs O(machines)
instead of O(machines x queue length).  Set ``debug_accounting=True`` (or
the ``REPRO_DEBUG_ACCOUNTING=1`` environment variable) to cross-check every
counter against a full recount on each read.
"""

from __future__ import annotations

import enum
import os
from bisect import bisect_left, insort
from collections import deque
from typing import Callable

from repro.batching.policies import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_PROMPT_TOKENS,
    BatchConstraints,
    BatchPlan,
    BatchingPolicy,
    MixedContinuousBatching,
    PriorityOrderedView,
    priority_key,
)
from repro.core.kv_transfer import KVTransferModel
from repro.hardware.machine import MachineSpec
from repro.metrics.collectors import MetricsCollector
from repro.models.llm import ModelSpec
from repro.models.memory import MemoryModel
from repro.models.performance import AnalyticalPerformanceModel, PerformanceModel
from repro.models.power import PowerModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.request import Request, RequestPhase


class MachineRole(enum.Enum):
    """Pool identity of a machine in a Splitwise cluster."""

    PROMPT = "prompt"
    TOKEN = "token"
    MIXED = "mixed"


#: Event priority for iteration completions (fire before new arrivals at the
#: same timestamp so freed capacity is visible to the router).
_FINISH_PRIORITY = 0
_START_PRIORITY = 1

_COMPLETED = RequestPhase.COMPLETED
_TOKEN_RUNNING = RequestPhase.TOKEN_RUNNING




class AccountingError(AssertionError):
    """An incremental queue counter diverged from a full recount."""


class SimulatedMachine:
    """One DGX machine executing batched inference iterations.

    Args:
        name: Unique machine name within the cluster.
        spec: Hardware description of the machine.
        model: The LLM served by the machine.
        engine: The discrete-event engine driving the simulation.
        role: Initial (and home) pool identity.
        policy: Batching policy; defaults to mixed continuous batching, the
            paper's choice for both baselines and Splitwise machines.
        performance_model: Latency model; defaults to the calibrated
            analytical model for (model, spec).
        metrics: Cluster metrics collector to report iterations into.
        kv_transfer: Transfer model used to account for per-layer transfer
            interference on the prompt computation (set on Splitwise prompt
            machines; ``None`` elsewhere).
        max_prompt_batch_tokens: MLS limit on batched prompt tokens (§IV-B).
        max_batch_size: MLS limit on batched requests per iteration.
        debug_accounting: Cross-check the incremental queue counters against
            a full recount on every read (slow; for tests and debugging).
            Defaults to the ``REPRO_DEBUG_ACCOUNTING=1`` environment flag.
    """

    def __init__(
        self,
        name: str,
        spec: MachineSpec,
        model: ModelSpec,
        engine: SimulationEngine,
        role: MachineRole = MachineRole.MIXED,
        policy: BatchingPolicy | None = None,
        performance_model: PerformanceModel | None = None,
        metrics: MetricsCollector | None = None,
        kv_transfer: KVTransferModel | None = None,
        max_prompt_batch_tokens: int = DEFAULT_MAX_PROMPT_TOKENS,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        debug_accounting: bool | None = None,
    ) -> None:
        self.name = name
        self.spec = spec
        self.model = model
        self.engine = engine
        self.home_role = role
        self.role = role
        self.policy = policy or MixedContinuousBatching()
        self.performance = performance_model or AnalyticalPerformanceModel(model, spec)
        self.power = PowerModel(model, spec)
        self.memory = MemoryModel(model, spec)
        self.metrics = metrics or MetricsCollector()
        self.kv_transfer = kv_transfer
        self.constraints = BatchConstraints(
            max_prompt_tokens=max_prompt_batch_tokens,
            max_batch_size=max_batch_size,
            max_kv_tokens=self.memory.max_kv_tokens,
        )
        if debug_accounting is None:
            debug_accounting = os.environ.get("REPRO_DEBUG_ACCOUNTING") == "1"
        self.debug_accounting = debug_accounting

        self.pending_prompts: deque[Request] = deque()
        self.token_pool: list[Request] = []
        # The token pool in priority_key order, maintained incrementally
        # (insort on admit, binary-search removal, two-run merge after aging)
        # so the batching policy never re-sorts it.  Same members as
        # token_pool, which keeps admission order for fail/restart semantics.
        self._token_ready: PriorityOrderedView = PriorityOrderedView()
        self.in_transfer: set[int] = set()
        self._in_transfer_tokens: dict[int, int] = {}
        self._running_plan: BatchPlan | None = None
        self._busy = False
        self.failed = False

        # Incremental queue accounting (tentpole of the O(1) hot path): each
        # counter mirrors a sum the JSQ router used to recompute per probe.
        self._queued_prompt_tokens = 0  # sum(prompt_tokens) over pending_prompts
        self._running_prompt_tokens = 0  # prompt tokens of the running plan
        self._pool_decode_tokens = 0  # sum(remaining_tokens) over token_pool
        self._expected_decode_tokens = 0  # sum of _in_transfer_tokens values
        self._kv_tokens = 0  # sum(context_tokens) over token_pool
        # request_id indexes over the queues for O(1) lookup and withdrawal.
        self._queued_by_id: dict[int, Request] = {}
        self._pool_by_id: dict[int, Request] = {}
        # At most one pending start event per machine (kick collapsing).
        self._start_scheduled = False
        # Aging bookkeeping: pool size at planning time plus admissions until
        # the aging pass lets _finish_iteration derive the skipped count O(1).
        self._pool_len_at_plan = 0
        self._admitted_during_iteration = 0
        self._aging_pending = False
        # request_ids withdrawn while the current iteration is in flight.
        self._withdrawn_ids: set[int] = set()
        self._start_tag = f"{name}:start"
        self._finish_tag = f"{name}:finish"

        # Callbacks wired by the cluster simulation.
        self.on_prompt_complete: Callable[[Request, "SimulatedMachine", float], None] | None = None
        self.on_request_complete: Callable[[Request, "SimulatedMachine"], None] | None = None
        self.on_iteration_complete: Callable[["SimulatedMachine"], None] | None = None

    # -- work intake (called by the cluster scheduler) -------------------------------

    def enqueue_prompt(self, request: Request) -> None:
        """Add a request to the pending prompt queue (FCFS).

        Raises:
            RuntimeError: if the machine has failed.
        """
        if self.failed:
            raise RuntimeError(f"machine {self.name} has failed and cannot accept prompts")
        self.pending_prompts.append(request)
        self._queued_prompt_tokens += request.prompt_tokens
        self._queued_by_id[request.request_id] = request
        self._kick()

    def expect_transfer(self, request: Request) -> None:
        """Register a request whose KV-cache will arrive later (for JSQ accounting)."""
        request_id = request.request_id
        previous = self._in_transfer_tokens.get(request_id)
        if previous is not None:
            self._expected_decode_tokens -= previous
        self.in_transfer.add(request_id)
        self._in_transfer_tokens[request_id] = request.output_tokens
        self._expected_decode_tokens += request.output_tokens

    def cancel_transfer(self, request: Request) -> None:
        """Drop a previously expected transfer (request finished in its prompt phase)."""
        self.in_transfer.discard(request.request_id)
        tokens = self._in_transfer_tokens.pop(request.request_id, None)
        if tokens is not None:
            self._expected_decode_tokens -= tokens

    def admit_token_request(self, request: Request) -> None:
        """Admit a request whose KV-cache has arrived into the token pool."""
        if self.failed:
            raise RuntimeError(f"machine {self.name} has failed and cannot accept token requests")
        self.in_transfer.discard(request.request_id)
        tokens = self._in_transfer_tokens.pop(request.request_id, None)
        if tokens is not None:
            self._expected_decode_tokens -= tokens
        if request.phase is _COMPLETED:
            return
        self.token_pool.append(request)
        insort(self._token_ready, request, key=priority_key)
        self._pool_by_id[request.request_id] = request
        self._pool_decode_tokens += request.output_tokens - request.generated_tokens
        self._kv_tokens += request.prompt_tokens + request.generated_tokens
        if self._aging_pending:
            self._admitted_during_iteration += 1
        self._kick()

    def withdraw(self, request: Request) -> None:
        """Remove a request from this machine's queues (cluster restart path).

        Safe to call when the request is not present; any expected KV-cache
        transfer for it is dropped as well.
        """
        request_id = request.request_id
        if self._queued_by_id.pop(request_id, None) is not None:
            self.pending_prompts.remove(request)
            self._queued_prompt_tokens -= request.prompt_tokens
        if self._pool_by_id.pop(request_id, None) is not None:
            self.token_pool.remove(request)
            self._remove_ready(request)
            self._pool_decode_tokens -= request.remaining_tokens
            self._kv_tokens -= request.prompt_tokens + request.generated_tokens
            if self._busy:
                # The running plan may reference this request; the finish
                # loop must skip it (a membership re-check is not enough —
                # the restarted request can be re-admitted to this very
                # machine before the stale finish event fires).
                self._withdrawn_ids.add(request_id)
        self.cancel_transfer(request)

    def _remove_ready(self, request: Request) -> None:
        """Drop a request from the priority-ordered ready view via binary search."""
        ready = self._token_ready
        index = bisect_left(ready, priority_key(request), key=priority_key)
        if index < len(ready) and ready[index] is request:
            del ready[index]
        else:  # pragma: no cover - defensive; keys are unique so this is unreachable
            ready.remove(request)

    def find_queued(self, request_id: int) -> Request | None:
        """The queued or decoding request with ``request_id``, if present (O(1))."""
        found = self._queued_by_id.get(request_id)
        if found is not None:
            return found
        return self._pool_by_id.get(request_id)

    def fail(self) -> list[Request]:
        """Mark the machine as failed and surrender all in-flight work (§IV-E).

        Returns the incomplete requests that were queued, decoding, or mid-
        iteration on this machine so the cluster scheduler can restart them
        elsewhere.  A failed machine executes no further iterations.
        """
        self.failed = True
        affected: list[Request] = []
        affected.extend(self.pending_prompts)
        affected.extend(self.token_pool)
        if self._running_plan is not None:
            affected.extend(self._running_plan.prompt_requests)
            affected.extend(self._running_plan.token_requests)
        self.pending_prompts.clear()
        self.token_pool.clear()
        self._token_ready.clear()
        self.in_transfer.clear()
        self._in_transfer_tokens.clear()
        self._queued_by_id.clear()
        self._pool_by_id.clear()
        self._queued_prompt_tokens = 0
        self._running_prompt_tokens = 0
        self._pool_decode_tokens = 0
        self._expected_decode_tokens = 0
        self._kv_tokens = 0
        self._running_plan = None
        self._busy = False
        self._aging_pending = False
        self._admitted_during_iteration = 0
        self._withdrawn_ids.clear()
        seen: set[int] = set()
        unique: list[Request] = []
        for request in affected:
            if request.phase is not _COMPLETED and id(request) not in seen:
                seen.add(id(request))
                unique.append(request)
        return unique

    # -- queue metrics (used by JSQ routing) -------------------------------------------

    @property
    def is_busy(self) -> bool:
        """Whether an iteration is currently executing."""
        return self._busy

    @property
    def pending_prompt_tokens(self) -> int:
        """Prompt tokens queued or currently running (JSQ queue length)."""
        if self.debug_accounting:
            self.verify_accounting()
        return self._queued_prompt_tokens + self._running_prompt_tokens

    @property
    def pending_decode_tokens(self) -> int:
        """Output tokens still owed by requests assigned to this machine."""
        if self.debug_accounting:
            self.verify_accounting()
        return self._pool_decode_tokens + self._expected_decode_tokens

    @property
    def pending_prompt_count(self) -> int:
        """Number of requests waiting for their prompt phase."""
        return len(self.pending_prompts)

    @property
    def active_token_requests(self) -> int:
        """Number of requests currently decoding on this machine."""
        return len(self.token_pool)

    @property
    def kv_tokens_in_use(self) -> int:
        """KV-cache tokens currently resident on the machine."""
        if self.debug_accounting:
            self.verify_accounting()
        return self._kv_tokens

    @property
    def memory_headroom_fraction(self) -> float:
        """Fraction of the KV-cache budget still free.

        A machine with no configured memory model (``max_kv_tokens == 0``)
        reports full headroom rather than reading as "machine full".
        """
        budget = self.constraints.max_kv_tokens
        if not budget:
            return 1.0
        if self.debug_accounting:
            self.verify_accounting()
        headroom = 1.0 - self._kv_tokens / budget
        return headroom if headroom > 0.0 else 0.0

    def has_prompt_work(self) -> bool:
        """Whether any prompt work is queued or running."""
        running = bool(self._running_plan and self._running_plan.prompt_requests)
        return bool(self.pending_prompts) or running

    def has_token_work(self) -> bool:
        """Whether any token work is present or expected."""
        return bool(self.token_pool) or bool(self.in_transfer)

    def has_foreign_work(self) -> bool:
        """Whether the machine holds work of the opposite kind to its home role."""
        if self.home_role is MachineRole.PROMPT:
            return self.has_token_work()
        if self.home_role is MachineRole.TOKEN:
            return self.has_prompt_work()
        return False

    def verify_accounting(self) -> None:
        """Cross-check every incremental counter against a full recount.

        Raises:
            AccountingError: if any counter diverged (indicates a missed
                transition in the incremental accounting).
        """
        recounts = {
            "_queued_prompt_tokens": sum(r.prompt_tokens for r in self.pending_prompts),
            "_running_prompt_tokens": self._running_plan.prompt_tokens if self._running_plan else 0,
            "_pool_decode_tokens": sum(r.remaining_tokens for r in self.token_pool),
            "_expected_decode_tokens": sum(self._in_transfer_tokens.values()),
            "_kv_tokens": sum(r.context_tokens for r in self.token_pool),
        }
        for attribute, expected in recounts.items():
            actual = getattr(self, attribute)
            if actual != expected:
                raise AccountingError(
                    f"machine {self.name}: counter {attribute} is {actual}, full recount gives {expected}"
                )
        queued_ids = {r.request_id for r in self.pending_prompts}
        if queued_ids != set(self._queued_by_id):
            raise AccountingError(f"machine {self.name}: _queued_by_id out of sync with pending_prompts")
        pool_ids = {r.request_id for r in self.token_pool}
        if pool_ids != set(self._pool_by_id):
            raise AccountingError(f"machine {self.name}: _pool_by_id out of sync with token_pool")
        ready_keys = [priority_key(r) for r in self._token_ready]
        if {r.request_id for r in self._token_ready} != pool_ids:
            raise AccountingError(f"machine {self.name}: _token_ready out of sync with token_pool")
        if ready_keys != sorted(ready_keys):
            raise AccountingError(f"machine {self.name}: _token_ready is not in priority order")

    # -- iteration loop -----------------------------------------------------------------

    def _kick(self) -> None:
        """Start an iteration if the machine is idle and none is already pending."""
        if not self._busy and not self._start_scheduled:
            self._start_scheduled = True
            self.engine.schedule_after(0.0, self._on_start_event, priority=_START_PRIORITY, tag=self._start_tag)

    def _on_start_event(self) -> None:
        self._start_scheduled = False
        self._start_iteration()

    def _start_iteration(self) -> None:
        if self._busy or self.failed:
            return
        # The FCFS-sorted ready view makes the policy's priority ordering a
        # detected no-op whenever no request carries an aging boost.
        plan = self.policy.plan_iteration(self.pending_prompts, self._token_ready, self.constraints)
        if plan.is_empty:
            return
        self._busy = True
        self._running_plan = plan
        self._pool_len_at_plan = len(self.token_pool)
        self._admitted_during_iteration = 0
        self._aging_pending = True

        prompt_tokens = plan.prompt_tokens
        token_requests = len(plan.token_requests)
        context_tokens = plan.context_tokens

        # The policy popped the admitted prompts off pending_prompts; move
        # their tokens from the queued counter to the running counter.
        if prompt_tokens:
            self._queued_prompt_tokens -= prompt_tokens
            self._running_prompt_tokens = prompt_tokens
            queued_by_id = self._queued_by_id
            for request in plan.prompt_requests:
                queued_by_id.pop(request.request_id, None)

        prompt_latency = self.performance.prompt_latency(prompt_tokens) if prompt_tokens else 0.0
        prompt_latency *= self._transfer_interference(plan)
        token_latency = (
            self.performance.token_latency(token_requests, context_tokens) if token_requests else 0.0
        )
        duration = prompt_latency + token_latency

        energy_wh = 0.0
        if prompt_tokens:
            energy_wh += self.power.prompt_energy_wh(prompt_tokens, prompt_latency)
        if token_requests:
            energy_wh += self.power.token_energy_wh(token_requests, token_latency)

        self.metrics.record_iteration(
            machine=self.name,
            duration_s=duration,
            active_tokens=plan.active_tokens,
            energy_wh=energy_wh,
            prompt_tokens=prompt_tokens,
            tokens_generated=len(plan.prompt_requests) + token_requests,
        )

        now = self.engine.now
        for request in plan.prompt_requests:
            request.start_prompt(now, self.name)

        self.engine.schedule_after(
            duration,
            lambda: self._finish_iteration(plan, prompt_latency),
            priority=_FINISH_PRIORITY,
            tag=self._finish_tag,
        )

    def _age_skipped(self, plan: BatchPlan) -> None:
        """Boost every pool member left out of ``plan`` and restore ready order.

        Selection preserves ready-view order, so the plan's token requests are
        a subsequence of the view: a two-pointer walk splits the pool into the
        kept (selected, keys unchanged) and boosted (skipped, keys uniformly
        shifted) runs without any hashing.  Both runs remain internally
        ordered, so the order is restored by an O(1) concatenation check or,
        failing that, a two-run merge (which Timsort performs in O(n)
        comparisons).
        """
        ready = self._token_ready
        selected = plan.token_requests
        kept: list[Request] = []
        boosted: list[Request] = []
        if self._withdrawn_ids:
            # Rare path: mid-iteration withdrawals broke the subsequence
            # property; fall back to set membership.
            selected_ids = {id(r) for r in selected}
            for request in ready:
                if id(request) in selected_ids:
                    kept.append(request)
                else:
                    request.priority_boost += 1.0
                    boosted.append(request)
        else:
            index = 0
            count = len(selected)
            for request in ready:
                # Completed plan members were already removed from the view.
                while index < count and selected[index].phase is _COMPLETED:
                    index += 1
                if index < count and request is selected[index]:
                    kept.append(request)
                    index += 1
                else:
                    request.priority_boost += 1.0
                    boosted.append(request)
        if not kept or not boosted:
            return  # a uniformly shifted (or untouched) pool keeps its order
        if priority_key(kept[-1]) <= priority_key(boosted[0]):
            merged = PriorityOrderedView(kept)
            merged.extend(boosted)
        elif priority_key(boosted[-1]) <= priority_key(kept[0]):
            merged = PriorityOrderedView(boosted)
            merged.extend(kept)
        else:
            merged = PriorityOrderedView(boosted)
            merged.extend(kept)
            merged.sort(key=priority_key)
        self._token_ready = merged

    def _transfer_interference(self, plan: BatchPlan) -> float:
        """Prompt slowdown from overlapped KV-cache transfers (Splitwise prompt machines)."""
        if self.kv_transfer is None or not plan.prompt_requests:
            return 1.0
        factors = [
            self.kv_transfer.prompt_interference_factor(self.kv_transfer.choose_mode(r.prompt_tokens))
            for r in plan.prompt_requests
        ]
        return max(factors)

    def _finish_iteration(self, plan: BatchPlan, prompt_latency: float) -> None:
        if self.failed:
            # The machine died mid-iteration; its results are lost.
            return
        now = self.engine.now
        self._busy = False
        self._running_plan = None
        self._running_prompt_tokens = 0

        on_prompt_complete = self.on_prompt_complete
        on_request_complete = self.on_request_complete
        for request in plan.prompt_requests:
            request.finish_prompt(now)
            if on_prompt_complete is not None:
                on_prompt_complete(request, self, prompt_latency)
            if request.phase is _COMPLETED and on_request_complete is not None:
                on_request_complete(request, self)

        pool_by_id = self._pool_by_id
        # A request withdrawn mid-iteration (failure restart) was reset and
        # rerouted; mutating it here would corrupt the restarted state, so its
        # plan slot is skipped outright.  Keyed on the withdrawn-id set rather
        # than pool membership: the restarted request may already have been
        # re-admitted to this very machine, putting its id back in the pool.
        withdrawn = self._withdrawn_ids
        generated_count = 0
        kv_delta = 0
        for request in plan.token_requests:
            if withdrawn and request.request_id in withdrawn:
                continue
            # Token bookkeeping inlined from Request.generate_token: this loop
            # runs once per generated token across the whole cluster.
            if request.phase is _COMPLETED:
                raise RuntimeError(f"request {request.request_id} already complete")
            generated = request.generated_tokens + 1
            request.generated_tokens = generated
            request.token_times.append(now)
            generated_count += 1
            if generated < request.output_tokens:
                request.phase = _TOKEN_RUNNING
            else:
                request.phase = _COMPLETED
                request.completion_time = now
                del pool_by_id[request.request_id]
                self.token_pool.remove(request)
                self._remove_ready(request)
                kv_delta -= request.prompt_tokens + generated
                if on_request_complete is not None:
                    on_request_complete(request, self)
        if generated_count:
            self._pool_decode_tokens -= generated_count
            self._kv_tokens += generated_count + kv_delta

        # Aging: requests left out of this iteration gain priority so that
        # preemption (on mixed machines) cannot starve them (§IV-B).  The
        # skipped count is derived O(1) from the pool size at planning time;
        # in the common fully-batched case there is nothing to age.
        skipped = self._pool_len_at_plan - len(plan.token_requests) + self._admitted_during_iteration
        if skipped:
            self._age_skipped(plan)
        self._aging_pending = False
        self._admitted_during_iteration = 0
        if self._withdrawn_ids:
            self._withdrawn_ids.clear()

        if self.on_iteration_complete is not None:
            self.on_iteration_complete(self)

        self._start_iteration()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedMachine(name={self.name!r}, spec={self.spec.name!r}, role={self.role.value!r}, "
            f"prompts={len(self.pending_prompts)}, tokens={len(self.token_pool)})"
        )
