"""The simulated inference machine and its machine-level scheduler (MLS).

A :class:`SimulatedMachine` is one 8-GPU DGX box serving one model replica.
Its machine-level scheduler (§IV-B of the paper) owns the pending prompt
queue and the pool of requests in their token phase, composes a batch for
every forward-pass iteration using a batching policy, executes the iteration
for the duration given by the performance model, and reports per-iteration
time/energy/occupancy to the metrics collector.

The machine is role-agnostic at execution time: a Splitwise prompt machine
simply never receives token work, a token machine never receives prompt
work, and a machine pulled into the mixed pool receives both and batches
them with mixed continuous batching.  Pool membership is managed by the
cluster-level scheduler.

Queue metrics (``pending_prompt_tokens``, ``pending_decode_tokens``,
``kv_tokens_in_use``, ``memory_headroom_fraction``) are maintained as
incremental counters updated at every enqueue/admit/generate/complete/fail/
withdraw transition, so a JSQ probe over the whole cluster costs O(machines)
instead of O(machines x queue length).  Set ``debug_accounting=True`` (or
the ``REPRO_DEBUG_ACCOUNTING=1`` environment variable) to cross-check every
counter against a full recount on each read.

**Decode fast-forwarding** (see ``docs/performance.md``) removes the
per-iteration cost of the two steady-state decode regimes while keeping
results bit-identical to per-iteration stepping:

* **Full-pool macro-events.**  When a decode-only plan covers the whole
  token pool, the next *k* iterations (until the earliest completion, capped
  by the KV budget) are fully determined.  The machine precomputes the
  latency/energy series, schedules a single macro-event at the k-th
  boundary, and lazily commits virtual iterations — token timestamps,
  counters, metrics, callbacks — whenever the pool is observed (JSQ probes,
  accounting checks) or transitions (enqueue/admit/withdraw/fail).  A
  transition tombstones the macro-event and resumes per-iteration stepping
  at the in-flight iteration's boundary.
* **Oversubscribed rotation.**  With more pool members than batch slots, the
  aging round-robin is stepped through a
  :class:`~repro.batching.rotation.RotationForest` in O(batch) per
  iteration instead of O(pool).  Every rotation iteration keeps its own
  event at the true boundary, so arrivals, admissions, completions, and
  pool restores all happen at exact per-iteration times; withdrawals,
  failures, or a binding KV budget flatten the forest back into the exact
  policy path.

Disable both with ``fast_forward=False`` or ``REPRO_NO_FAST_FORWARD=1``.
"""

from __future__ import annotations

import enum
import os
from array import array
from bisect import bisect_left, bisect_right, insort
from collections import deque
from typing import Callable

from repro.batching.policies import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_PROMPT_TOKENS,
    BatchConstraints,
    BatchPlan,
    BatchingPolicy,
    MixedContinuousBatching,
    PriorityOrderedView,
    priority_key,
)
from repro.batching.rotation import NO_COMPLETION_BOUND as _NO_COMPLETION_BOUND, RotationForest
from repro.core.kv_transfer import KVTransferModel
from repro.hardware.machine import MachineSpec
from repro.metrics.collectors import MetricsCollector
from repro.models.llm import ModelSpec
from repro.models.memory import MemoryModel
from repro.models.performance import AnalyticalPerformanceModel, PerformanceModel
from repro.models.power import PowerModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import FINISH_EVENT_PRIORITY, START_EVENT_PRIORITY
from repro.simulation.request import Request, RequestPhase


class MachineRole(enum.Enum):
    """Pool identity of a machine in a Splitwise cluster."""

    PROMPT = "prompt"
    TOKEN = "token"
    MIXED = "mixed"


_COMPLETED = RequestPhase.COMPLETED
_TOKEN_RUNNING = RequestPhase.TOKEN_RUNNING

#: A steady-state run must cover at least this many decode iterations for the
#: macro-event machinery to beat plain per-iteration stepping.
_MIN_COALESCED_ITERATIONS = 2




class AccountingError(AssertionError):
    """An incremental queue counter diverged from a full recount."""


class SimulatedMachine:
    """One DGX machine executing batched inference iterations.

    Args:
        name: Unique machine name within the cluster.
        spec: Hardware description of the machine.
        model: The LLM served by the machine.
        engine: The discrete-event engine driving the simulation.
        role: Initial (and home) pool identity.
        policy: Batching policy; defaults to mixed continuous batching, the
            paper's choice for both baselines and Splitwise machines.
        performance_model: Latency model; defaults to the calibrated
            analytical model for (model, spec).
        metrics: Cluster metrics collector to report iterations into.
        kv_transfer: Transfer model used to account for per-layer transfer
            interference on the prompt computation (set on Splitwise prompt
            machines; ``None`` elsewhere).
        max_prompt_batch_tokens: MLS limit on batched prompt tokens (§IV-B).
        max_batch_size: MLS limit on batched requests per iteration.
        debug_accounting: Cross-check the incremental queue counters against
            a full recount on every read (slow; for tests and debugging).
            Defaults to the ``REPRO_DEBUG_ACCOUNTING=1`` environment flag.
        fast_forward: Coalesce steady-state decode runs into macro-events
            (bit-identical results, large speedup on decode-heavy phases).
            Defaults to enabled unless ``REPRO_NO_FAST_FORWARD=1`` is set.
            Callers that attach an ``on_iteration_complete`` hook observing
            *wall-clock-accurate* per-iteration timing should disable it:
            coalesced iterations fire the hook once per iteration but in a
            burst at commit time.
    """

    def __init__(
        self,
        name: str,
        spec: MachineSpec,
        model: ModelSpec,
        engine: SimulationEngine,
        role: MachineRole = MachineRole.MIXED,
        policy: BatchingPolicy | None = None,
        performance_model: PerformanceModel | None = None,
        metrics: MetricsCollector | None = None,
        kv_transfer: KVTransferModel | None = None,
        max_prompt_batch_tokens: int = DEFAULT_MAX_PROMPT_TOKENS,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        debug_accounting: bool | None = None,
        fast_forward: bool | None = None,
    ) -> None:
        self.name = name
        self.spec = spec
        self.model = model
        self.engine = engine
        self.home_role = role
        self.role = role
        self.policy = policy or MixedContinuousBatching()
        self.performance = performance_model or AnalyticalPerformanceModel(model, spec)
        self.power = PowerModel(model, spec)
        self.memory = MemoryModel(model, spec)
        self.metrics = metrics or MetricsCollector()
        self.kv_transfer = kv_transfer
        # Columnar token telemetry (see repro.metrics.token_log): the machine
        # appends iteration-boundary timestamps to its own timeline block and
        # requests reference them as segments.
        self.token_log = self.metrics.token_log
        self._timeline = self.token_log.timeline(name)
        # The machine only ever records into its own stats row; holding the
        # row skips the per-iteration name lookup in the collector.
        self._stats = self.metrics.machine_stats(name)
        self.constraints = BatchConstraints(
            max_prompt_tokens=max_prompt_batch_tokens,
            max_batch_size=max_batch_size,
            max_kv_tokens=self.memory.max_kv_tokens,
        )
        # Both env flags are debug/parity toggles whose on and off settings
        # are property-tested bit-identical, so the hidden input cannot
        # change results — the constructor argument still wins when passed.
        if debug_accounting is None:
            debug_accounting = os.environ.get("REPRO_DEBUG_ACCOUNTING") == "1"  # simlint: disable=SIM007
        self.debug_accounting = debug_accounting
        if fast_forward is None:
            fast_forward = os.environ.get("REPRO_NO_FAST_FORWARD") != "1"  # simlint: disable=SIM007
        self.fast_forward_enabled = fast_forward

        self.pending_prompts: deque[Request] = deque()
        # The token pool in priority_key order, maintained incrementally
        # (insort on admit, binary-search removal, two-run merge after aging)
        # so the batching policy never re-sorts it.  Same members as
        # _pool_by_id, whose insertion order is the admission order relied on
        # by fail/restart semantics (the `token_pool` property materializes
        # that view; hot paths use the dict so completions remove in O(1)).
        self._token_ready: PriorityOrderedView = PriorityOrderedView()
        self.in_transfer: set[int] = set()
        self._in_transfer_tokens: dict[int, int] = {}
        self._running_plan: BatchPlan | None = None
        self._busy = False
        self.failed = False

        # Incremental queue accounting (tentpole of the O(1) hot path): each
        # counter mirrors a sum the JSQ router used to recompute per probe.
        self._queued_prompt_tokens = 0  # sum(prompt_tokens) over pending_prompts
        self._running_prompt_tokens = 0  # prompt tokens of the running plan
        self._pool_decode_tokens = 0  # sum(remaining_tokens) over token_pool
        self._expected_decode_tokens = 0  # sum of _in_transfer_tokens values
        self._kv_tokens = 0  # sum(context_tokens) over token_pool
        # request_id indexes over the queues for O(1) lookup and withdrawal.
        self._queued_by_id: dict[int, Request] = {}
        self._pool_by_id: dict[int, Request] = {}
        # At most one pending start event per machine (kick collapsing).
        self._start_scheduled = False
        # Aging bookkeeping: pool size at planning time plus admissions until
        # the aging pass lets _finish_iteration derive the skipped count O(1).
        self._pool_len_at_plan = 0
        self._admitted_during_iteration = 0
        self._aging_pending = False
        # request_ids withdrawn while the current iteration is in flight.
        self._withdrawn_ids: set[int] = set()
        self._start_tag = f"{name}:start"
        self._finish_tag = f"{name}:finish"
        self._macro_tag = f"{name}:macro"
        # Pending-finish arguments (one iteration in flight at a time), so the
        # finish event is a reused bound method instead of a fresh closure.
        # The event handle is kept so fail() can tombstone it: a machine that
        # fails and later recovers must not replay the dead iteration.
        self._finish_plan: BatchPlan | None = None
        self._finish_prompt_latency = 0.0
        self._finish_event = None
        # Decode fast-forward state: the macro-event's plan, the per-iteration
        # duration/energy series, the absolute end time of every coalesced
        # iteration, and commit cursors (bookkeeping committed vs. metrics
        # recorded — metrics lead by one because the per-iteration simulator
        # records an iteration when it *starts*).
        self._ff_plan: BatchPlan | None = None
        self._ff_boundaries: array | None = None
        self._ff_durations: array | None = None
        self._ff_energies: array | None = None
        self._ff_count = 0
        self._ff_done = 0
        self._ff_recorded = 0
        self._ff_event = None
        self.fast_forward_runs = 0  # macro-events launched (introspection)
        # Steady-state rotation state (oversubscribed pools): the level forest
        # replaces the flat priority view while active, and the in-flight
        # iteration's selection is precomputed one step ahead so admissions
        # landing mid-iteration cannot retroactively join it.
        self._rot_forest: RotationForest | None = None
        self._rot_selection = None
        self._rot_event = None
        self._rot_tag = f"{name}:rotate"
        self.rotation_runs = 0  # rotation engagements (introspection)

        # Callbacks wired by the cluster simulation.
        self.on_prompt_complete: Callable[[Request, "SimulatedMachine", float], None] | None = None
        self.on_request_complete: Callable[[Request, "SimulatedMachine"], None] | None = None
        self.on_iteration_complete: Callable[["SimulatedMachine"], None] | None = None

    # -- work intake (called by the cluster scheduler) -------------------------------

    def enqueue_prompt(self, request: Request) -> None:
        """Add a request to the pending prompt queue (FCFS).

        Raises:
            RuntimeError: if the machine has failed.
        """
        if self.failed:
            raise RuntimeError(f"machine {self.name} has failed and cannot accept prompts")
        if self._rot_forest is not None and not self.policy.prefix_mixed_composition:
            # The rotation can't compose this policy's prompt iterations;
            # hand the next boundary back to the exact path.
            self._rotation_interrupt()
        self._ff_interrupt()
        self.pending_prompts.append(request)
        self._queued_prompt_tokens += request.prompt_tokens
        self._queued_by_id[request.request_id] = request
        self._kick()

    def expect_transfer(self, request: Request) -> None:
        """Register a request whose KV-cache will arrive later (for JSQ accounting)."""
        request_id = request.request_id
        previous = self._in_transfer_tokens.get(request_id)
        if previous is not None:
            self._expected_decode_tokens -= previous
        self.in_transfer.add(request_id)
        self._in_transfer_tokens[request_id] = request.output_tokens
        self._expected_decode_tokens += request.output_tokens

    def cancel_transfer(self, request: Request) -> None:
        """Drop a previously expected transfer (request finished in its prompt phase)."""
        self.in_transfer.discard(request.request_id)
        tokens = self._in_transfer_tokens.pop(request.request_id, None)
        if tokens is not None:
            self._expected_decode_tokens -= tokens

    def admit_token_request(self, request: Request) -> None:
        """Admit a request whose KV-cache has arrived into the token pool."""
        if self.failed:
            raise RuntimeError(f"machine {self.name} has failed and cannot accept token requests")
        self.in_transfer.discard(request.request_id)
        tokens = self._in_transfer_tokens.pop(request.request_id, None)
        if tokens is not None:
            self._expected_decode_tokens -= tokens
        if request.phase is _COMPLETED:
            return
        if self._rot_forest is not None:
            if float(request.priority_boost).is_integer():
                # A steady-state rotation absorbs admissions without breaking:
                # the in-flight iteration's batch is already fixed (exactly as
                # a real in-flight iteration's is), and the forest places the
                # newcomer at its boost level, where the next aging pass
                # boosts it just as the per-iteration path's
                # admitted-during-iteration count would.
                self._pool_by_id[request.request_id] = request
                self._pool_decode_tokens += request.output_tokens - request.generated_tokens
                self._kv_tokens += request.prompt_tokens + request.generated_tokens
                self._rot_forest.insert(request)
                return
            # Non-integer boost (external writer): the forest can't represent
            # it; fall back to the exact flat path, like entry does.
            self._rotation_interrupt()
        self._ff_interrupt()
        insort(self._token_ready, request, key=priority_key)
        self._pool_by_id[request.request_id] = request
        self._pool_decode_tokens += request.output_tokens - request.generated_tokens
        self._kv_tokens += request.prompt_tokens + request.generated_tokens
        if self._aging_pending:
            self._admitted_during_iteration += 1
        self._kick()

    def withdraw(self, request: Request) -> None:
        """Remove a request from this machine's queues (cluster restart path).

        Safe to call when the request is not present; any expected KV-cache
        transfer for it is dropped as well.
        """
        self._rotation_interrupt()
        self._ff_interrupt()
        request_id = request.request_id
        if self._queued_by_id.pop(request_id, None) is not None:
            self.pending_prompts.remove(request)
            self._queued_prompt_tokens -= request.prompt_tokens
        if self._pool_by_id.pop(request_id, None) is not None:
            self._remove_ready(request)
            self._pool_decode_tokens -= request.remaining_tokens
            self._kv_tokens -= request.prompt_tokens + request.generated_tokens
            if self._busy:
                # The running plan may reference this request; the finish
                # loop must skip it (a membership re-check is not enough —
                # the restarted request can be re-admitted to this very
                # machine before the stale finish event fires).
                self._withdrawn_ids.add(request_id)
        elif self._busy and self._running_plan is not None:
            # Mid-running-prompt: the request was popped from the queue at
            # iteration start, so neither map holds it — only the running
            # plan does.  Mark it so the finish loop's prompt pass skips it
            # (finish_prompt on a reset request would corrupt the restarted
            # attempt).  `_running_prompt_tokens` is left alone: it is
            # plan-static and reset wholesale when the iteration finishes.
            if any(r is request for r in self._running_plan.prompt_requests):
                self._withdrawn_ids.add(request_id)
        self.cancel_transfer(request)

    def _remove_ready(self, request: Request) -> None:
        """Drop a request from the priority-ordered ready view via binary search."""
        ready = self._token_ready
        index = bisect_left(ready, priority_key(request), key=priority_key)
        if index < len(ready) and ready[index] is request:
            del ready[index]
        else:  # pragma: no cover - defensive; keys are unique so this is unreachable
            ready.remove(request)

    def find_queued(self, request_id: int) -> Request | None:
        """The queued or decoding request with ``request_id``, if present (O(1))."""
        found = self._queued_by_id.get(request_id)
        if found is not None:
            return found
        return self._pool_by_id.get(request_id)

    def fail(self) -> list[Request]:
        """Mark the machine as failed and surrender all in-flight work (§IV-E).

        Returns the incomplete requests that were queued, decoding, or mid-
        iteration on this machine so the cluster scheduler can restart them
        elsewhere.  A failed machine executes no further iterations.
        """
        self._rotation_interrupt()
        self._ff_interrupt()
        self.failed = True
        # Tombstone the in-flight iteration's finish event: the `failed`
        # guard alone is not enough once repair exists — a machine recovered
        # before the stale event fires would replay the dead iteration and
        # complete requests that already restarted elsewhere.
        if self._finish_event is not None:
            self.engine.cancel(self._finish_event)
            self._finish_event = None
        self._finish_plan = None
        affected: list[Request] = []
        affected.extend(self.pending_prompts)
        affected.extend(self._pool_by_id.values())
        if self._running_plan is not None:
            affected.extend(self._running_plan.prompt_requests)
            affected.extend(self._running_plan.token_requests)
        self.pending_prompts.clear()
        self._token_ready.clear()
        self.in_transfer.clear()
        self._in_transfer_tokens.clear()
        self._queued_by_id.clear()
        self._pool_by_id.clear()
        self._queued_prompt_tokens = 0
        self._running_prompt_tokens = 0
        self._pool_decode_tokens = 0
        self._expected_decode_tokens = 0
        self._kv_tokens = 0
        self._running_plan = None
        self._busy = False
        self._aging_pending = False
        self._admitted_during_iteration = 0
        self._withdrawn_ids.clear()
        seen: set[int] = set()
        unique: list[Request] = []
        for request in affected:
            if request.phase is not _COMPLETED and id(request) not in seen:
                seen.add(id(request))
                unique.append(request)
        return unique

    def recover(self) -> None:
        """Return a failed machine to service, empty (repair completed).

        ``fail`` already surrendered the machine's work, zeroed every queue,
        counter, and in-flight plan, and tombstoned the pending finish
        event, so nothing from before the failure can fire after the flag
        clears.  Recovery therefore only clears the flag; re-pooling is the
        cluster scheduler's job (:meth:`ClusterScheduler.recover_machine`).
        A straggler slowdown on the performance model deliberately survives
        the cycle — slow hardware stays slow across repairs.

        Raises:
            RuntimeError: if the machine has not failed.
        """
        if not self.failed:
            raise RuntimeError(f"machine {self.name} has not failed; nothing to recover")
        self.failed = False

    def set_performance_slowdown(self, factor: float) -> None:
        """Apply (or lift) a persistent straggler slowdown on this machine.

        Same contract as a power-cap change: any coalesced decode run is
        interrupted first, so the in-flight iteration keeps its committed
        latency and every later iteration sees the new factor — identical
        behaviour with fast-forward on or off.
        """
        if factor == self.performance.slowdown_factor:
            return
        self.interrupt_coalescing()
        self.performance.set_slowdown(factor)

    # -- queue metrics (used by JSQ routing) -------------------------------------------

    @property
    def is_busy(self) -> bool:
        """Whether an iteration is currently executing."""
        return self._busy

    @property
    def pending_prompt_tokens(self) -> int:
        """Prompt tokens queued or currently running (JSQ queue length)."""
        if self.debug_accounting:
            self.verify_accounting()
        return self._queued_prompt_tokens + self._running_prompt_tokens

    @property
    def pending_decode_tokens(self) -> int:
        """Output tokens still owed by requests assigned to this machine."""
        if self._ff_boundaries is not None:
            self._ff_sync()
        if self.debug_accounting:
            self.verify_accounting()
        return self._pool_decode_tokens + self._expected_decode_tokens

    @property
    def pending_prompt_count(self) -> int:
        """Number of requests waiting for their prompt phase."""
        return len(self.pending_prompts)

    @property
    def token_pool(self) -> list[Request]:
        """Decoding requests in admission order (materialized read-only view).

        Backed by the insertion-ordered ``_pool_by_id`` dict so the hot paths
        (completion removal, membership) are O(1); building the list here is
        for introspection, tests, and the failure path only.
        """
        return list(self._pool_by_id.values())

    @property
    def active_token_requests(self) -> int:
        """Number of requests currently decoding on this machine."""
        return len(self._pool_by_id)

    @property
    def kv_tokens_in_use(self) -> int:
        """KV-cache tokens currently resident on the machine."""
        if self._ff_boundaries is not None:
            self._ff_sync()
        if self.debug_accounting:
            self.verify_accounting()
        return self._kv_tokens

    @property
    def memory_headroom_fraction(self) -> float:
        """Fraction of the KV-cache budget still free.

        A machine with no configured memory model (``max_kv_tokens == 0``)
        reports full headroom rather than reading as "machine full".
        """
        budget = self.constraints.max_kv_tokens
        if not budget:
            return 1.0
        if self._ff_boundaries is not None:
            self._ff_sync()
        if self.debug_accounting:
            self.verify_accounting()
        headroom = 1.0 - self._kv_tokens / budget
        return headroom if headroom > 0.0 else 0.0

    def has_prompt_work(self) -> bool:
        """Whether any prompt work is queued or running."""
        running = bool(self._running_plan and self._running_plan.prompt_requests)
        return bool(self.pending_prompts) or running

    def has_token_work(self) -> bool:
        """Whether any token work is present or expected."""
        return bool(self._pool_by_id) or bool(self.in_transfer)

    def has_foreign_work(self) -> bool:
        """Whether the machine holds work of the opposite kind to its home role."""
        if self.home_role is MachineRole.PROMPT:
            return self.has_token_work()
        if self.home_role is MachineRole.TOKEN:
            return self.has_prompt_work()
        return False

    def verify_accounting(self) -> None:
        """Cross-check every incremental counter against a full recount.

        Raises:
            AccountingError: if any counter diverged (indicates a missed
                transition in the incremental accounting).
        """
        if self._ff_boundaries is not None:
            self._ff_sync()
        if self._rot_forest is not None:
            # The flat view is dormant while the rotation forest owns the
            # ordering; rebuild it (and the float boosts) for the cross-check,
            # splicing the in-flight selection's extraction back in.  Deferred
            # columnar state is settled so the recounts read exact values
            # (the rotation re-anchors the members on its next service).
            self._token_ready = PriorityOrderedView(self._rot_forest.flatten(self._rot_selection[0]))
            for request in self._token_ready:
                request._flush_service_indices()
        recounts = {
            "_queued_prompt_tokens": sum(r.prompt_tokens for r in self.pending_prompts),
            "_running_prompt_tokens": self._running_plan.prompt_tokens if self._running_plan else 0,
            "_pool_decode_tokens": sum(r.remaining_tokens for r in self._pool_by_id.values()),
            "_expected_decode_tokens": sum(self._in_transfer_tokens.values()),
            "_kv_tokens": sum(r.context_tokens for r in self._pool_by_id.values()),
        }
        for attribute, expected in recounts.items():
            actual = getattr(self, attribute)
            if actual != expected:
                raise AccountingError(
                    f"machine {self.name}: counter {attribute} is {actual}, full recount gives {expected}"
                )
        queued_ids = {r.request_id for r in self.pending_prompts}
        if queued_ids != set(self._queued_by_id):
            raise AccountingError(f"machine {self.name}: _queued_by_id out of sync with pending_prompts")
        pool_ids = {r.request_id for r in self._pool_by_id.values()}
        if pool_ids != set(self._pool_by_id):
            raise AccountingError(f"machine {self.name}: _pool_by_id out of sync with token_pool")
        ready_keys = [priority_key(r) for r in self._token_ready]
        if {r.request_id for r in self._token_ready} != pool_ids:
            raise AccountingError(f"machine {self.name}: _token_ready out of sync with token_pool")
        if ready_keys != sorted(ready_keys):
            raise AccountingError(f"machine {self.name}: _token_ready is not in priority order")

    # -- iteration loop -----------------------------------------------------------------

    def _kick(self) -> None:
        """Start an iteration if the machine is idle and none is already pending."""
        if not self._busy and not self._start_scheduled:
            self._start_scheduled = True
            self.engine.schedule_after(0.0, self._on_start_event, priority=START_EVENT_PRIORITY, tag=self._start_tag)

    def _on_start_event(self) -> None:
        self._start_scheduled = False
        self._start_iteration()

    def _start_iteration(self) -> None:
        if self._busy or self.failed:
            return
        # Oversubscribed steady state: more pool members than batch slots and
        # a prefix-selecting policy — the pool enters the aging rotation,
        # which the level forest steps in O(batch) per iteration instead of
        # O(pool).  Every iteration keeps its own event at the true boundary
        # (so cross-machine callbacks, prompt admissions, and pool restores
        # all run at exact per-iteration times); arrivals and admissions are
        # absorbed live, and only withdrawals, failures, or a binding KV
        # budget fall back to the exact policy path.
        if (
            self.fast_forward_enabled
            and not self._withdrawn_ids
            and len(self._pool_by_id) > self.constraints.max_batch_size
            and self.policy.prefix_token_selection
            and (not self.pending_prompts or self.policy.prefix_mixed_composition)
            and self._try_enter_rotation()
        ):
            return
        # The FCFS-sorted ready view makes the policy's priority ordering a
        # detected no-op whenever no request carries an aging boost.
        plan = self.policy.plan_iteration(
            self.pending_prompts, self._token_ready, self.constraints, self._kv_tokens
        )
        if plan.is_empty:
            return
        self._busy = True
        self._running_plan = plan
        self._pool_len_at_plan = len(self._pool_by_id)
        self._admitted_during_iteration = 0
        self._aging_pending = True

        prompt_tokens = plan.prompt_tokens
        token_requests = len(plan.token_requests)
        context_tokens = plan.context_tokens

        # Steady-state decode: no prompt work anywhere, the whole pool is in
        # the batch (so nothing can age), the per-iteration pool-restore hook
        # is a provable no-op for the whole run, and no mid-iteration
        # withdrawal is pending.  Every following iteration is then identical
        # but for its growing context, so the run can be coalesced into one
        # macro-event.  The pool-restore hook no-ops when the machine sits in
        # its home pool, and also when a prompt-home machine is borrowed by
        # the mixed pool: its token pool (non-empty for the whole run) *is*
        # the foreign work that keeps it borrowed.  A token-home machine in
        # the mixed pool must not coalesce — with no prompt work left it
        # would be restored home after the first iteration.
        if (
            token_requests
            and not plan.prompt_requests
            and not self.pending_prompts
            and self.fast_forward_enabled
            and token_requests == len(self._pool_by_id)
            and (self.role is self.home_role or self.home_role is MachineRole.PROMPT)
            and not self._withdrawn_ids
            and self._try_fast_forward(plan, token_requests)
        ):
            return

        # The policy popped the admitted prompts off pending_prompts; move
        # their tokens from the queued counter to the running counter.
        if prompt_tokens:
            self._queued_prompt_tokens -= prompt_tokens
            self._running_prompt_tokens = prompt_tokens
            queued_by_id = self._queued_by_id
            for request in plan.prompt_requests:
                queued_by_id.pop(request.request_id, None)

        if prompt_tokens:
            prompt_latency = self.performance.prompt_latency(prompt_tokens)
            prompt_latency *= self._transfer_interference(plan)
        else:
            prompt_latency = 0.0
        token_latency = (
            self.performance.token_latency(token_requests, context_tokens) if token_requests else 0.0
        )
        duration = prompt_latency + token_latency

        energy_wh = 0.0
        if prompt_tokens:
            energy_wh += self.power.prompt_energy_wh(prompt_tokens, prompt_latency)
        if token_requests:
            energy_wh += self.power.token_energy_wh(token_requests, token_latency)

        self.metrics.record_iteration(
            self.name,
            duration,
            plan.active_tokens,
            energy_wh,
            prompt_tokens,
            len(plan.prompt_requests) + token_requests,
        )

        now = self.engine.now
        for request in plan.prompt_requests:
            request.start_prompt(now, self.name)

        self._finish_plan = plan
        self._finish_prompt_latency = prompt_latency
        self._finish_event = self.engine.schedule_after(
            duration, self._on_finish_event, priority=FINISH_EVENT_PRIORITY, tag=self._finish_tag
        )

    def _on_finish_event(self) -> None:
        """Finish the single in-flight iteration (reused bound-method callback)."""
        plan = self._finish_plan
        if plan is None:  # pragma: no cover - defensive; _busy gates scheduling
            return
        self._finish_plan = None
        self._finish_event = None
        self._finish_iteration(plan, self._finish_prompt_latency)

    # -- decode fast-forwarding ---------------------------------------------------------

    def _try_fast_forward(self, plan: BatchPlan, token_requests: int) -> bool:
        """Launch a macro-event coalescing the next steady-state decode run.

        Returns False (leaving the caller on the per-iteration path) when the
        run would be too short to pay for itself.  The run length is the
        number of iterations until the earliest completion, additionally
        capped so the pooled KV context — which grows by one token per
        request per iteration — never crosses the budget that would force the
        batching policy to skip a member.
        """
        count = min(r.output_tokens - r.generated_tokens for r in plan.token_requests) - 1
        headroom_iterations = (self.constraints.kv_capacity - plan.context_tokens) // token_requests + 1
        if headroom_iterations < count:
            count = headroom_iterations
        if count < _MIN_COALESCED_ITERATIONS:
            return False

        durations = self.performance.token_latency_series(
            token_requests, plan.context_tokens, token_requests, count
        )
        if not isinstance(durations, array):
            durations = array("d", durations)
        energies = self.power.token_energy_series(token_requests, durations)
        # Boundary j is the end of coalesced iteration j, accumulated with the
        # same left-to-right float additions the event clock would perform.
        boundaries = array("d")
        append = boundaries.append
        time = self.engine.now
        for duration in durations:
            time += duration
            append(time)
        # The boundary series doubles as the run's shared timestamp block:
        # every pool member will reference slices of it instead of copying
        # the floats at commit time.
        self.token_log.note_run_block(boundaries)

        self._ff_plan = plan
        self._ff_durations = durations
        self._ff_energies = energies
        self._ff_boundaries = boundaries
        self._ff_count = count
        self._ff_done = 0
        self._ff_recorded = 0
        self._ff_event = self.engine.schedule_at(
            boundaries[-1], self._on_macro_event, priority=FINISH_EVENT_PRIORITY, tag=self._macro_tag
        )
        self.fast_forward_runs += 1
        # The first coalesced iteration starts now; record its metrics (the
        # per-iteration path records an iteration when it starts).
        self._ff_sync()
        return True

    def _ff_sync(self) -> None:
        """Commit every coalesced iteration the simulated clock has passed.

        Called before any observation of pool state (queue probes, accounting
        checks) and on every interrupt, so mid-run observers see exactly the
        state the per-iteration simulator would expose at the same timestamp:
        bookkeeping for iterations whose boundary has passed, metrics for
        iterations that have started.
        """
        boundaries = self._ff_boundaries
        if boundaries is None:
            return
        finished = bisect_right(boundaries, self.engine.now)
        done = self._ff_done
        if finished > done:
            self._ff_commit(done, finished)
            self._ff_done = finished
        started = finished + 1
        count = self._ff_count
        if started > count:
            started = count
        recorded = self._ff_recorded
        if started > recorded:
            plan = self._ff_plan
            n = len(plan.token_requests)
            self.metrics.record_coalesced(
                self.name,
                started - recorded,
                n,  # decode-only batch: active tokens == batched requests
                memoryview(self._ff_durations)[recorded:started],
                memoryview(self._ff_energies)[recorded:started],
                n,
            )
            self._ff_recorded = started

    def _ff_commit(self, start: int, stop: int) -> None:
        """Apply the bookkeeping of coalesced iterations ``[start, stop)``.

        Equivalent to running ``stop - start`` per-iteration finish loops: one
        token per pool member per iteration, timestamps at the precomputed
        boundaries, counters moved by exact integer totals.  No member can
        complete (the run stops one iteration short of the earliest
        completion) and nothing can age (the whole pool is in the batch), so
        the completion/aging arms of the per-iteration loop are provably dead
        here.

        Columnar recording makes the commit O(members): each member's tail
        segment grows to cover ``boundaries[start:stop)`` by reference —
        consecutive commits of one run extend the same segment — instead of
        copying ``stop - start`` floats per member.
        """
        plan = self._ff_plan
        count = stop - start
        boundaries = self._ff_boundaries
        for request in plan.token_requests:
            if request._tail_block is boundaries and request._tail_start + request._tail_count == start:
                request._tail_count += count
            else:
                # Settle any deferred rotation state before touching the
                # generated count, then open (or re-home) the tail.
                request._flush_service_indices()
                request._close_tail()
                request._tail_block = boundaries
                request._tail_start = start
                request._tail_count = count
            request.generated_tokens += count
            request.phase = _TOKEN_RUNNING
        generated = count * len(plan.token_requests)
        self._pool_decode_tokens -= generated
        self._kv_tokens += generated
        on_iteration_complete = self.on_iteration_complete
        if on_iteration_complete is not None:
            for _ in range(count):
                on_iteration_complete(self)

    def _ff_clear(self, fired: bool) -> None:
        """Tear down the fast-forward state, crediting coalesced event counts."""
        # Every committed iteration ran without its own queue entry, except
        # the one the macro-event itself finished (when it fired).
        self.engine.note_coalesced(self._ff_done - 1 if fired else self._ff_done)
        if not fired and self._ff_event is not None:
            self.engine.cancel(self._ff_event)
        self._ff_plan = None
        self._ff_boundaries = None
        self._ff_durations = None
        self._ff_energies = None
        self._ff_event = None
        self._ff_count = self._ff_done = self._ff_recorded = 0

    def _ff_interrupt(self) -> None:
        """Fall back to per-iteration stepping before a pool transition.

        Commits everything the clock has passed, tombstones the macro-event,
        and schedules a normal finish event at the in-flight iteration's
        boundary — the iteration that is mid-execution keeps its already-fixed
        batch, exactly as a real in-flight iteration would.
        """
        boundaries = self._ff_boundaries
        if boundaries is None:
            return
        self._ff_sync()
        in_flight = self._ff_done
        plan = self._ff_plan
        if in_flight >= self._ff_count:
            # The run is fully committed (the interrupter fired at the final
            # boundary, winning the tie against the macro-event): the machine
            # is idle; re-plan via a fresh kick once the caller's transition
            # lands.
            self._ff_clear(fired=False)
            self._busy = False
            self._running_plan = None
            self._aging_pending = False
            self._admitted_during_iteration = 0
            self._kick()
            return
        end_time = boundaries[in_flight]
        self._ff_clear(fired=False)
        self._finish_plan = plan
        self._finish_prompt_latency = 0.0
        self._finish_event = self.engine.schedule_at(
            end_time, self._on_finish_event, priority=FINISH_EVENT_PRIORITY, tag=self._finish_tag
        )

    def _on_macro_event(self) -> None:
        """Finish a completed steady-state run and re-plan."""
        if self.failed or self._ff_boundaries is None:  # pragma: no cover - defensive
            return
        self._ff_sync()  # now == final boundary: commits the whole run
        self._ff_clear(fired=True)
        self._busy = False
        self._running_plan = None
        self._aging_pending = False
        self._admitted_during_iteration = 0
        self._start_iteration()

    # -- oversubscribed-pool rotation ----------------------------------------------------

    def _try_enter_rotation(self) -> bool:
        """Switch the pool into forest-backed rotation stepping.

        Returns False — leaving the caller on the exact policy path — when
        the pool carries non-integer boosts (external writer) or the very
        first iteration can't be composed (a KV-budget skip would be needed).
        """
        forest = RotationForest.from_ordered_view(self._token_ready, track_runs=True)
        if forest is None:
            return False
        self._rot_forest = forest
        self._busy = True
        self._aging_pending = False
        self._admitted_during_iteration = 0
        if not self._rot_begin_iteration():
            self._rot_forest = None
            self._busy = False
            return False
        self.rotation_runs += 1
        return True

    def _rot_begin_iteration(self) -> bool:
        """Compose and start one rotation iteration at the current instant.

        Reproduces the per-iteration start path exactly — FCFS prompt
        admission, prefix token selection, the same latency/energy/metric
        calls — against the forest instead of the flat view.  The iteration
        is fixed here, one boundary ahead, so later arrivals cannot join it,
        just as a real in-flight plan is fixed at its start.  Returns False
        (without side effects) when composition needs the exact policy path.
        """
        constraints = self.constraints
        pending = self.pending_prompts
        prompt_count = 0
        prompt_tokens = 0
        if pending:
            if not self.policy.prefix_mixed_composition:
                return False
            # Non-destructive replica of FCFS prompt admission: count and sum
            # first, pop only once the iteration is definitely rotation-run.
            max_prompt_tokens = constraints.max_prompt_tokens
            slots = constraints.max_batch_size
            for request in pending:
                if prompt_count and prompt_tokens + request.prompt_tokens > max_prompt_tokens:
                    break
                prompt_count += 1
                prompt_tokens += request.prompt_tokens
                if prompt_count >= slots:
                    break
        selection = self._rot_forest.select(
            constraints.max_batch_size - prompt_count,
            constraints.kv_capacity - prompt_tokens if prompt_tokens <= constraints.kv_capacity else 0,
        )
        if selection is None:
            return False

        prompts: list[Request] = []
        if prompt_count:
            queued_by_id = self._queued_by_id
            popleft = pending.popleft
            for _ in range(prompt_count):
                request = popleft()
                prompts.append(request)
                queued_by_id.pop(request.request_id, None)
            self._queued_prompt_tokens -= prompt_tokens
            self._running_prompt_tokens = prompt_tokens
        token_requests = selection.count
        # The plan's token list is materialized lazily: the stepper services
        # the selection's segments directly, and every reader of a rotation
        # plan's ``token_requests`` (interrupts, failures) goes through
        # ``_rotation_interrupt``, which rebuilds the list from the
        # flattened view anyway.
        plan = BatchPlan(
            prompt_requests=prompts,
            token_requests=[],
            prompt_tokens=prompt_tokens,
            context_tokens=selection.context,
        )
        self._running_plan = plan

        if prompt_tokens:
            prompt_latency = self.performance.prompt_latency(prompt_tokens)
            prompt_latency *= self._transfer_interference(plan)
        else:
            prompt_latency = 0.0
        # The rotating batch's (count, context) key is transient (context
        # grows every iteration), so the memo table would only churn; the
        # uncached path computes the same value operation-for-operation
        # without touching it.
        token_latency = (
            self.performance.token_latency_uncached(token_requests, selection.context)
            if token_requests
            else 0.0
        )
        duration = prompt_latency + token_latency

        energy_wh = 0.0
        if prompt_tokens:
            energy_wh += self.power.prompt_energy_wh(prompt_tokens, prompt_latency)
        if token_requests:
            energy_wh += self.power.token_energy_wh(token_requests, token_latency)

        self._stats.add_iteration(
            duration, prompt_tokens + token_requests, energy_wh, prompt_tokens,
            prompt_count + token_requests,
        )

        if prompts:
            now = self.engine.now
            name = self.name
            for request in prompts:
                request.start_prompt(now, name)

        self._rot_selection = (selection, plan, prompt_latency)
        self._rot_event = self.engine.schedule_after(
            duration, self._on_rotation_step, priority=FINISH_EVENT_PRIORITY, tag=self._rot_tag
        )
        return True

    def _on_rotation_step(self) -> None:
        """Finish the in-flight rotation iteration and start the next."""
        forest = self._rot_forest
        if self.failed or forest is None:  # pragma: no cover - defensive; exits cancel the stepper
            return
        selection, plan, prompt_latency = self._rot_selection
        now = self.engine.now
        self._running_prompt_tokens = 0
        self._running_plan = None

        if plan.prompt_requests:
            on_prompt_complete = self.on_prompt_complete
            on_request_complete = self.on_request_complete
            for request in plan.prompt_requests:
                request.finish_prompt(now)
                if on_prompt_complete is not None:
                    on_prompt_complete(request, self, prompt_latency)
                if request.phase is _COMPLETED and on_request_complete is not None:
                    on_request_complete(request, self)

        offset = forest.offset
        pool_by_id = self._pool_by_id
        on_request_complete = self.on_request_complete
        serviced = 0
        kv_delta = 0
        completed_extracted_context = 0
        split_level = selection.split_level
        split_completed = False
        # Columnar recording with deferred member state: the boundary
        # timestamp is appended once to the machine's timeline block and
        # each serviced member appends the boundary's *position* to its
        # own packed index column — the steady-state loop is that one
        # C-level integer append.  ``generated_tokens``/``phase`` catch
        # up lazily (the true count is derivable from the column), and
        # completions are settled exactly at the boundaries where a
        # run's conservative min-remaining bound says the earliest
        # member can finish.
        timeline = self._timeline
        if selection.count:
            timeline.append(now)
            index = len(timeline) - 1
        split_bound = selection.split_bound
        for level, run, members in selection.segments:
            count = len(members)
            serviced += count
            if run is not None:
                # Every live member's effective context grew by one.
                run.context += count
            for request in members:
                if request._svc_block is timeline:
                    request._svc_indices.append(index)
                else:
                    # Mode/machine switch: seal the other open run first
                    # so segments stay chronological, then re-anchor the
                    # derived-count invariant.
                    request._flush_service_indices()
                    request._close_tail()
                    indices = request._svc_indices
                    if indices is None:
                        indices = request._svc_indices = array("q")
                    request._svc_block = timeline
                    request._svc_base = request.generated_tokens - len(indices)
                    indices.append(index)
            completed = None
            bound = (run.min_remaining if run is not None else split_bound) - 1
            if bound <= 0:
                # The earliest member may finish at this boundary: settle
                # completions exactly and re-derive the bound.  (Bounds
                # are conservative — chops inherit them — so the walk may
                # find nothing and simply tighten.)
                boost = float(
                    (level.stored if level is not None else split_level.stored) + offset
                )
                bound = _NO_COMPLETION_BOUND
                for request in members:
                    remaining = (
                        request.output_tokens
                        - request._svc_base
                        - len(request._svc_indices)
                    )
                    if remaining == 0:
                        request.generated_tokens = generated = request.output_tokens
                        request.phase = _COMPLETED
                        request.completion_time = now
                        request.priority_boost = boost
                        if completed is None:
                            completed = []
                        pre_context = request.prompt_tokens + generated - 1
                        completed.append((request, pre_context))
                        if level is None:
                            completed_extracted_context += pre_context
                            split_completed = True
                        else:
                            run.context -= pre_context + 1
                        del pool_by_id[request.request_id]
                        kv_delta -= request.prompt_tokens + generated
                        if on_request_complete is not None:
                            on_request_complete(request, self)
                    elif remaining < bound:
                        if remaining < 0:  # pragma: no cover - defensive
                            raise RuntimeError(
                                f"request {request.request_id} already complete"
                            )
                        bound = remaining
            if run is not None:
                run.min_remaining = bound
            else:
                split_bound = bound
            # Level-cache maintenance folded from note_serviced: every
            # serviced survivor's context grew by one; completers leave
            # their level entirely (split members are not levelled).
            if level is not None:
                survivors_here = count
                if completed is not None:
                    removed_context = 0
                    for _request, pre_context in completed:
                        removed_context += pre_context
                    level.size -= len(completed)
                    level.context -= removed_context
                    done = {id(_request) for _request, _ in completed}
                    run.members = [r for r in run.live() if id(r) not in done]
                    run.start = 0
                    survivors_here -= len(completed)
                level.context += survivors_here
        self._pool_decode_tokens -= serviced
        self._kv_tokens += serviced + kv_delta
        if split_level is not None:
            if split_completed:
                survivors = [r for r in selection.extracted if r.phase is not _COMPLETED]
            else:
                survivors = selection.extracted
            # Post-service context of the surviving extraction, without
            # re-walking it: pre-service total, minus completed members'
            # pre-service contexts, plus one generated token per survivor.
            survivors_context = selection.extracted_context - completed_extracted_context + len(survivors)
            survivors_bound = split_bound
        else:
            survivors = []
            survivors_context = 0
            survivors_bound = _NO_COMPLETION_BOUND
        forest.commit_aging(selection, survivors, survivors_context, survivors_bound)
        if self.on_iteration_complete is not None:
            self.on_iteration_complete(self)
        if len(pool_by_id) <= self.constraints.max_batch_size:
            # The pool now fits one batch: hand over to the full-pool
            # coalescing (or plain stepping) via a fresh planning pass.
            self._rotation_close()
            return
        if not self._rot_begin_iteration():
            self._rotation_close()

    def _rotation_close(self) -> None:
        """Exit rotation at an iteration boundary and re-plan normally."""
        self._materialize_rotation(None)
        self._busy = False
        self._start_iteration()

    def _materialize_rotation(self, inflight) -> None:
        """Flatten the forest back into the flat priority view (+ float boosts).

        Columnar members settle their deferred state on the way out: every
        consumer of the flat view (policies, fast-forward planning, restart
        withdrawals) reads ``generated_tokens`` directly.
        """
        forest = self._rot_forest
        self._rot_forest = None
        self._rot_selection = None
        self._rot_event = None
        flat = forest.flatten(inflight)
        for request in flat:
            request._flush_service_indices()
        self._token_ready = PriorityOrderedView(flat)

    def _rotation_interrupt(self) -> None:
        """Fall back to per-iteration stepping before a pool transition.

        The in-flight iteration keeps its already-fixed batch: its stepper
        event is replaced by a normal finish event at the same boundary (so
        completions, aging, and withdrawals take the standard code path), and
        the forest is flattened back into the flat view the standard path
        maintains.
        """
        if self._rot_forest is None:
            return
        selection, plan, prompt_latency = self._rot_selection
        boundary = self._rot_event.time
        self.engine.cancel(self._rot_event)
        self._materialize_rotation(selection)
        # The token selection is by construction the first `count` members of
        # the flat view; re-slicing the rebuilt view yields the same set in
        # exact view order, which the aging pass's subsequence walk relies on
        # (sibling-run segments may interleave within a level).
        plan.token_requests = list(self._token_ready[: selection.count])
        self._running_plan = plan
        self._finish_plan = plan
        self._finish_prompt_latency = prompt_latency
        self._pool_len_at_plan = len(self._pool_by_id)
        self._admitted_during_iteration = 0
        self._aging_pending = True
        self._finish_event = self.engine.schedule_at(
            boundary, self._on_finish_event, priority=FINISH_EVENT_PRIORITY, tag=self._finish_tag
        )

    def sync_fast_forward(self) -> None:
        """Materialize any coalesced-but-uncommitted iterations up to now.

        Cluster drivers call this after a horizon-limited run so that partial
        results match what per-iteration stepping would have produced by the
        same simulated time.  Rotation bookkeeping is always current at the
        clock, but its float boosts and flat view are materialized here for
        post-run readers.  A no-op when nothing is coalesced.
        """
        self._ff_sync()
        # A rotation in flight at a horizon stop is converted to a pending
        # per-iteration finish — exactly the state per-iteration stepping
        # leaves behind when the clock stops mid-iteration.
        self._rotation_interrupt()

    def interrupt_coalescing(self) -> None:
        """Fall back to exact per-iteration stepping before an external transition.

        Cluster components that change scheduling-relevant machine state from
        outside the queue transitions (e.g. the autoscaler re-targeting a
        machine's home pool) must call this first: the in-flight coalesced
        run's no-op guarantees were proven under the *old* state, so the
        remaining run is converted back to per-iteration stepping at the
        in-flight iteration's boundary.  A no-op when nothing is coalesced.
        """
        self._rotation_interrupt()
        self._ff_interrupt()

    def notify_power_cap_change(self) -> None:
        """Invalidate memoized latency/energy tables after a power-cap change.

        Interrupts any in-flight macro-event first: its precomputed series
        reflect the old cap, and only iterations that already started may
        keep it (the in-flight iteration completes under the latency it was
        launched with, exactly like the per-iteration simulator).
        """
        self._ff_interrupt()
        self.performance.invalidate_caches()
        self.power.invalidate_caches()

    def _age_skipped(self, plan: BatchPlan) -> None:
        """Boost every pool member left out of ``plan`` and restore ready order.

        Selection preserves ready-view order, so the plan's token requests are
        a subsequence of the view: a two-pointer walk splits the pool into the
        kept (selected, keys unchanged) and boosted (skipped, keys uniformly
        shifted) runs without any hashing.  Both runs remain internally
        ordered, so the order is restored by an O(1) concatenation check or,
        failing that, a two-run merge (which Timsort performs in O(n)
        comparisons).
        """
        ready = self._token_ready
        selected = plan.token_requests
        kept: list[Request] = []
        boosted: list[Request] = []
        if self._withdrawn_ids:
            # Rare path: mid-iteration withdrawals broke the subsequence
            # property; fall back to set membership.
            selected_ids = {id(r) for r in selected}
            for request in ready:
                if id(request) in selected_ids:
                    kept.append(request)
                else:
                    request.priority_boost += 1.0
                    boosted.append(request)
        else:
            index = 0
            count = len(selected)
            for request in ready:
                # Completed plan members were already removed from the view.
                while index < count and selected[index].phase is _COMPLETED:
                    index += 1
                if index < count and request is selected[index]:
                    kept.append(request)
                    index += 1
                else:
                    request.priority_boost += 1.0
                    boosted.append(request)
        if not kept or not boosted:
            return  # a uniformly shifted (or untouched) pool keeps its order
        if priority_key(kept[-1]) <= priority_key(boosted[0]):
            merged = PriorityOrderedView(kept)
            merged.extend(boosted)
        elif priority_key(boosted[-1]) <= priority_key(kept[0]):
            merged = PriorityOrderedView(boosted)
            merged.extend(kept)
        else:
            merged = PriorityOrderedView(boosted)
            merged.extend(kept)
            merged.sort(key=priority_key)
        self._token_ready = merged

    def _transfer_interference(self, plan: BatchPlan) -> float:
        """Prompt slowdown from overlapped KV-cache transfers (Splitwise prompt machines)."""
        if self.kv_transfer is None or not plan.prompt_requests:
            return 1.0
        factors = [
            self.kv_transfer.prompt_interference_factor(self.kv_transfer.choose_mode(r.prompt_tokens))
            for r in plan.prompt_requests
        ]
        return max(factors)

    def _finish_iteration(self, plan: BatchPlan, prompt_latency: float) -> None:
        if self.failed:
            # The machine died mid-iteration; its results are lost.
            return
        now = self.engine.now
        self._busy = False
        self._running_plan = None
        self._running_prompt_tokens = 0

        on_prompt_complete = self.on_prompt_complete
        on_request_complete = self.on_request_complete
        # A request withdrawn mid-iteration (failure restart, deadline
        # cancellation) was reset or expired; mutating it here would corrupt
        # the restarted/cancelled state, so its plan slot is skipped
        # outright.  Keyed on the withdrawn-id set rather than pool
        # membership: the restarted request may already have been
        # re-admitted to this very machine, putting its id back in the pool.
        withdrawn = self._withdrawn_ids
        for request in plan.prompt_requests:
            if withdrawn and request.request_id in withdrawn:
                continue
            request.finish_prompt(now)
            if on_prompt_complete is not None:
                on_prompt_complete(request, self, prompt_latency)
            if request.phase is _COMPLETED and on_request_complete is not None:
                on_request_complete(request, self)

        pool_by_id = self._pool_by_id
        generated_count = 0
        kv_delta = 0
        token_requests = plan.token_requests
        if token_requests:
            # Columnar recording: the boundary timestamp is appended once to
            # the machine's timeline block; each serviced request extends (or
            # opens) a tail segment referencing it — consecutive services on
            # this machine coalesce into one segment.
            timeline = self._timeline
            # Appended lazily on the first recorded member: a plan whose
            # token requests were all withdrawn mid-iteration must not leave
            # an orphan boundary in the timeline block.
            index = -1
            for request in token_requests:
                if withdrawn and request.request_id in withdrawn:
                    continue
                if request.phase is _COMPLETED:
                    raise RuntimeError(f"request {request.request_id} already complete")
                if index < 0:
                    timeline.append(now)
                    index = len(timeline) - 1
                if request._tail_block is timeline and request._tail_start + request._tail_count == index:
                    request._tail_count += 1
                else:
                    # Settle any deferred rotation state before reading the
                    # generated count, then open a fresh tail.
                    request._flush_service_indices()
                    request._close_tail()
                    request._tail_block = timeline
                    request._tail_start = index
                    request._tail_count = 1
                generated = request.generated_tokens + 1
                request.generated_tokens = generated
                generated_count += 1
                if generated < request.output_tokens:
                    request.phase = _TOKEN_RUNNING
                else:
                    request.phase = _COMPLETED
                    request.completion_time = now
                    del pool_by_id[request.request_id]
                    self._remove_ready(request)
                    kv_delta -= request.prompt_tokens + generated
                    if on_request_complete is not None:
                        on_request_complete(request, self)
        if generated_count:
            self._pool_decode_tokens -= generated_count
            self._kv_tokens += generated_count + kv_delta

        # Aging: requests left out of this iteration gain priority so that
        # preemption (on mixed machines) cannot starve them (§IV-B).  The
        # skipped count is derived O(1) from the pool size at planning time;
        # in the common fully-batched case there is nothing to age.
        skipped = self._pool_len_at_plan - len(plan.token_requests) + self._admitted_during_iteration
        if skipped:
            self._age_skipped(plan)
        self._aging_pending = False
        self._admitted_during_iteration = 0
        if self._withdrawn_ids:
            self._withdrawn_ids.clear()

        if self.on_iteration_complete is not None:
            self.on_iteration_complete(self)

        self._start_iteration()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedMachine(name={self.name!r}, spec={self.spec.name!r}, role={self.role.value!r}, "
            f"prompts={len(self.pending_prompts)}, tokens={len(self._pool_by_id)})"
        )
