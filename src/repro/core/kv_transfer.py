"""KV-cache transfer between prompt and token machines (§IV-C of the paper).

After the prompt machine finishes the prefill it must ship the request's
KV-cache to the token machine.  Two transfer schemes are modeled (Fig. 11):

* **Serialized** — the whole KV-cache is sent after the prompt phase ends.
  The visible latency grows linearly with the prompt size and delays the
  second output token.
* **Per-layer (overlapped)** — each layer's KV-cache is sent asynchronously
  as soon as that layer's prefill completes, overlapping transfer with the
  remaining prompt computation.  Only the last layer's chunk plus a small
  fine-grained synchronization residue remains visible, at the cost of a
  small interference slowdown of the prompt computation itself.

Splitwise picks the scheme per request: serialized for small prompts (the
cache is tiny and per-layer synchronization is not worth its interference)
and per-layer for large prompts (Fig. 14).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.interconnect import InterconnectSpec
from repro.models.llm import ModelSpec

#: Prompt sizes below this use the serialized transfer (the paper uses ~512
#: tokens on the H100 setup).
DEFAULT_SERIALIZED_THRESHOLD_TOKENS = 512

#: Fractional slowdown of the prompt computation caused by per-layer
#: synchronization and link contention (the paper reports <7% total overhead,
#: mostly hidden; the residual interference on TTFT is small).
DEFAULT_PER_LAYER_INTERFERENCE = 0.025


class TransferMode(enum.Enum):
    """Which KV-cache transfer scheme a request uses."""

    SERIALIZED = "serialized"
    PER_LAYER = "per_layer"


@dataclass(frozen=True)
class KVTransferModel:
    """Latency model for KV-cache transfers over one interconnect.

    Attributes:
        model: The LLM whose KV-cache is transferred.
        link: The interconnect between the prompt and token machine.
        serialized_threshold_tokens: Prompt size below which the serialized
            scheme is chosen.
        per_layer_interference: Fractional prompt-computation slowdown while
            a per-layer transfer is in flight.
        compression_ratio: Factor by which the KV-cache is compressed before
            it crosses the network (1.0 = no compression).  §VII of the paper
            suggests compression as a way to run Splitwise over slower
            interconnects; only the wire size shrinks, the resident KV-cache
            on the token machine is unchanged.
        degradation_factor: Multiplier on the *visible* transfer latency
            (1.0 = healthy link).  The fault plane uses this to model
            interconnect brown-outs: congestion or partial link failure makes
            every transfer scheduled during the window proportionally slower
            without changing mode selection or the prompt-side interference.
    """

    model: ModelSpec
    link: InterconnectSpec
    serialized_threshold_tokens: int = DEFAULT_SERIALIZED_THRESHOLD_TOKENS
    per_layer_interference: float = DEFAULT_PER_LAYER_INTERFERENCE
    compression_ratio: float = 1.0
    degradation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.serialized_threshold_tokens < 0:
            raise ValueError(
                f"serialized_threshold_tokens must be non-negative, got {self.serialized_threshold_tokens}"
            )
        if self.per_layer_interference < 0:
            raise ValueError(
                f"per_layer_interference must be non-negative, got {self.per_layer_interference}"
            )
        if self.compression_ratio < 1.0:
            raise ValueError(f"compression_ratio must be >= 1.0, got {self.compression_ratio}")
        if self.degradation_factor < 1.0:
            raise ValueError(f"degradation_factor must be >= 1.0, got {self.degradation_factor}")

    # -- sizes -------------------------------------------------------------------

    def kv_bytes(self, prompt_tokens: int) -> float:
        """Bytes of KV-cache sent over the wire for ``prompt_tokens`` tokens."""
        if prompt_tokens < 0:
            raise ValueError(f"prompt_tokens must be non-negative, got {prompt_tokens}")
        return self.model.kv_cache_bytes(prompt_tokens) / self.compression_ratio

    def per_layer_bytes(self, prompt_tokens: int) -> float:
        """Bytes of KV-cache produced per layer for the given prompt."""
        return self.kv_bytes(prompt_tokens) / self.model.num_layers

    # -- mode selection ------------------------------------------------------------

    def choose_mode(self, prompt_tokens: int) -> TransferMode:
        """Pick the transfer scheme Splitwise would use for this prompt size."""
        if prompt_tokens < self.serialized_threshold_tokens:
            return TransferMode.SERIALIZED
        return TransferMode.PER_LAYER

    # -- latency ---------------------------------------------------------------------

    def serialized_latency(self, prompt_tokens: int) -> float:
        """Visible transfer latency (seconds) for the serialized scheme.

        The whole cache moves after the prompt phase; every byte is on the
        critical path of the second output token.
        """
        return self.link.transfer_time(self.kv_bytes(prompt_tokens))

    def per_layer_latency(self, prompt_tokens: int, prompt_latency_s: float) -> float:
        """Visible transfer latency (seconds) for the per-layer scheme.

        Transfers of all but the last layer overlap with the remaining prompt
        computation.  What remains visible is the last layer's chunk, the
        fine-grained synchronization residue, and — if the link is too slow to
        keep up with prefill — the part of the total transfer that could not
        be hidden behind the prompt computation window.
        """
        if prompt_latency_s < 0:
            raise ValueError(f"prompt_latency_s must be non-negative, got {prompt_latency_s}")
        total = self.serialized_latency(prompt_tokens)
        last_layer = self.link.transfer_time(self.per_layer_bytes(prompt_tokens))
        sync_residue = self._sync_residue()
        unhidden = max(0.0, total - prompt_latency_s)
        return max(last_layer + sync_residue, unhidden)

    def _sync_residue(self) -> float:
        """Constant non-overlapped residue of the per-layer scheme (seconds).

        Calibrated to the paper's Fig. 14: roughly 8 ms on the 200 Gbps A100
        setup and 5 ms on the 400 Gbps H100 setup.
        """
        return 0.002 + 1.2 / self.link.bandwidth_gbps

    def visible_latency(
        self, prompt_tokens: int, prompt_latency_s: float, mode: TransferMode | None = None
    ) -> float:
        """Visible (non-overlapped) transfer latency for the chosen scheme."""
        chosen = mode or self.choose_mode(prompt_tokens)
        if chosen is TransferMode.SERIALIZED:
            latency = self.serialized_latency(prompt_tokens)
        else:
            latency = self.per_layer_latency(prompt_tokens, prompt_latency_s)
        if self.degradation_factor != 1.0:
            latency *= self.degradation_factor
        return latency

    def prompt_interference_factor(self, mode: TransferMode) -> float:
        """Multiplier applied to the prompt latency while transferring.

        Per-layer transfers synchronize with every layer of the prefill and
        slightly slow it down; serialized transfers do not touch the prompt
        computation.
        """
        if mode is TransferMode.PER_LAYER:
            return 1.0 + self.per_layer_interference
        return 1.0
