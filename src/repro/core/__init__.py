"""The Splitwise technique: phase-split scheduling, transfers, and designs.

This package contains the paper's primary contribution:

* :mod:`repro.core.kv_transfer` — serialized and per-layer-overlapped
  KV-cache transfer models (§IV-C, Figs. 11/14/15).
* :mod:`repro.core.machine` — the simulated DGX machine with its
  machine-level scheduler (MLS): pending queues, batching, preemption (§IV-B).
* :mod:`repro.core.cluster_scheduler` — the cluster-level scheduler (CLS):
  JSQ routing and prompt/token/mixed pool management (§IV-A).
* :mod:`repro.core.autoscaler` — the dynamic pool autoscaler: recurring
  load-signal ticks that re-purpose machines between pools (with hysteresis
  and drain-before-switch) and park idle machines under time-varying traffic.
* :mod:`repro.core.cluster` — the end-to-end cluster simulation wiring
  machines, scheduler, transfers, and metrics together.
* :mod:`repro.core.designs` — Baseline-A100/H100 and the four Splitwise
  cluster designs (Table V).
* :mod:`repro.core.provisioning` — the design-space search used to size
  clusters for iso-power / iso-cost / iso-throughput targets (§IV-D, Fig. 12).
"""

from repro.core.autoscaler import AutoscalerConfig, PoolAutoscaler, RepurposeEvent
from repro.core.cluster import ClusterSimulation, SimulationResult, simulate_design
from repro.core.cluster_scheduler import ClusterScheduler, MachinePool
from repro.core.designs import (
    ClusterDesign,
    baseline_a100,
    baseline_h100,
    get_design_family,
    splitwise_aa,
    splitwise_ha,
    splitwise_hh,
    splitwise_hhcap,
)
from repro.core.kv_transfer import KVTransferModel, TransferMode
from repro.core.machine import MachineRole, SimulatedMachine
from repro.core.provisioning import (
    OptimizationGoal,
    ProvisioningConstraints,
    ProvisioningResult,
    Provisioner,
    find_max_throughput,
)

__all__ = [
    "PoolAutoscaler",
    "AutoscalerConfig",
    "RepurposeEvent",
    "KVTransferModel",
    "TransferMode",
    "SimulatedMachine",
    "MachineRole",
    "ClusterScheduler",
    "MachinePool",
    "ClusterSimulation",
    "SimulationResult",
    "simulate_design",
    "ClusterDesign",
    "baseline_a100",
    "baseline_h100",
    "splitwise_aa",
    "splitwise_hh",
    "splitwise_ha",
    "splitwise_hhcap",
    "get_design_family",
    "Provisioner",
    "ProvisioningConstraints",
    "ProvisioningResult",
    "OptimizationGoal",
    "find_max_throughput",
]
