"""The cluster-level scheduler (CLS) — §IV-A of the paper.

The CLS owns machine-pool management and request routing:

* **Pools.**  Machines are assigned a home pool (prompt or token).  Under
  pressure a machine is temporarily pulled into the *mixed pool*, where it
  also accepts work of the opposite kind (batched with mixed continuous
  batching); it returns to its home pool once the foreign work drains.
* **Routing.**  Each arriving request is simultaneously assigned a prompt
  machine and a token machine using Join-the-Shortest-Queue, where queue
  length is measured in pending tokens.  Assigning both up front lets the
  KV-cache transfer overlap with the prompt computation.
* **Overflow.**  If every machine of the needed kind is beyond its queue
  threshold, the CLS looks in the mixed pool, and failing that pulls a
  machine from the opposite pool into the mixed pool.

For non-split (baseline) clusters the same scheduler routes each request to a
single machine (JSQ over total pending tokens) and no KV transfer happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.kv_transfer import KVTransferModel
from repro.core.machine import MachineRole, SimulatedMachine
from repro.hardware.interconnect import infiniband_for
from repro.models.llm import ModelSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event
from repro.simulation.request import Request, RequestPhase

#: A prompt pool machine whose queue exceeds this many pending prompt tokens
#: is considered overloaded, triggering mixed-pool overflow.
DEFAULT_PROMPT_QUEUE_THRESHOLD_TOKENS = 4096

#: A token pool machine whose pending decode work exceeds this many tokens is
#: considered overloaded, triggering mixed-pool overflow.
DEFAULT_DECODE_QUEUE_THRESHOLD_TOKENS = 16384

#: Minimum KV-cache headroom a token machine must have before accepting more
#: work without being considered overloaded.
DEFAULT_MEMORY_HEADROOM_FRACTION = 0.05


# Precomputed JSQ probe key functions.  Routing probes run for every arrival
# — under burst load that is tens of thousands of calls — and the previous
# inline lambdas allocated a fresh closure per routed request, which showed
# up in the top-20 profile.  Module-level functions are created once and
# shared by the scheduler, the autoscaler, and the fleet router.


def prompt_queue_load(machine: SimulatedMachine) -> int:
    """Pending prompt tokens (JSQ key for prompt routing).

    Open-coded mirror of ``SimulatedMachine.pending_prompt_tokens`` — the
    probe runs per machine per arrival, and skipping the property layer
    measurably trims the routing hot path.
    """
    if machine.debug_accounting:
        machine.verify_accounting()
    return machine._queued_prompt_tokens + machine._running_prompt_tokens


def decode_queue_load(machine: SimulatedMachine) -> int:
    """Pending decode tokens (JSQ key for token routing).

    Open-coded mirror of ``SimulatedMachine.pending_decode_tokens``
    (including the fast-forward sync that keeps lazily committed macro-events
    observable), one call layer shallower.
    """
    if machine._ff_boundaries is not None:
        machine._ff_sync()
    if machine.debug_accounting:
        machine.verify_accounting()
    return machine._pool_decode_tokens + machine._expected_decode_tokens


def total_queue_load(machine: SimulatedMachine) -> int:
    """Total pending tokens (JSQ key for unsplit routing and donor picks)."""
    return prompt_queue_load(machine) + decode_queue_load(machine)


@dataclass
class MachinePool:
    """A named collection of machines with JSQ selection helpers.

    Membership is mirrored in a set so ``in`` checks and duplicate-free adds
    are O(1) instead of scanning the member list; the list is kept for
    deterministic iteration order.  ``version`` increments on every
    membership change so callers can cache views derived from the pool.

    Attributes:
        name: Pool name (``"prompt"``, ``"token"``, or ``"mixed"``).
        machines: Member machines (insertion-ordered).
    """

    name: str
    machines: list[SimulatedMachine] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._members: set[SimulatedMachine] = set(self.machines)
        self.version = 0

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    def __contains__(self, machine: SimulatedMachine) -> bool:
        return machine in self._members

    def add(self, machine: SimulatedMachine) -> None:
        """Add a machine if not already a member (O(1) membership check)."""
        if machine not in self._members:
            self._members.add(machine)
            self.machines.append(machine)
            self.version += 1

    def remove(self, machine: SimulatedMachine) -> None:
        """Remove a machine if present (O(1) membership check)."""
        if machine in self._members:
            self._members.discard(machine)
            self.machines.remove(machine)
            self.version += 1

    def least_loaded(self, load: Callable[[SimulatedMachine], float]) -> SimulatedMachine | None:
        """The member machine minimizing ``load`` (ties broken by name).

        Open-coded rather than ``min(..., key=...)``: JSQ probes run this for
        every routed request, and skipping the per-machine key-tuple
        allocation measurably trims the routing hot path.  The two standard
        probes dispatch to fully inlined loops (no per-machine call at all).
        """
        if load is prompt_queue_load:
            return self.least_prompt_loaded()
        if load is decode_queue_load:
            return self.least_decode_loaded()
        best: SimulatedMachine | None = None
        best_load: float | None = None
        for machine in self.machines:
            machine_load = load(machine)
            if (
                best_load is None
                or machine_load < best_load
                or (machine_load == best_load and machine.name < best.name)
            ):
                best = machine
                best_load = machine_load
        return best

    def least_prompt_loaded(self) -> SimulatedMachine | None:
        """:meth:`least_loaded` with :func:`prompt_queue_load` fully inlined."""
        best: SimulatedMachine | None = None
        best_load: int | None = None
        for machine in self.machines:
            if machine.debug_accounting:
                machine.verify_accounting()
            machine_load = machine._queued_prompt_tokens + machine._running_prompt_tokens
            if (
                best_load is None
                or machine_load < best_load
                or (machine_load == best_load and machine.name < best.name)
            ):
                best = machine
                best_load = machine_load
        return best

    def least_decode_loaded(self) -> SimulatedMachine | None:
        """:meth:`least_loaded` with :func:`decode_queue_load` fully inlined."""
        best: SimulatedMachine | None = None
        best_load: int | None = None
        for machine in self.machines:
            if machine._ff_boundaries is not None:
                machine._ff_sync()
            if machine.debug_accounting:
                machine.verify_accounting()
            machine_load = machine._pool_decode_tokens + machine._expected_decode_tokens
            if (
                best_load is None
                or machine_load < best_load
                or (machine_load == best_load and machine.name < best.name)
            ):
                best = machine
                best_load = machine_load
        return best


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one request.

    Attributes:
        prompt_machine: Machine that will run the prompt phase.
        token_machine: Machine that will run the token phase (same machine
            for non-split clusters).
    """

    prompt_machine: SimulatedMachine
    token_machine: SimulatedMachine


class ClusterScheduler:
    """Cluster-level scheduler for split or baseline clusters.

    Args:
        engine: The simulation engine.
        machines: All machines in the cluster.
        model: The LLM being served (used to size KV-cache transfers).
        split: ``True`` for Splitwise clusters (separate prompt/token pools),
            ``False`` for baseline clusters (every machine runs both phases).
        prompt_queue_threshold: Pending prompt tokens beyond which a prompt
            machine is considered overloaded.
        decode_queue_threshold: Pending decode tokens beyond which a token
            machine is considered overloaded.
        memory_headroom_fraction: Minimum free KV-cache fraction for a token
            machine to be considered healthy.
        routing: Request routing policy — ``"jsq"`` (the paper's
            Join-the-Shortest-Queue, default), ``"round-robin"``, or
            ``"random"``.  The alternatives exist for ablation studies.
        routing_seed: Seed for the ``"random"`` routing policy.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        machines: Sequence[SimulatedMachine],
        model: ModelSpec,
        split: bool = True,
        prompt_queue_threshold: int = DEFAULT_PROMPT_QUEUE_THRESHOLD_TOKENS,
        decode_queue_threshold: int = DEFAULT_DECODE_QUEUE_THRESHOLD_TOKENS,
        memory_headroom_fraction: float = DEFAULT_MEMORY_HEADROOM_FRACTION,
        routing: str = "jsq",
        routing_seed: int = 0,
    ) -> None:
        if routing not in ("jsq", "round-robin", "random"):
            raise ValueError(f"routing must be 'jsq', 'round-robin' or 'random', got {routing!r}")
        self.engine = engine
        self.model = model
        self.split = split
        self.prompt_queue_threshold = prompt_queue_threshold
        self.decode_queue_threshold = decode_queue_threshold
        self.memory_headroom_fraction = memory_headroom_fraction
        self.routing = routing
        self._routing_rng = random.Random(routing_seed)
        if engine.sanitizer is not None:
            # Routing randomness is drawn in event order, inside callbacks.
            engine.sanitizer.register_stream("routing", run_phase=True)
        self._round_robin_counters: dict[str, int] = {"prompt": 0, "token": 0, "mixed": 0}

        self.prompt_pool = MachinePool("prompt")
        self.token_pool = MachinePool("token")
        self.mixed_pool = MachinePool("mixed")
        #: Machines withdrawn from routing by the autoscaler (still owned by
        #: the scheduler: they appear in ``machines`` and can fail, but the
        #: router never selects from here).
        self.parked_pool = MachinePool("parked")
        #: request_id -> RoutingDecision; the index that lets withdrawal and
        #: outstanding-request lookup go straight to the two relevant machines
        #: instead of scanning every queue in the cluster.
        self._assignments: dict[int, RoutingDecision] = {}
        self._transfer_events: dict[int, Event] = {}
        #: request_id -> Request for every KV-cache transfer in flight.  The
        #: transfer window is the one lifecycle stretch where a request sits
        #: in no machine queue, so evacuation needs its own registry to find
        #: (and restart) these requests.
        self._transfer_requests: dict[int, Request] = {}
        self._machines_cache: list[SimulatedMachine] | None = None
        self._machines_cache_versions: tuple[int, int, int, int] = (-1, -1, -1, -1)
        self._transfer_models: dict[tuple[str, str], KVTransferModel] = {}
        #: Visible-latency multiplier applied to newly scheduled KV transfers
        #: (fault plane; 1.0 = healthy interconnect).
        self._kv_degradation = 1.0
        self.completed_requests: list[Request] = []
        self.restarted_requests: list[Request] = []
        self.failed_machines: list[SimulatedMachine] = []
        self.pool_switches = 0
        #: Invoked after a machine fails and leaves every pool (set by the
        #: autoscaler so its park-interval accounting can observe failures).
        self.on_machine_failed: Callable[[SimulatedMachine], None] | None = None
        #: Invoked after a failed machine recovers and rejoins its home pool.
        self.on_machine_recovered: Callable[[SimulatedMachine], None] | None = None
        #: Invoked after a request completes on this cluster (set by the
        #: fleet router so its outstanding counts and rolling latency windows
        #: track cluster health without scanning queues).
        self.on_request_complete: Callable[[Request], None] | None = None
        #: When set (fleet request-lifecycle layer), failed requests are reset
        #: and handed to this callable instead of being resubmitted locally —
        #: the lifecycle layer decides whether (and where) to retry them.
        self.restart_handler: Callable[[Request], None] | None = None

        for machine in machines:
            machine.on_prompt_complete = self._handle_prompt_complete
            machine.on_request_complete = self._handle_request_complete
            machine.on_iteration_complete = self._handle_iteration_complete
            if not split or machine.home_role is MachineRole.MIXED:
                self.mixed_pool.add(machine)
            elif machine.home_role is MachineRole.PROMPT:
                self.prompt_pool.add(machine)
            elif machine.home_role is MachineRole.TOKEN:
                self.token_pool.add(machine)

    # -- public API -----------------------------------------------------------------

    @property
    def machines(self) -> list[SimulatedMachine]:
        """All machines managed by this scheduler.

        The view is cached and invalidated by pool-version counters, so
        repeated reads between pool changes are O(1).  Treat the returned
        list as read-only.
        """
        versions = (
            self.prompt_pool.version,
            self.token_pool.version,
            self.mixed_pool.version,
            self.parked_pool.version,
        )
        if self._machines_cache is None or self._machines_cache_versions != versions:
            self._machines_cache = (
                list(self.prompt_pool)
                + list(self.token_pool)
                + list(self.mixed_pool)
                + list(self.parked_pool)
            )
            self._machines_cache_versions = versions
        return self._machines_cache

    def submit(self, request: Request) -> RoutingDecision:
        """Route a newly arrived request and enqueue its prompt phase."""
        if self.split:
            decision = self._route_split(request)
        else:
            decision = self._route_unsplit(request)
        self._assignments[request.request_id] = decision
        if decision.token_machine is not decision.prompt_machine and request.output_tokens > 1:
            decision.token_machine.expect_transfer(request)
        decision.prompt_machine.enqueue_prompt(request)
        return decision

    # -- routing ---------------------------------------------------------------------

    def _route_unsplit(self, request: Request) -> RoutingDecision:
        del request
        machine = self._pick("mixed", self.mixed_pool, total_queue_load)
        if machine is None:
            raise RuntimeError("baseline cluster has no machines")
        return RoutingDecision(prompt_machine=machine, token_machine=machine)

    def _pick(
        self, pool_name: str, pool: MachinePool, load: Callable[[SimulatedMachine], float]
    ) -> SimulatedMachine | None:
        """Select a machine from a pool according to the routing policy."""
        if len(pool) == 0:
            return None
        if self.routing == "jsq":
            return pool.least_loaded(load)
        if self.routing == "random":
            sanitizer = self.engine.sanitizer
            if sanitizer is not None:
                sanitizer.note_draw("routing")
            return self._routing_rng.choice(pool.machines)
        index = self._round_robin_counters[pool_name] % len(pool)
        self._round_robin_counters[pool_name] += 1
        return pool.machines[index]

    def _route_split(self, request: Request) -> RoutingDecision:
        del request
        prompt_machine = self._select_prompt_machine()
        token_machine = self._select_token_machine()
        return RoutingDecision(prompt_machine=prompt_machine, token_machine=token_machine)

    def _select_prompt_machine(self) -> SimulatedMachine:
        best = self._pick("prompt", self.prompt_pool, prompt_queue_load)
        if best is not None and best.pending_prompt_tokens <= self.prompt_queue_threshold:
            return best
        # Prompt pool is overloaded: look for help in the mixed pool, then pull
        # a token-home machine into the mixed pool.
        mixed = self._least_loaded_mixed(prompt_queue_load)
        if mixed is not None and mixed.pending_prompt_tokens <= self.prompt_queue_threshold:
            return mixed
        donor = self.token_pool.least_loaded(total_queue_load)
        if donor is not None:
            self._move_to_mixed(donor)
            return donor
        if best is not None:
            return best
        if mixed is not None:
            return mixed
        raise RuntimeError("cluster has no machine able to run a prompt phase")

    def _select_token_machine(self) -> SimulatedMachine:
        best = self._pick("token", self.token_pool, decode_queue_load)
        if best is not None and self._token_machine_healthy(best):
            return best
        mixed = self._least_loaded_mixed(decode_queue_load)
        if mixed is not None and self._token_machine_healthy(mixed):
            return mixed
        donor = self.prompt_pool.least_loaded(total_queue_load)
        if donor is not None:
            self._move_to_mixed(donor)
            return donor
        if best is not None:
            return best
        if mixed is not None:
            return mixed
        raise RuntimeError("cluster has no machine able to run a token phase")

    def _token_machine_healthy(self, machine: SimulatedMachine) -> bool:
        return (
            machine.pending_decode_tokens <= self.decode_queue_threshold
            and machine.memory_headroom_fraction > self.memory_headroom_fraction
        )

    def _least_loaded_mixed(self, load: Callable[[SimulatedMachine], float]) -> SimulatedMachine | None:
        if len(self.mixed_pool) == 0:
            return None
        return self.mixed_pool.least_loaded(load)

    def _move_to_mixed(self, machine: SimulatedMachine) -> None:
        """Temporarily pull a machine into the mixed pool."""
        if machine.role is MachineRole.MIXED:
            return
        self.prompt_pool.remove(machine)
        self.token_pool.remove(machine)
        self.mixed_pool.add(machine)
        machine.role = MachineRole.MIXED
        self.pool_switches += 1

    def _restore_home_pool(self, machine: SimulatedMachine) -> None:
        """Return a mixed-pool machine to its home pool once foreign work drains."""
        if machine.role is not MachineRole.MIXED or machine.home_role is MachineRole.MIXED:
            return
        if machine.has_foreign_work():
            return
        self.mixed_pool.remove(machine)
        machine.role = machine.home_role
        if machine.home_role is MachineRole.PROMPT:
            self.prompt_pool.add(machine)
        else:
            self.token_pool.add(machine)

    # -- dynamic re-purposing (autoscaler hooks) ----------------------------------------------

    def park_machine(self, machine: SimulatedMachine) -> None:
        """Withdraw an idle machine from routing (autoscaler scale-down).

        The machine keeps its home role and is moved to the parked pool; the
        router never selects parked machines, so it accrues no further work.
        Only fully drained machines can be parked — parking never strands a
        request.

        Raises:
            ValueError: if the machine still holds or expects any work.
        """
        if machine.has_prompt_work() or machine.has_token_work() or machine.is_busy:
            raise ValueError(f"machine {machine.name} still has work; only idle machines can be parked")
        if machine in self.parked_pool:
            return
        self.prompt_pool.remove(machine)
        self.token_pool.remove(machine)
        self.mixed_pool.remove(machine)
        machine.role = machine.home_role
        self.parked_pool.add(machine)

    def unpark_machine(self, machine: SimulatedMachine) -> None:
        """Return a parked machine to its home pool (autoscaler scale-up)."""
        if machine not in self.parked_pool:
            return
        self.parked_pool.remove(machine)
        machine.role = machine.home_role
        if not self.split or machine.home_role is MachineRole.MIXED:
            self.mixed_pool.add(machine)
        elif machine.home_role is MachineRole.PROMPT:
            self.prompt_pool.add(machine)
        else:
            self.token_pool.add(machine)

    def retarget_home(self, machine: SimulatedMachine, new_home: MachineRole) -> None:
        """Re-purpose a machine to a new home pool with drain-before-switch.

        The machine's home role changes immediately; placement reuses the
        mixed-pool machinery: a machine still holding work that is foreign to
        its *new* home is pulled into the mixed pool, where it keeps serving
        that work until it drains, and :meth:`_restore_home_pool` then lands
        it in the new home pool.  An idle machine switches pools immediately.

        Raises:
            ValueError: if ``new_home`` is the mixed pool (machines only ever
                visit the mixed pool temporarily).
        """
        if new_home is MachineRole.MIXED:
            raise ValueError("cannot re-target a machine's home to the mixed pool")
        if machine.home_role is new_home:
            return
        # Any in-flight coalesced run was proven safe under the old home.
        machine.interrupt_coalescing()
        machine.home_role = new_home
        if machine in self.parked_pool:
            return  # takes effect when the machine is unparked
        if machine.role is MachineRole.MIXED:
            # Already draining in the mixed pool; it lands in the new home
            # pool as soon as the (newly defined) foreign work is gone.
            self._restore_home_pool(machine)
            return
        if machine.has_foreign_work():
            self._move_to_mixed(machine)
            return
        self.prompt_pool.remove(machine)
        self.token_pool.remove(machine)
        machine.role = new_home
        if new_home is MachineRole.PROMPT:
            self.prompt_pool.add(machine)
        else:
            self.token_pool.add(machine)
        self.pool_switches += 1

    def count_home_machines(self, role: MachineRole) -> int:
        """Routable (non-parked, non-failed) machines whose home pool is ``role``."""
        return sum(
            1
            for pool in (self.prompt_pool, self.token_pool, self.mixed_pool)
            for machine in pool
            if machine.home_role is role
        )

    # -- fault tolerance (§IV-E) ------------------------------------------------------------

    def fail_machine(self, machine: SimulatedMachine | str) -> list[Request]:
        """Fail a machine and restart its incomplete requests from scratch.

        The paper's fault-tolerance policy (§IV-E) is to simply restart any
        request whose prompt or token machine fails.  The failed machine is
        removed from every pool; every incomplete request it held — plus any
        request that was routed to it as a future token machine — is reset and
        resubmitted through the normal routing path.

        Returns:
            The requests that were restarted.

        Raises:
            KeyError: if a machine name is given and no machine matches it.
        """
        target = self._resolve_machine(machine)
        if target.failed:
            return []
        affected = target.fail()
        self.prompt_pool.remove(target)
        self.token_pool.remove(target)
        self.mixed_pool.remove(target)
        self.parked_pool.remove(target)
        self.failed_machines.append(target)
        if self.on_machine_failed is not None:
            self.on_machine_failed(target)

        # Requests routed to the failed machine for a later phase must also restart.
        to_restart = {id(r): r for r in affected}
        for request_id, decision in list(self._assignments.items()):
            if decision.prompt_machine is target or decision.token_machine is target:
                request = self._find_outstanding_request(request_id, decision)
                if request is not None and not request.is_complete:
                    to_restart.setdefault(id(request), request)

        restarted: list[Request] = []
        handler = self.restart_handler
        for request in to_restart.values():
            self._withdraw(request)
            request.reset_for_restart()
            self._assignments.pop(request.request_id, None)
            if handler is not None:
                handler(request)
            else:
                self.submit(request)
            restarted.append(request)
        self.restarted_requests.extend(restarted)
        return restarted

    def recover_machine(self, machine: SimulatedMachine | str) -> SimulatedMachine | None:
        """Bring a failed machine back into service (repair completed).

        The machine rejoins its *home* pool empty — ``fail`` already
        discarded its queues and restarted its work elsewhere, so recovery
        is purely a capacity event.  A straggler slowdown survives the
        fail/recover cycle (slow hardware stays slow).  No-op when the
        machine is not failed.

        Returns:
            The recovered machine, or ``None`` when nothing changed.

        Raises:
            KeyError: if a machine name is given and no machine matches it.
        """
        target = self._resolve_machine(machine)
        if not target.failed:
            return None
        target.recover()
        self.failed_machines.remove(target)
        target.role = target.home_role
        if not self.split or target.home_role is MachineRole.MIXED:
            self.mixed_pool.add(target)
        elif target.home_role is MachineRole.PROMPT:
            self.prompt_pool.add(target)
        else:
            self.token_pool.add(target)
        if self.on_machine_recovered is not None:
            self.on_machine_recovered(target)
        return target

    def recover_all(self) -> list[SimulatedMachine]:
        """Recover every failed machine (end of a cluster-wide outage)."""
        recovered: list[SimulatedMachine] = []
        for machine in list(self.failed_machines):
            result = self.recover_machine(machine)
            if result is not None:
                recovered.append(result)
        return recovered

    def evacuate(self) -> list[Request]:
        """Fail every machine at once and hand back the displaced requests.

        Models a correlated failure domain (rack/zone outage) or a spot
        revocation: the whole cluster drops cold in one instant.  Unlike
        :meth:`fail_machine`, displaced requests are **not** resubmitted
        here — there is nowhere inside the cluster to put them — they are
        reset and returned for the caller (the fleet) to reroute.

        Returns:
            Every incomplete request the cluster held, reset for restart,
            in deterministic discovery order.
        """
        to_restart: dict[int, Request] = {}
        for machine in list(self.machines):
            if machine.failed:
                continue
            affected = machine.fail()
            self.prompt_pool.remove(machine)
            self.token_pool.remove(machine)
            self.mixed_pool.remove(machine)
            self.parked_pool.remove(machine)
            self.failed_machines.append(machine)
            if self.on_machine_failed is not None:
                self.on_machine_failed(machine)
            for request in affected:
                to_restart.setdefault(id(request), request)
        # Requests mid KV-transfer sit in no machine queue; the transfer
        # registry is the only index that still knows them.
        for request in list(self._transfer_requests.values()):
            if not request.is_complete:
                to_restart.setdefault(id(request), request)
        evacuated: list[Request] = []
        for request in to_restart.values():
            self._withdraw(request)
            request.reset_for_restart()
            self._assignments.pop(request.request_id, None)
            evacuated.append(request)
        self.restarted_requests.extend(evacuated)
        return evacuated

    def cancel_request(self, request: Request) -> None:
        """Withdraw a request from the cluster without restarting it.

        Used by the fleet's request-lifecycle layer for deadline expiry and
        first-wins hedge cancellation: the request leaves every queue (and
        any in-flight KV transfer is tombstoned), its routing entry is
        dropped, and nothing is resubmitted.  Safe to call for a request the
        cluster no longer holds.
        """
        self._withdraw(request)
        self._assignments.pop(request.request_id, None)

    def find_machine(self, name: str) -> SimulatedMachine:
        """Look up a machine by name, failed machines included.

        Raises:
            KeyError: if no machine matches.
        """
        return self._resolve_machine(name)

    def _resolve_machine(self, machine: SimulatedMachine | str) -> SimulatedMachine:
        if isinstance(machine, SimulatedMachine):
            return machine
        for candidate in self.machines + self.failed_machines:
            if candidate.name == machine:
                return candidate
        raise KeyError(f"no machine named {machine!r} in this cluster")

    def _find_outstanding_request(self, request_id: int, decision: RoutingDecision) -> Request | None:
        """O(1) queue lookup on the two machines the request was routed to."""
        for machine in (decision.prompt_machine, decision.token_machine):
            found = machine.find_queued(request_id)
            if found is not None:
                return found
        return None

    def _withdraw(self, request: Request) -> None:
        """Remove a request from the machines it was routed to before restart.

        The routing index (``_assignments``) names the only machines that can
        hold the request, so withdrawal touches at most two machines instead
        of scanning every queue in the cluster.  Any in-flight KV-transfer
        completion event for the request is tombstoned.
        """
        decision = self._assignments.get(request.request_id)
        if decision is not None:
            decision.prompt_machine.withdraw(request)
            if decision.token_machine is not decision.prompt_machine:
                decision.token_machine.withdraw(request)
        else:
            for machine in self.machines:
                machine.withdraw(request)
        event = self._transfer_events.pop(request.request_id, None)
        if event is not None:
            self.engine.cancel(event)
        self._transfer_requests.pop(request.request_id, None)

    # -- KV-cache transfer ---------------------------------------------------------------

    def _transfer_model(self, source: SimulatedMachine, destination: SimulatedMachine) -> KVTransferModel:
        key = (source.spec.name, destination.spec.name)
        if key not in self._transfer_models:
            link = infiniband_for(source.spec.interconnect_gbps, destination.spec.interconnect_gbps)
            self._transfer_models[key] = KVTransferModel(
                model=self.model, link=link, degradation_factor=self._kv_degradation
            )
        return self._transfer_models[key]

    def set_kv_degradation(self, factor: float) -> None:
        """Degrade (or restore) the visible latency of new KV transfers.

        Transfer latency is committed when the transfer is scheduled, so a
        factor change affects only transfers that *start* after it —
        in-flight transfers keep their already-committed latency in every
        execution regime, which is what keeps fast-forward bit-parity intact.

        Raises:
            ValueError: if ``factor`` is below 1.
        """
        if factor < 1.0:
            raise ValueError(f"KV degradation factor must be >= 1, got {factor}")
        if factor == self._kv_degradation:
            return
        self._kv_degradation = factor
        self._transfer_models.clear()

    # -- machine callbacks ----------------------------------------------------------------

    def _handle_prompt_complete(
        self, request: Request, machine: SimulatedMachine, prompt_latency: float
    ) -> None:
        decision = self._assignments.get(request.request_id)
        if decision is None:
            return
        destination = decision.token_machine
        if request.is_complete:
            if destination is not machine:
                destination.cancel_transfer(request)
            return
        if destination is machine:
            # Same machine (baseline or overflow onto itself): no transfer.
            machine.admit_token_request(request)
            return
        transfer = self._transfer_model(machine, destination)
        latency = transfer.visible_latency(request.prompt_tokens, prompt_latency)
        request.start_kv_transfer(self.engine.now)
        self._transfer_requests[request.request_id] = request
        self._transfer_events[request.request_id] = self.engine.schedule_after(
            latency,
            lambda: self._complete_transfer(request, destination),
            tag=f"kv-transfer:{request.request_id}",
        )

    def _complete_transfer(self, request: Request, destination: SimulatedMachine) -> None:
        self._transfer_events.pop(request.request_id, None)
        self._transfer_requests.pop(request.request_id, None)
        if request.phase is not RequestPhase.KV_TRANSFER and not request.is_complete:
            # The request was restarted (machine failure) while its KV-cache
            # was in flight; the stale transfer completion is dropped.
            return
        if destination.failed:
            # The token machine died while (or after) the cache was in flight:
            # restart the request from scratch on surviving machines (§IV-E).
            self._assignments.pop(request.request_id, None)
            request.reset_for_restart()
            self.restarted_requests.append(request)
            if self.restart_handler is not None:
                self.restart_handler(request)
            else:
                self.submit(request)
            return
        request.finish_kv_transfer(self.engine.now)
        destination.admit_token_request(request)

    def _handle_request_complete(self, request: Request, machine: SimulatedMachine) -> None:
        del machine
        self.completed_requests.append(request)
        self._assignments.pop(request.request_id, None)
        if self.on_request_complete is not None:
            self.on_request_complete(request)

    def _handle_iteration_complete(self, machine: SimulatedMachine) -> None:
        self._restore_home_pool(machine)

    # -- introspection -----------------------------------------------------------------------

    def pool_sizes(self) -> dict[str, int]:
        """Current number of machines in each pool."""
        return {
            "prompt": len(self.prompt_pool),
            "token": len(self.token_pool),
            "mixed": len(self.mixed_pool),
            "parked": len(self.parked_pool),
        }

    def machines_by_home_role(self, role: MachineRole) -> list[SimulatedMachine]:
        """All machines whose home pool is ``role`` regardless of current pool."""
        return [m for m in self.machines if m.home_role is role]

    def outstanding_requests(self) -> Iterable[Request]:
        """Requests routed but not yet completed."""
        seen = {r.request_id for r in self.completed_requests}
        for machine in self.machines:
            for request in list(machine.pending_prompts) + machine.token_pool:
                if request.request_id not in seen:
                    yield request
